#!/usr/bin/env bash
# CI-style verification for the CLIC reproduction.
#
#   scripts/verify.sh                  # tier-1 + examples + format + clippy
#   scripts/verify.sh --quick          # tier-1 only
#   scripts/verify.sh --smoke-server   # additionally crash-check the
#                                      # clic-server throughput harness (~1 s
#                                      # of load at smoke scale)
#   scripts/verify.sh --smoke-bench    # additionally crash-check EVERY bench
#                                      # binary (via run_all) at smoke scale;
#                                      # iteration-budgeted microbenches
#                                      # (access_hotpath, server_throughput)
#                                      # clamp to ~1 s budgets
#
# Tier-1 (the bar every PR must clear, see ROADMAP.md):
#   cargo build --release && cargo test -q
#
# On top of tier-1 this script builds every example, enforces formatting
# (cargo fmt --check), and requires clippy cleanliness at the error level
# (warnings are reported but allowed).
set -euo pipefail

cd "$(dirname "$0")/.."

quick=0
smoke_server=0
smoke_bench=0
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        --smoke-server) smoke_server=1 ;;
        --smoke-bench) smoke_bench=1 ;;
        *) echo "usage: scripts/verify.sh [--quick] [--smoke-server] [--smoke-bench]" >&2; exit 2 ;;
    esac
done

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

if [ "$smoke_server" -eq 1 ] && [ "$smoke_bench" -eq 0 ]; then
    # (--smoke-bench subsumes this: run_all already includes
    # server_throughput, so don't run it twice.)
    echo "== smoke: server_throughput (smoke scale, crash check) =="
    cargo run --release -p clic-bench --bin server_throughput -- \
        --quick --out-dir target/smoke-results
fi

if [ "$smoke_bench" -eq 1 ]; then
    echo "== smoke: every bench binary via run_all (smoke scale, crash check) =="
    cargo run --release -p clic-bench --bin run_all -- \
        --quick --out-dir target/smoke-results
fi

if [ "$quick" -eq 1 ]; then
    echo "verify: tier-1 OK (quick mode, examples/fmt/clippy skipped)"
    exit 0
fi

echo "== cargo build --release --examples =="
cargo build --release --examples

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy --workspace --all-targets (errors fail, warnings allowed) =="
cargo clippy --workspace --all-targets

echo "verify: all checks passed"
