#!/usr/bin/env bash
# CI-style verification for the CLIC reproduction.
#
#   scripts/verify.sh           # tier-1 + format check + clippy
#   scripts/verify.sh --quick   # tier-1 only
#
# Tier-1 (the bar every PR must clear, see ROADMAP.md):
#   cargo build --release && cargo test -q
#
# On top of tier-1 this script enforces formatting (cargo fmt --check) and
# clippy cleanliness at the error level (warnings are reported but allowed).
set -euo pipefail

cd "$(dirname "$0")/.."

quick=0
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        *) echo "usage: scripts/verify.sh [--quick]" >&2; exit 2 ;;
    esac
done

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

if [ "$quick" -eq 1 ]; then
    echo "verify: tier-1 OK (quick mode, fmt/clippy skipped)"
    exit 0
fi

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy --workspace (errors fail, warnings allowed) =="
cargo clippy --workspace --all-targets

echo "verify: all checks passed"
