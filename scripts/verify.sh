#!/usr/bin/env bash
# CI-style verification for the CLIC reproduction.
#
#   scripts/verify.sh                  # tier-1 + store smoke + examples +
#                                      # format + clippy
#   scripts/verify.sh --quick          # tier-1 only
#   scripts/verify.sh --smoke-server   # additionally crash-check the
#                                      # clic-server throughput harness (~1 s
#                                      # of load at smoke scale)
#   scripts/verify.sh --smoke-store    # data-plane smoke: the page store's
#                                      # write->crash->recover->verify cycle
#                                      # at every durability level, the
#                                      # concurrent smoke (client threads
#                                      # over per-shard stores vs the serial
#                                      # replay), the clippy lock-hygiene
#                                      # gate for crates/store, plus the
#                                      # storage_io bench at smoke scale;
#                                      # part of the default full run, this
#                                      # flag adds it to --quick runs
#   scripts/verify.sh --smoke-obs      # observability smoke: the obs_smoke
#                                      # gate (recorder-enabled load; asserts
#                                      # deterministic counters identical at
#                                      # pool sizes 1 and 2, trace rings
#                                      # drain to valid JSON, mock-clock
#                                      # dumps reproducible) plus the clippy
#                                      # lock-hygiene gate for crates/server;
#                                      # part of the default full run, this
#                                      # flag adds it to --quick runs
#   scripts/verify.sh --smoke-net      # network front-end smoke: the
#                                      # net_smoke gate (spawns the event-
#                                      # driven TCP front-end, offers ~1 s of
#                                      # open-loop Poisson load over
#                                      # localhost; asserts every request is
#                                      # answered, percentiles are non-empty
#                                      # and ordered, stats agree over the
#                                      # wire, and shutdown is clean) plus
#                                      # the wire-protocol and loopback
#                                      # integration tests; part of the
#                                      # default full run, this flag adds it
#                                      # to --quick runs
#   scripts/verify.sh --smoke-chaos    # robustness gate: the chaos_smoke
#                                      # binary (seeded fault injection;
#                                      # asserts strict durability survives a
#                                      # WAL fault storm deterministically,
#                                      # open-loop load over a faulted store
#                                      # degrades to typed OP_ERR/Busy
#                                      # answers with a bounded error rate,
#                                      # and a retrying client rides out
#                                      # injected accept drops, connection
#                                      # resets, and torn sends) plus the
#                                      # fault-injection crash-recovery
#                                      # proptests; part of the default full
#                                      # run, this flag adds it to --quick
#                                      # runs
#   scripts/verify.sh --smoke-bench    # additionally crash-check EVERY bench
#                                      # binary (via run_all) at smoke scale,
#                                      # BOTH with --jobs 1 and --jobs 2, and
#                                      # fail on any cross-thread result
#                                      # divergence (timing-dependent outputs
#                                      # excluded); iteration-budgeted
#                                      # microbenches (access_hotpath,
#                                      # server_throughput) clamp to ~1 s
#                                      # budgets. run_all prints per-
#                                      # experiment wall time in both runs.
#
# Tier-1 (the bar every PR must clear, see ROADMAP.md):
#   cargo build --release && cargo test -q
#
# On top of tier-1 this script builds every example, enforces formatting
# (cargo fmt --check), and requires clippy cleanliness at the error level
# (warnings are reported but allowed).
set -euo pipefail

cd "$(dirname "$0")/.."

quick=0
smoke_server=0
smoke_bench=0
smoke_store=0
smoke_obs=0
smoke_net=0
smoke_chaos=0
for arg in "$@"; do
    case "$arg" in
        --quick) quick=1 ;;
        --smoke-server) smoke_server=1 ;;
        --smoke-bench) smoke_bench=1 ;;
        --smoke-store) smoke_store=1 ;;
        --smoke-obs) smoke_obs=1 ;;
        --smoke-net) smoke_net=1 ;;
        --smoke-chaos) smoke_chaos=1 ;;
        *) echo "usage: scripts/verify.sh [--quick] [--smoke-server] [--smoke-bench] [--smoke-store] [--smoke-obs] [--smoke-net] [--smoke-chaos]" >&2; exit 2 ;;
    esac
done

# The data-plane, observability, network, and robustness smokes are part of
# the default full run; --smoke-store / --smoke-obs / --smoke-net /
# --smoke-chaos only need to be spelled out to add them to a --quick run.
if [ "$quick" -eq 0 ]; then
    smoke_store=1
    smoke_obs=1
    smoke_net=1
    smoke_chaos=1
fi

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

if [ "$smoke_server" -eq 1 ] && [ "$smoke_bench" -eq 0 ]; then
    # (--smoke-bench subsumes this: run_all already includes
    # server_throughput, so don't run it twice.)
    echo "== smoke: server_throughput (smoke scale, crash check) =="
    cargo run --release -p clic-bench --bin server_throughput -- \
        --quick --out-dir target/smoke-results
fi

if [ "$smoke_bench" -eq 1 ]; then
    # Fresh output dirs: stale CSVs from earlier commits must not leak into
    # the determinism comparison (bogus divergences after a stem rename,
    # silently-dead checks otherwise).
    rm -rf target/smoke-results-j1 target/smoke-results-j2 target/smoke-results-grid
    echo "== smoke: every bench binary via run_all, --jobs 1 (smoke scale) =="
    cargo run --release -p clic-bench --bin run_all -- \
        --quick --jobs 1 --out-dir target/smoke-results-j1 \
        --json target/smoke-results-j1/BENCH_results.json
    echo "== smoke: every bench binary via run_all, --jobs 2 (smoke scale) =="
    cargo run --release -p clic-bench --bin run_all -- \
        --quick --jobs 2 --out-dir target/smoke-results-j2 \
        --json target/smoke-results-j2/BENCH_results.json
    echo "== smoke: cross-thread determinism (jobs 1 vs jobs 2 outputs) =="
    diverged=0
    for f in target/smoke-results-j1/*.csv; do
        base="$(basename "$f")"
        case "$base" in
            # Timing-dependent outputs legitimately differ between runs.
            access_hotpath.csv|server_throughput.csv|server_latency.csv|chaos_smoke.csv) continue ;;
        esac
        if ! cmp -s "$f" "target/smoke-results-j2/$base"; then
            echo "DIVERGENCE: $base differs between --jobs 1 and --jobs 2" >&2
            diverged=1
        fi
    done
    if [ "$diverged" -ne 0 ]; then
        echo "verify: FAILED (parallel bench results diverged from serial)" >&2
        exit 1
    fi
    # run_all pins concurrent children to --jobs 1, so the comparison above
    # covers process-level concurrency only. Also exercise the *in-process*
    # parallel grids (compare_policies / par_map) of representative
    # experiments at --jobs 2 against the serial run's outputs.
    echo "== smoke: in-process grid determinism (--jobs 2 vs serial outputs) =="
    for exp in fig06_tpcc_policies fig10_noise ablation_params; do
        cargo run --release -q -p clic-bench --bin "$exp" -- \
            --quick --jobs 2 --out-dir target/smoke-results-grid > /dev/null
    done
    for f in target/smoke-results-grid/*.csv; do
        base="$(basename "$f")"
        if ! cmp -s "$f" "target/smoke-results-j1/$base"; then
            echo "DIVERGENCE: $base differs between in-process --jobs 2 and serial" >&2
            diverged=1
        fi
    done
    if [ "$diverged" -ne 0 ]; then
        echo "verify: FAILED (in-process parallel grid diverged from serial)" >&2
        exit 1
    fi
    echo "deterministic: every comparable result file is bit-identical"
fi

if [ "$smoke_store" -eq 1 ]; then
    echo "== smoke: page store write->crash->recover->verify cycle (all durability levels) =="
    cargo test --release -q -p clic-store --test crash_recovery
    echo "== smoke: concurrent clients over per-shard stores vs serial replay =="
    cargo test --release -q -p clic --test store_concurrency
    # Lock hygiene: crates/store must go through the poison-tolerant guard
    # helpers (cache_sim::sync), never bare Mutex::lock / RwLock::read /
    # RwLock::write (crates/store/clippy.toml lists the banned methods; the
    # crate turns the lint into an error).
    echo "== smoke: clippy lock-hygiene gate for crates/store =="
    cargo clippy -q -p clic-store --all-targets
    if [ "$smoke_bench" -eq 0 ]; then
        # (--smoke-bench subsumes this: run_all already includes
        # storage_io, so don't run it twice.)
        echo "== smoke: storage_io bench (smoke scale, crash check) =="
        cargo run --release -q -p clic-bench --bin storage_io -- \
            --quick --out-dir target/smoke-results
    fi
fi

if [ "$smoke_obs" -eq 1 ]; then
    # The gate's assertions live inside the binary: deterministic counters
    # bit-identical between 1- and 2-worker pools, recorder-enabled server
    # load leaves shard_batch spans, trace rings and metrics snapshots drain
    # to JSON that the strict validator accepts, and mock-clock trace dumps
    # are byte-identical run to run.
    echo "== smoke: observability gate (obs_smoke, smoke scale) =="
    cargo run --release -q -p clic-bench --bin obs_smoke -- \
        --quick --out-dir target/smoke-results
    # Lock hygiene now also covers crates/server (same banned methods as
    # crates/store; see crates/server/clippy.toml). The deny is crate-wide,
    # so the network front-end modules (net, sys, wire, openloop) are under
    # the same gate.
    echo "== smoke: clippy lock-hygiene gate for crates/server (incl. net modules) =="
    cargo clippy -q -p clic-server --all-targets
fi

if [ "$smoke_net" -eq 1 ]; then
    # The gate's assertions live inside the binary: the TCP front-end comes
    # up on localhost, ~1 s of seeded open-loop Poisson load all completes,
    # latency percentiles are non-empty and ordered, a stats probe over the
    # wire matches the generator's count, and shutdown returns the final
    # statistics cleanly.
    echo "== smoke: network front-end gate (net_smoke, open-loop load over localhost) =="
    cargo run --release -q -p clic-bench --bin net_smoke -- \
        --quick --out-dir target/smoke-results
    echo "== smoke: wire-protocol properties + loopback bit-identity tests =="
    cargo test --release -q -p clic-server --test wire_properties
    cargo test --release -q -p clic --test net_front_end
fi

if [ "$smoke_chaos" -eq 1 ]; then
    # The gate's assertions live inside the binary: phase A runs a strict
    # store through a seeded WAL fault storm twice and requires identical
    # acks, injector counts, synced prefixes, and recovered bytes after a
    # simulated kernel crash; phase B offers open-loop load over a store
    # whose WAL appends fault and requires every request answered (typed
    # OP_ERR/Busy, never silence) with a bounded error fraction; phase C
    # drives a retrying client through injected accept drops, connection
    # resets, and torn sends, and requires each fault type demonstrably
    # fired with zero client-visible failures.
    echo "== smoke: robustness gate (chaos_smoke, seeded fault injection) =="
    cargo run --release -q -p clic-bench --bin chaos_smoke -- \
        --quick --out-dir target/smoke-results
    if [ "$smoke_store" -eq 0 ]; then
        # (--smoke-store subsumes this: crash_recovery already carries the
        # fault-injection proptests, so don't run it twice.)
        echo "== smoke: fault-injection crash-recovery proptests =="
        cargo test --release -q -p clic-store --test crash_recovery
    fi
fi

if [ "$quick" -eq 1 ]; then
    echo "verify: tier-1 OK (quick mode, examples/fmt/clippy skipped)"
    exit 0
fi

echo "== cargo build --release --examples =="
cargo build --release --examples

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy --workspace --all-targets (errors fail, warnings allowed) =="
cargo clippy --workspace --all-targets

echo "verify: all checks passed"
