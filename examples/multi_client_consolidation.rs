//! Domain scenario: several database instances consolidated onto one storage
//! server (the paper's Section 6.4). Compares a single shared CLIC-managed
//! cache against statically partitioning the same space among the clients,
//! and shows the per-client hit ratios.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_client_consolidation
//! ```

use cache_sim::policy::PolicyFactory;
use cache_sim::BoxedPolicy;
use clic::prelude::*;

/// Builds per-partition CLIC instances for the partitioned baseline.
struct ClicFactory {
    window: u64,
}

impl PolicyFactory for ClicFactory {
    fn name(&self) -> String {
        "CLIC".to_string()
    }

    fn build(&self, capacity: usize) -> BoxedPolicy {
        Box::new(Clic::new(
            capacity,
            ClicConfig::default()
                .with_window(self.window)
                .with_tracking(TrackingMode::TopK(100)),
        ))
    }
}

fn main() {
    let scale = PresetScale::Smoke;
    let presets = [
        TracePreset::Db2C60,
        TracePreset::Db2C300,
        TracePreset::Db2C540,
    ];

    // Each client is an independent DB2 instance with its own database, so
    // their page ranges must not overlap.
    let traces: Vec<Trace> = presets
        .iter()
        .enumerate()
        .map(|(i, p)| p.build_with_offset(scale, i as u64 * 100_000_000, 7 + i as u64))
        .collect();
    for t in &traces {
        println!("client trace: {}", t.summary());
    }
    let refs: Vec<&Trace> = traces.iter().collect();
    let (combined, clients) = interleave(&refs);
    println!("combined:     {}", combined.summary());

    let shared_pages = 1_800;
    let per_client = shared_pages / clients.len();
    let window = suggested_window(combined.len() as u64);

    // One shared cache managed by CLIC: it sees hints from all clients and
    // prioritizes whichever client offers the best caching opportunities.
    let mut shared = Clic::new(
        shared_pages,
        ClicConfig::default()
            .with_window(window)
            .with_tracking(TrackingMode::TopK(100)),
    );
    let shared_result = simulate(&mut shared, &combined);

    // The baseline: a static equal partition of the same space.
    let factory = ClicFactory { window };
    let mut partitioned = PartitionedCache::new(&factory, &clients, per_client);
    let partitioned_result = simulate(&mut partitioned, &combined);

    println!(
        "\n{:<10} {:>22} {:>22}",
        "client", "shared (CLIC)", "3 private partitions"
    );
    for (preset, client) in presets.iter().zip(&clients) {
        println!(
            "{:<10} {:>21.1}% {:>21.1}%",
            preset.name(),
            shared_result.client_read_hit_ratio(*client) * 100.0,
            partitioned_result.client_read_hit_ratio(*client) * 100.0
        );
    }
    println!(
        "{:<10} {:>21.1}% {:>21.1}%",
        "overall",
        shared_result.read_hit_ratio() * 100.0,
        partitioned_result.read_hit_ratio() * 100.0
    );
    println!(
        "\nCLIC maximizes the overall hit ratio of the shared cache by giving space to\n\
         the client whose hint sets show the best benefit/cost ratio, instead of\n\
         splitting the cache evenly regardless of how cacheable each client is."
    );
}
