//! Quickstart: generate a hinted storage-server trace from a simulated DB2
//! TPC-C client, run CLIC and the classical baselines over it, and print the
//! read hit ratios.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use clic::prelude::*;

fn main() {
    // 1. Generate a scaled-down version of the paper's DB2_C60 trace: a
    //    TPC-C-like workload running above a DBMS buffer pool; the storage
    //    server sees only what the buffer pool misses or writes back, each
    //    request tagged with DB2-style hints.
    let trace = TracePreset::Db2C60.build(PresetScale::Smoke);
    let summary = trace.summary();
    println!("trace: {summary}");

    // 2. Pick a storage-server cache size (pages) and compare policies.
    let cache_pages = 1_800;
    let window = suggested_window(trace.len() as u64);

    let mut results: Vec<(String, f64)> = Vec::new();

    let mut opt = Opt::from_trace(&trace, cache_pages);
    results.push((
        "OPT (offline bound)".into(),
        simulate(&mut opt, &trace).read_hit_ratio(),
    ));

    let mut lru = Lru::new(cache_pages);
    results.push(("LRU".into(), simulate(&mut lru, &trace).read_hit_ratio()));

    let mut arc = Arc::new(cache_pages);
    results.push(("ARC".into(), simulate(&mut arc, &trace).read_hit_ratio()));

    let mut tq = Tq::new(cache_pages);
    results.push((
        "TQ (write hints)".into(),
        simulate(&mut tq, &trace).read_hit_ratio(),
    ));

    let mut clic = Clic::new(cache_pages, ClicConfig::default().with_window(window));
    results.push(("CLIC".into(), simulate(&mut clic, &trace).read_hit_ratio()));

    // 3. Report.
    println!("\nserver cache: {cache_pages} pages");
    for (name, ratio) in &results {
        println!("  {name:<22} read hit ratio {:>5.1}%", ratio * 100.0);
    }

    // 4. Peek at what CLIC learned: the five highest-priority hint sets.
    let mut reports = analyze_trace(&trace);
    reports.sort_by(|a, b| b.priority.partial_cmp(&a.priority).unwrap());
    println!("\nhighest-priority hint sets (offline analysis):");
    for report in reports.iter().take(5) {
        println!(
            "  Pr = {:.6}  fhit = {:.2}  D = {:>9.0}  {}",
            report.priority, report.read_hit_rate, report.mean_distance, report.label
        );
    }
}
