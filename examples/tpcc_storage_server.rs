//! Domain scenario: an OLTP database (TPC-C-like) running on a storage
//! server, evaluated across a sweep of server cache sizes — the situation
//! the paper's introduction motivates. Prints a small table comparing CLIC
//! with the hint-oblivious and hint-aware baselines at every cache size.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example tpcc_storage_server
//! ```

use clic::prelude::*;

fn main() {
    // The TPC-C client with a mid-sized buffer pool: the configuration where
    // hint-based policies pay off the most (Figure 6, DB2_C300).
    let preset = TracePreset::Db2C300;
    let scale = PresetScale::Smoke;
    let trace = preset.build(scale);
    println!("trace: {}", trace.summary());

    let cache_sizes = preset.server_cache_sizes(scale);
    let window = suggested_window(trace.len() as u64);

    println!(
        "\n{:<10} {:>12} {:>12} {:>12} {:>12}",
        "cache", "LRU", "ARC", "TQ", "CLIC"
    );
    for &cache_pages in &cache_sizes {
        let mut lru = Lru::new(cache_pages);
        let mut arc = Arc::new(cache_pages);
        let mut tq = Tq::new(cache_pages);
        let mut clic = Clic::new(cache_pages, ClicConfig::default().with_window(window));
        let lru_hr = simulate(&mut lru, &trace).read_hit_ratio();
        let arc_hr = simulate(&mut arc, &trace).read_hit_ratio();
        let tq_hr = simulate(&mut tq, &trace).read_hit_ratio();
        let clic_hr = simulate(&mut clic, &trace).read_hit_ratio();
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            format!("{cache_pages}p"),
            lru_hr * 100.0,
            arc_hr * 100.0,
            tq_hr * 100.0,
            clic_hr * 100.0
        );
    }

    println!(
        "\nWith a mid-sized first-tier buffer the residual locality is poor, so the\n\
         recency-based policies struggle while the hint-aware policies (TQ, CLIC)\n\
         identify the replacement-written pages that will be read back soon."
    );
}
