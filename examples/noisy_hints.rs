//! Domain scenario: clients that emit low-value hints. CLIC must learn to
//! ignore hint types that carry no information (the paper's Section 6.3):
//! this example injects 0-3 synthetic noise hint types into a TPC-C trace and
//! shows how the hit ratio of CLIC with bounded (top-k) hint tracking reacts,
//! and how raising `k` restores it.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example noisy_hints
//! ```

use clic::prelude::*;

fn main() {
    let preset = TracePreset::Db2C60;
    let base = preset.build(PresetScale::Smoke);
    println!("base trace: {}", base.summary());

    let cache_pages = 1_800;

    println!(
        "\n{:<8} {:>12} {:>14} {:>14} {:>14}",
        "T", "hint sets", "CLIC k=20", "CLIC k=100", "CLIC k=400"
    );
    for noise_types in 0..=3u32 {
        let noisy = inject_noise(&base, NoiseConfig::new(noise_types));
        let hint_sets = noisy.summary().distinct_hint_sets;
        let window = suggested_window(noisy.len() as u64);
        let mut row = format!("{noise_types:<8} {hint_sets:>12}");
        for k in [20usize, 100, 400] {
            let mut clic = Clic::new(
                cache_pages,
                ClicConfig::default()
                    .with_window(window)
                    .with_tracking(TrackingMode::TopK(k)),
            );
            let ratio = simulate(&mut clic, &noisy).read_hit_ratio();
            row.push_str(&format!(" {:>13.1}%", ratio * 100.0));
        }
        println!("{row}");
    }

    println!(
        "\nEach injected hint type multiplies the number of distinct hint sets, diluting\n\
         the statistics of the genuinely useful ones. A larger tracking budget k buys\n\
         back most of the loss — the space/accuracy trade-off discussed in the paper."
    );
}
