//! Domain scenario: a live storage server consolidating several database
//! instances — the online counterpart of `multi_client_consolidation`.
//!
//! Three DB2 TPC-C clients (the Figure 11 mix) drive a sharded CLIC server
//! concurrently, one closed-loop client thread each — and the server runs
//! over its real data plane: a disk-backed page store with a write-ahead
//! log and a background flusher, so every `Put` stages actual page bytes
//! and every `Get` returns them. The harness reports throughput, batch
//! latency percentiles, per-client hit ratios, and the byte-level I/O the
//! store performed; a single-threaded CLIC simulation of the equivalent
//! interleaved trace shows how faithfully the sharded online deployment
//! tracks the offline policy. The example ends by reopening the store to
//! verify the shutdown checkpoint persisted the written pages, then
//! deliberately *crashes* a second server (drop without shutdown) to show
//! the WAL recovering every acknowledged write.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example storage_server
//! ```

use std::time::Duration;

use clic::prelude::*;

/// Small pages keep the example's scratch files tiny; the store's default
/// is 4 KiB.
const PAGE_SIZE: usize = 512;

fn main() {
    let scale = PresetScale::Smoke;
    let presets = [
        TracePreset::Db2C60,
        TracePreset::Db2C300,
        TracePreset::Db2C540,
    ];

    // Independent clients over disjoint page ranges, truncated to the
    // shortest trace so no client is over-represented (as in Figure 11).
    let traces = preset_client_traces(&presets, scale);
    for trace in &traces {
        println!("client trace: {}", trace.summary());
    }

    let cache_pages = 1_800;
    let shards = 4;
    let total: u64 = traces.iter().map(|t| t.len() as u64).sum();
    let window = suggested_window(total);

    // The data plane: a disk-backed store whose buffer frames the policy
    // adjudicates. The WAL makes acknowledged writes crash-safe; a
    // background flusher trickles dirty frames to disk every 10 ms.
    let store_dir = std::env::temp_dir().join(format!("clic-example-store-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    let store_config = StoreConfig::new(&store_dir, cache_pages)
        .with_page_size(PAGE_SIZE)
        .with_flush_interval(Duration::from_millis(10));

    let config = LoadConfig::new(
        ServerConfig::new(cache_pages)
            .with_shards(shards)
            .with_clic(
                ClicConfig::default()
                    .with_window(window)
                    .with_tracking(TrackingMode::TopK(100)),
            )
            .with_merge_every(window)
            .with_store(store_config.clone()),
    )
    .with_batch(64);

    println!(
        "\nserver: {cache_pages} pages, {shards} shards, window {window}, \
         store at {}",
        store_dir.display()
    );
    let report = run_load(&config, &traces);

    println!(
        "\nthroughput: {:.0} req/s ({} requests in {:.2} s, {} priority merges)",
        report.throughput_rps(),
        report.requests(),
        report.elapsed.as_secs_f64(),
        report.merges,
    );
    println!(
        "batch latency: p50 {} us, p95 {} us, p99 {} us, max {} us",
        report.latency.p50_us, report.latency.p95_us, report.latency.p99_us, report.latency.max_us
    );
    println!("\n{:<10} {:>15}", "client", "read hit ratio");
    for client in &report.clients {
        println!(
            "{:<10} {:>14.1}%",
            client.trace,
            client.read_hit_ratio() * 100.0
        );
    }
    println!(
        "{:<10} {:>14.1}%",
        "overall",
        report.read_hit_ratio() * 100.0
    );

    // Reference: the offline Figure 11 shared cache on the same requests.
    let refs: Vec<&Trace> = traces.iter().collect();
    let (combined, _) = interleave(&refs);
    let mut reference = Clic::new(
        cache_pages,
        ClicConfig::default()
            .with_window(suggested_window(combined.len() as u64))
            .with_tracking(TrackingMode::TopK(100)),
    );
    let reference_result = simulate(&mut reference, &combined);
    println!(
        "\noffline single-cache reference: {:.1}% — the sharded online server\n\
         stays close because the cross-shard priority merge keeps every shard's\n\
         hint learning aligned with the global workload.",
        reference_result.read_hit_ratio() * 100.0
    );

    // The data plane moved real bytes; the harness captured the counters
    // just before shutdown.
    if let Some(io) = &report.io {
        println!(
            "\ndata plane: {} bytes moved ({} disk reads, {} disk writes, \
             buffer hit ratio {:.1}%)",
            io.bytes_moved(),
            io.disk_reads,
            io.disk_writes,
            io.buffer_hit_ratio() * 100.0
        );
        println!(
            "flusher/WAL: {} pages flushed ({} forced by eviction), {} WAL records",
            io.pages_flushed, io.eviction_flushes, io.wal_records
        );
    }

    // run_load shut the server down cleanly, which checkpointed every
    // shard's store: every written page is on disk and the WALs are empty.
    // Each shard keeps its own store under a shard-N subdirectory; reopen
    // the one owning a page the workload wrote (the harness stages
    // page_payload(page, ...) for every Put) and verify it.
    let written = traces[0]
        .requests
        .iter()
        .find(|r| r.kind == AccessKind::Write)
        .map(|r| r.page)
        .expect("the TPC-C mix writes");
    let store = PageStore::open(store_config.for_shard(page_partition(written, shards), shards))
        .expect("reopen the checkpointed shard store");
    assert_eq!(
        store.recovered_writes(),
        0,
        "a clean shutdown leaves nothing to recover"
    );
    let mut buf = Vec::new();
    store.read(written, &mut buf).expect("read back");
    assert_eq!(buf, page_payload(written, PAGE_SIZE));
    println!(
        "\nreopened shard {}'s store: {} pages on disk, WAL empty, page {} verified byte-for-byte",
        page_partition(written, shards),
        store.pages_on_disk(),
        written.0
    );
    drop(store);
    std::fs::remove_dir_all(&store_dir).ok();

    // Crash recovery: a second server takes two writes, acknowledges them,
    // and is dropped WITHOUT shutdown — no checkpoint, dirty frames lost.
    // The WAL replays both writes on reopen.
    let crash_dir = std::env::temp_dir().join(format!("clic-example-crash-{}", std::process::id()));
    std::fs::remove_dir_all(&crash_dir).ok();
    let crash_store = StoreConfig::new(&crash_dir, 64).with_page_size(PAGE_SIZE);
    let server = Server::start(
        ServerConfig::new(64)
            .with_shards(1)
            .with_store(crash_store.clone()),
    );
    let hint = HintSetId(0);
    let payload = |tag: u8| vec![tag; PAGE_SIZE];
    server.submit(&[
        ServerRequest::Put {
            client: ClientId(0),
            page: PageId(7),
            hint,
            write_hint: None,
            data: Some(payload(0xA7)),
        },
        ServerRequest::Put {
            client: ClientId(0),
            page: PageId(8),
            hint,
            write_hint: None,
            data: Some(payload(0xB8)),
        },
    ]);
    drop(server); // crash: no checkpoint, the dirty frames never hit disk

    let recovered = PageStore::open(crash_store).expect("recover from the WAL");
    assert_eq!(recovered.recovered_writes(), 2);
    recovered.read(PageId(7), &mut buf).expect("read page 7");
    assert_eq!(buf, payload(0xA7));
    recovered.read(PageId(8), &mut buf).expect("read page 8");
    assert_eq!(buf, payload(0xB8));
    println!(
        "crash demo: dropped a server mid-flight; the WAL replayed {} acknowledged \
         writes on reopen, contents intact.",
        recovered.recovered_writes()
    );
    drop(recovered);
    std::fs::remove_dir_all(&crash_dir).ok();
}
