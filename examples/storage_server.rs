//! Domain scenario: a live storage server consolidating several database
//! instances — the online counterpart of `multi_client_consolidation`.
//!
//! Three DB2 TPC-C clients (the Figure 11 mix) drive a sharded CLIC server
//! concurrently, one closed-loop client thread each. The harness reports
//! throughput, batch latency percentiles, and per-client hit ratios; a
//! single-threaded CLIC simulation of the equivalent interleaved trace shows
//! how faithfully the sharded online deployment tracks the offline policy.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example storage_server
//! ```

use clic::prelude::*;

fn main() {
    let scale = PresetScale::Smoke;
    let presets = [
        TracePreset::Db2C60,
        TracePreset::Db2C300,
        TracePreset::Db2C540,
    ];

    // Independent clients over disjoint page ranges, truncated to the
    // shortest trace so no client is over-represented (as in Figure 11).
    let traces = preset_client_traces(&presets, scale);
    for trace in &traces {
        println!("client trace: {}", trace.summary());
    }

    let cache_pages = 1_800;
    let shards = 4;
    let total: u64 = traces.iter().map(|t| t.len() as u64).sum();
    let window = suggested_window(total);
    let config = LoadConfig::new(
        ServerConfig::new(cache_pages)
            .with_shards(shards)
            .with_clic(
                ClicConfig::default()
                    .with_window(window)
                    .with_tracking(TrackingMode::TopK(100)),
            )
            .with_merge_every(window),
    )
    .with_batch(64);

    println!("\nserver: {cache_pages} pages, {shards} shards, window {window}");
    let report = run_load(&config, &traces);

    println!(
        "\nthroughput: {:.0} req/s ({} requests in {:.2} s, {} priority merges)",
        report.throughput_rps(),
        report.requests(),
        report.elapsed.as_secs_f64(),
        report.merges,
    );
    println!(
        "batch latency: p50 {} us, p95 {} us, p99 {} us, max {} us",
        report.latency.p50_us, report.latency.p95_us, report.latency.p99_us, report.latency.max_us
    );
    println!("\n{:<10} {:>15}", "client", "read hit ratio");
    for client in &report.clients {
        println!(
            "{:<10} {:>14.1}%",
            client.trace,
            client.read_hit_ratio() * 100.0
        );
    }
    println!(
        "{:<10} {:>14.1}%",
        "overall",
        report.read_hit_ratio() * 100.0
    );

    // Reference: the offline Figure 11 shared cache on the same requests.
    let refs: Vec<&Trace> = traces.iter().collect();
    let (combined, _) = interleave(&refs);
    let mut reference = Clic::new(
        cache_pages,
        ClicConfig::default()
            .with_window(suggested_window(combined.len() as u64))
            .with_tracking(TrackingMode::TopK(100)),
    );
    let reference_result = simulate(&mut reference, &combined);
    println!(
        "\noffline single-cache reference: {:.1}% — the sharded online server\n\
         stays close because the cross-shard priority merge keeps every shard's\n\
         hint learning aligned with the global workload.",
        reference_result.read_hit_ratio() * 100.0
    );
}
