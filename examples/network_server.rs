//! Domain scenario: CLIC as a networked storage service — the on-the-wire
//! counterpart of `storage_server`.
//!
//! A store-backed sharded server goes up behind the event-driven TCP
//! front-end, and everything below happens over real sockets on localhost:
//!
//! 1. A blocking client pipelines a batch of `Put`s with page payloads,
//!    reads one back byte-for-byte, deletes it, and watches the re-read
//!    miss — the full opcode set over one connection.
//! 2. A `Stats` probe pulls the complete [`StatsSnapshot`] (simulation
//!    result + metrics registry) through the binary codec.
//! 3. An open-loop Poisson generator offers a fixed arrival rate for half
//!    a second and reports latency percentiles measured from each
//!    request's *scheduled* send time, so queueing delay is charged to the
//!    server rather than silently absorbed (no coordinated omission).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example network_server
//! ```

use clic::prelude::*;

const PAGE_SIZE: usize = 512;

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join(format!("clic-example-net-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let cache_pages = 1_024;
    let config = ServerConfig::new(cache_pages)
        .with_shards(2)
        .with_store(StoreConfig::new(&dir, cache_pages).with_page_size(PAGE_SIZE));
    let net = NetServer::start(Server::start(config), NetOptions::default())?;
    let addr = net.tcp_addr().expect("tcp front-end enabled");
    println!("CLIC is listening on {addr} (2 shards, {cache_pages}-page cache)\n");

    // --- 1. The opcode set, pipelined over one TCP connection. ---------
    let mut client = BlockingClient::connect_tcp(addr)?;
    let hint = HintSetId(0);
    let puts: Vec<ServerRequest> = (0..64)
        .map(|i| ServerRequest::Put {
            client: ClientId(0),
            page: PageId(i),
            hint,
            write_hint: None,
            data: Some(page_payload(PageId(i), PAGE_SIZE)),
        })
        .collect();
    client.call_batch(&puts)?;
    println!(
        "pipelined {} Puts with {PAGE_SIZE}-byte payloads",
        puts.len()
    );

    let get =
        |client: &mut BlockingClient, page: u64| -> std::io::Result<(bool, Option<Vec<u8>>)> {
            let response = client.call(&ServerRequest::Get {
                client: ClientId(0),
                page: PageId(page),
                hint,
                prefetch: false,
            })?;
            Ok((
                response.hit().unwrap_or(false),
                response.data().map(<[u8]>::to_vec),
            ))
        };
    let (hit, data) = get(&mut client, 17)?;
    assert!(hit, "a just-written page is resident");
    assert_eq!(
        data.as_deref(),
        Some(&page_payload(PageId(17), PAGE_SIZE)[..])
    );
    println!("Get(17): hit, payload verified byte-for-byte over the wire");

    let deleted = client
        .call(&ServerRequest::Delete { page: PageId(17) })?
        .existed()
        .expect("a delete response");
    assert!(deleted, "the page was there to delete");
    let (hit_after, _) = get(&mut client, 17)?;
    assert!(!hit_after, "a deleted page cannot hit");
    println!("Delete(17): existed; the re-read misses as it must\n");

    // --- 2. Full statistics through the binary codec. ------------------
    let snapshot = client.stats()?;
    println!(
        "Stats over the wire: policy {}, {} requests, read hit ratio {:.1}%, \
         {} store bytes written",
        snapshot.result.policy,
        snapshot.result.stats.requests(),
        snapshot.result.stats.read_hit_ratio() * 100.0,
        snapshot.metrics.counter("store.bytes_written"),
    );
    drop(client);

    // --- 3. Open-loop load: latency at a fixed offered rate. -----------
    let open_loop = OpenLoopConfig {
        rate: 20_000.0,
        requests: 10_000,
        pages: 4_096,
        payload: Some(PAGE_SIZE),
        ..OpenLoopConfig::default()
    };
    println!(
        "\noffering {:.0} req/s open loop ({} requests, seed {}) ...",
        open_loop.rate, open_loop.requests, open_loop.seed
    );
    let report = run_open_loop(addr, &open_loop)?;
    println!(
        "achieved {:.0} req/s; latency from scheduled send: p50 {} us, \
         p95 {} us, p99 {} us, max {} us",
        report.achieved_rps,
        report.latency.p50_us,
        report.latency.p95_us,
        report.latency.p99_us,
        report.latency.max_us
    );

    // Clean shutdown hands back the final simulation result.
    let result = net.shutdown()?;
    println!(
        "\nshutdown: server answered {} requests in total, read hit ratio {:.1}%",
        result.stats.requests(),
        result.stats.read_hit_ratio() * 100.0
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
