//! Compare every replacement policy in the workspace — the paper's baselines
//! plus the extra classical policies (FIFO, CLOCK, LFU, 2Q, MQ, CAR) — on one
//! decision-support (TPC-H-like) trace, including the offline optimum.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example policy_shootout
//! ```

use cache_sim::policies::{BaselinePolicy, Opt};
use clic::prelude::*;

fn main() {
    let preset = TracePreset::Db2H400;
    let trace = preset.build(PresetScale::Smoke);
    println!("trace: {}", trace.summary());

    let cache_pages = 1_800;
    let window = suggested_window(trace.len() as u64);

    let mut rows: Vec<(String, f64)> = Vec::new();

    // Offline optimum (upper bound).
    let mut opt = Opt::from_trace(&trace, cache_pages);
    rows.push(("OPT".into(), simulate(&mut opt, &trace).read_hit_ratio()));

    // Every online baseline from the simulator crate.
    for kind in BaselinePolicy::ALL {
        let mut policy = kind.build(cache_pages);
        let ratio = simulate(policy.as_mut(), &trace).read_hit_ratio();
        rows.push((kind.name().to_string(), ratio));
    }

    // CLIC, full tracking and bounded tracking.
    let mut clic = Clic::new(cache_pages, ClicConfig::default().with_window(window));
    rows.push(("CLIC".into(), simulate(&mut clic, &trace).read_hit_ratio()));
    let mut clic_topk = Clic::new(
        cache_pages,
        ClicConfig::default()
            .with_window(window)
            .with_tracking(TrackingMode::TopK(10)),
    );
    rows.push((
        "CLIC(k=10)".into(),
        simulate(&mut clic_topk, &trace).read_hit_ratio(),
    ));

    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\n{:<12} {:>16}", "policy", "read hit ratio");
    for (name, ratio) in &rows {
        println!("{:<12} {:>15.1}%", name, ratio * 100.0);
    }
    println!(
        "\nScan-heavy decision-support workloads defeat recency- and frequency-based\n\
         policies; the hint-aware CLIC avoids caching one-shot scan pages and keeps\n\
         the re-referenced index/dimension pages instead."
    );
}
