//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build image has no network access, so the real `proptest` cannot be
//! fetched. This vendored stand-in supports the surface the workspace's
//! property suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, doc comments,
//!   and multiple `name in strategy` parameters per test),
//! * integer-range, tuple, [`collection::vec`], [`arbitrary::any`],
//!   [`option::of`], and [`strategy::Strategy::prop_map`] strategies,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! It generates random cases deterministically from the test name but does
//! **no shrinking**: a failing case reports its full inputs instead of a
//! minimized one. That trades debugging convenience for zero dependencies.

#![deny(missing_docs)]

/// Test-runner configuration and error types.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration; `ProptestConfig` in the prelude.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// Returns a configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property observation (what `prop_assert!` returns).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic source of randomness for generated cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeds the generator from the test's name (FNV-1a), so every run of
        /// a given property sees the same case sequence.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
}

/// `any::<T>()` and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<A> {
        _marker: PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any {
            _marker: PhantomData,
        }
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A length specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                start: r.start,
                end_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end_exclusive: n + 1,
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.start..self.size.end_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element`-generated values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Generates `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current property case if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current property case if `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)*), l, r
                ),
            ));
        }
    }};
}

/// Fails the current property case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that checks `body` against `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = ::std::format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    ::std::panic!(
                        "property '{}' failed at case {}/{}: {}\nwith inputs:\n{}",
                        stringify!($name), case + 1, config.cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds and tuples/vecs compose.
        #[test]
        fn generated_values_respect_strategies(
            xs in crate::collection::vec((0u8..5, 10u64..20), 1..50),
            flag in any::<bool>(),
            maybe in crate::option::of(1usize..4),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 50);
            for (a, b) in &xs {
                prop_assert!(*a < 5);
                prop_assert!((10..20).contains(b));
            }
            let _covered: bool = flag;
            if let Some(m) = maybe {
                prop_assert!((1..4).contains(&m));
            }
        }

        /// prop_map applies its function.
        #[test]
        fn prop_map_composes(x in (0u16..100).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0);
            prop_assert!(x < 200);
            prop_assert_eq!(x / 2 * 2, x);
            prop_assert_ne!(x, 201);
        }
    }
}
