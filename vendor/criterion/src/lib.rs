//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build image has no network access, so the real `criterion` cannot be
//! fetched. This vendored stand-in keeps the workspace's benches compiling
//! and runnable: it supports [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::benchmark_group`], per-group [`BenchmarkGroup::throughput`] /
//! [`BenchmarkGroup::sample_size`], [`BenchmarkGroup::bench_with_input`],
//! [`Criterion::bench_function`], and [`Bencher::iter`].
//!
//! Measurement is deliberately simple — a warm-up iteration followed by a
//! fixed sample of timed iterations, reporting mean wall-clock time per
//! iteration (and throughput when configured). There is no statistical
//! analysis, HTML report, or saved baseline.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a benchmark's throughput is expressed in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, e.g. `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.parameter.is_empty() {
            f.write_str(&self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Times one closure; handed to the `|b, ..| b.iter(..)` bench bodies.
#[derive(Debug)]
pub struct Bencher {
    samples: u32,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(samples: u32) -> Self {
        Bencher {
            samples,
            elapsed: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Runs `routine` once to warm up, then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += u64::from(self.samples);
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iterations == 0 {
            println!("{name}: no iterations recorded");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iterations as f64;
        let mut line = format!("{name}: {:.3} ms/iter", per_iter * 1e3);
        match throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                line.push_str(&format!(" ({:.2} Melem/s)", n as f64 / per_iter / 1e6));
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                line.push_str(&format!(
                    " ({:.2} MiB/s)",
                    n as f64 / per_iter / (1 << 20) as f64
                ));
            }
            _ => {}
        }
        println!("{line}");
    }
}

/// A named collection of related benchmarks sharing throughput/sample config.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    samples: u32,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed iterations each benchmark in this group runs.
    /// Group-local, matching real criterion: it does not affect later groups.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1) as u32;
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.samples);
        routine(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.samples);
        routine(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Ends the group. (The real criterion runs comparisons here; the stub
    /// has nothing left to do.)
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    samples: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        let samples = self.samples;
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            samples,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.samples);
        routine(&mut bencher);
        bencher.report(&name.to_string(), None);
        self
    }
}

/// Declares a function running each listed benchmark against one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(4)).sample_size(3);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| {
                total += 1;
                xs.iter().sum::<u64>()
            })
        });
        group.finish();
        assert!(total >= 4); // 1 warm-up + 3 samples
    }

    #[test]
    fn id_renders_both_parts() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
