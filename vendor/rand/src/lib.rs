//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build image for this repository has no network access, so the real
//! `rand` cannot be fetched from crates.io. This vendored stand-in provides
//! exactly the surface the workspace uses — [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] —
//! backed by a deterministic xoshiro256++ generator seeded via SplitMix64.
//!
//! It is **not** a cryptographic RNG and makes no attempt to match the stream
//! of the real `StdRng`; workloads only require determinism per seed and
//! reasonable statistical quality, both of which xoshiro256++ provides.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can produce random values of themselves from an RNG.
///
/// Mirrors `rand::distributions::Standard`-style sampling for the handful of
/// primitive types the workspace draws with [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges (and other shapes) that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Draws a uniform value in `0..span` (`span > 0`) without modulo bias worth
/// worrying about at the spans this workspace uses.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift reduction (Lemire); bias is < 2^-64 * span, negligible.
    let x = rng.next_u64();
    ((u128::from(x) * u128::from(span)) >> 64) as u64
}

/// The raw source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type (e.g. `f64` in `[0,1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0, 1], got {p}"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it internally.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike the real `rand::rngs::StdRng` this stream is stable across
    /// versions of this vendored crate — experiments that publish seeds keep
    /// reproducing the same traces.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, per the xoshiro authors' guidance.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1000)).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(5u32..10);
            assert!((5..10).contains(&x));
            let y = rng.gen_range(3u64..=4);
            assert!((3..=4).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
    }
}
