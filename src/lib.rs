//! # CLIC: CLient-Informed Caching for Storage Servers — a reproduction
//!
//! This crate is the top-level facade of a full reproduction of
//! *CLIC: CLient-Informed Caching for Storage Servers*
//! (Liu, Aboulnaga, Salem, Li — FAST '09). It re-exports the workspace
//! crates so that applications can depend on a single crate:
//!
//! * [`core`] ([`clic_core`]) — the CLIC policy itself: generic hint-set
//!   analysis, windowed benefit/cost priorities, the priority-based
//!   replacement policy, and bounded top-k hint tracking,
//! * [`sim`] ([`cache_sim`]) — the storage-server cache model, the
//!   [`CachePolicy`] trait, the baseline policies (OPT, LRU, ARC, TQ, and
//!   more), the simulation driver, and multi-client partitioned caches,
//! * [`stats`] ([`stream_stats`]) — Space-Saving and other frequent-item
//!   summaries,
//! * [`workloads`] ([`trace_gen`]) — the simulated DB2/MySQL storage clients,
//!   TPC-C-like and TPC-H-like workload generators, the eight trace presets
//!   of the paper's Figure 5, noise injection, and trace interleaving,
//! * [`server`] ([`clic_server`]) — the *online* deployment: a concurrent,
//!   sharded storage-server cache service with batched request dispatch,
//!   cross-shard hint-priority merging, a multi-client load harness, an
//!   event-driven TCP/Unix-socket front-end speaking a length-prefixed
//!   binary protocol, and an open-loop Poisson load generator with
//!   coordinated-omission-safe latency measurement,
//! * [`store`] ([`clic_store`]) — the data plane behind the server: a
//!   disk-backed page store (one per server shard) with latched buffer
//!   frames, dirty tracking, a background flusher, and a write-ahead log
//!   with selectable durability (buffered, group commit, or strict), so
//!   `Put`/`Get` move real bytes and acknowledged writes survive a crash,
//! * [`obs`] ([`clic_obs`]) — the observability layer threaded through the
//!   store and server: an atomic metrics registry, log-scaled latency
//!   histograms, and per-thread event tracing, all behind a
//!   zero-when-disabled [`prelude::Recorder`].
//!
//! The experiment harness that regenerates every table and figure of the
//! paper lives in the `clic-bench` crate (`crates/bench`), with one binary
//! per figure.
//!
//! # Quick start
//!
//! ```
//! use clic::prelude::*;
//!
//! // 1. Generate a storage-server trace from a simulated DB2 TPC-C client.
//! let trace = TracePreset::Db2C60.build(PresetScale::Smoke);
//!
//! // 2. Run CLIC and LRU over it at the same server-cache size.
//! let cache_pages = 1_000;
//! let mut clic = Clic::new(cache_pages, ClicConfig::default().with_window(10_000));
//! let mut lru = Lru::new(cache_pages);
//! let clic_result = simulate(&mut clic, &trace);
//! let lru_result = simulate(&mut lru, &trace);
//!
//! // 3. Compare read hit ratios.
//! println!(
//!     "CLIC {:.1}% vs LRU {:.1}%",
//!     clic_result.read_hit_ratio() * 100.0,
//!     lru_result.read_hit_ratio() * 100.0
//! );
//! # assert!(clic_result.read_hit_ratio() >= 0.0);
//! ```
//!
//! # Serving requests online
//!
//! The same policy can run as a live, thread-safe service: a [`Server`]
//! partitions the page space across independently locked CLIC shards and
//! accepts batches of `Get`/`Put` requests from any number of client
//! threads. With one shard its results are identical to [`simulate`]; see
//! `examples/storage_server.rs` for the full multi-client load harness.
//!
//! ```
//! use clic::prelude::*;
//!
//! let server = Server::start(ServerConfig::new(1_000).with_shards(2));
//! let hint = HintSetId(0);
//! let batch = vec![
//!     ServerRequest::Put {
//!         client: ClientId(0),
//!         page: PageId(7),
//!         hint,
//!         write_hint: None,
//!         data: None, // page bytes, when the server runs over a store
//!     },
//!     ServerRequest::Get {
//!         client: ClientId(0),
//!         page: PageId(7),
//!         hint,
//!         prefetch: false,
//!     },
//! ];
//! let responses = server.submit(&batch);
//! assert_eq!(responses[1].hit(), Some(true)); // the Put populated the cache
//! let result = server.shutdown(); // same shape as a SimulationResult
//! assert_eq!(result.stats.requests(), 2);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use cache_sim as sim;
pub use clic_core as core;
pub use clic_obs as obs;
pub use clic_server as server;
pub use clic_store as store;
pub use stream_stats as stats;
pub use trace_gen as workloads;

pub use cache_sim::CachePolicy;

/// The most commonly used items, re-exported in one place.
pub mod prelude {
    pub use cache_sim::policies::{Arc, Lru, Opt, Tq};
    pub use cache_sim::{
        compare_policies, page_partition, simulate, simulate_partitioned,
        simulate_partitioned_parallel, sweep, sweep_parallel, AccessKind, CachePolicy, CacheStats,
        ClientId, HintSetId, IoStats, PageId, PartitionedCache, Request, SimulationResult,
        ThreadPool, Trace, TraceBuilder, WriteHint,
    };
    pub use clic_core::{
        analyze_trace, suggested_window, Clic, ClicConfig, HintSetReport, TrackingMode,
    };
    pub use clic_obs::{Clock, HistogramSnapshot, MetricsSnapshot, Recorder, SpanKind};
    pub use clic_server::{
        merge_client_traces, preset_client_traces, run_load, run_open_loop, BlockingClient,
        LoadConfig, LoadReport, MergeWeighting, NetOptions, NetServer, OpenLoopConfig,
        OpenLoopReport, Server, ServerConfig, ServerRequest, ServerResponse, ShardedClic,
        ShardedClicConfig, StatsSnapshot,
    };
    pub use clic_store::{
        page_payload, replay_storage, replay_storage_partitioned, Durability, PageStore,
        StorageReplayReport, StoreConfig, StoreError, DEFAULT_PAGE_SIZE,
    };
    pub use stream_stats::{FrequencyEstimator, SpaceSaving};
    pub use trace_gen::{
        inject_noise, interleave, NoiseConfig, PresetScale, TpccConfig, TpccWorkload, TpchConfig,
        TpchVariant, TpchWorkload, TracePreset,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable_together() {
        // Build a tiny trace through the workload crate, run it through both
        // a baseline and CLIC via the re-exported names.
        let trace = TracePreset::MyH65.build(PresetScale::Smoke);
        let mut lru = Lru::new(500);
        let mut clic = Clic::new(500, ClicConfig::default().with_window(5_000));
        let lru_result = simulate(&mut lru, &trace);
        let clic_result = simulate(&mut clic, &trace);
        assert!(lru_result.stats.requests() == trace.len() as u64);
        assert!(clic_result.stats.requests() == trace.len() as u64);
    }

    #[test]
    fn facade_parallel_sweep_matches_serial_sweep() {
        let trace = TracePreset::MyH65.build(PresetScale::Smoke);
        let factory: (String, fn(usize) -> cache_sim::BoxedPolicy) = ("LRU".to_string(), |cap| {
            Box::new(Lru::new(cap)) as cache_sim::BoxedPolicy
        });
        let capacities = [100usize, 300, 500];
        let serial = sweep(&factory, &trace, &capacities);
        let parallel = sweep_parallel(&ThreadPool::new(2), &factory, &trace, &capacities);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.capacity, p.capacity);
            assert_eq!(s.result.stats, p.result.stats);
        }
    }
}
