//! Integration tests for the bounded hint-tracking experiments: top-k
//! filtering (Section 6.2 / Figure 9) and noise-hint injection
//! (Section 6.3 / Figure 10).

use clic::prelude::*;

fn run_clic(trace: &Trace, cache: usize, tracking: TrackingMode) -> f64 {
    let window = suggested_window(trace.len() as u64);
    let mut clic = Clic::new(
        cache,
        ClicConfig::default()
            .with_window(window)
            .with_tracking(tracking),
    );
    simulate(&mut clic, trace).read_hit_ratio()
}

/// Tracking a small number of frequent hint sets is enough to match full
/// tracking (Figure 9: k = 20 suffices for TPC-C, k = 10 for TPC-H).
#[test]
fn small_k_matches_full_tracking() {
    let cache = 1_800;
    for (preset, k) in [(TracePreset::Db2C300, 20), (TracePreset::Db2H400, 10)] {
        let trace = preset.build(PresetScale::Smoke);
        let full = run_clic(&trace, cache, TrackingMode::Full);
        let topk = run_clic(&trace, cache, TrackingMode::TopK(k));
        assert!(
            topk >= full - 0.05,
            "{}: top-{k} ({topk:.3}) should be within 5 points of full tracking ({full:.3})",
            preset.name()
        );
    }
}

/// Extremely small k costs performance on at least one workload — otherwise
/// the whole top-k mechanism would be pointless to study.
#[test]
fn k_of_one_is_worse_than_full_tracking_somewhere() {
    let cache = 1_800;
    let mut any_gap = false;
    for preset in [TracePreset::Db2C300, TracePreset::Db2C540] {
        let trace = preset.build(PresetScale::Smoke);
        let full = run_clic(&trace, cache, TrackingMode::Full);
        let k1 = run_clic(&trace, cache, TrackingMode::TopK(1));
        if full - k1 > 0.05 {
            any_gap = true;
        }
    }
    assert!(any_gap, "k = 1 should hurt on at least one TPC-C trace");
}

/// Injecting useless hint types multiplies the number of distinct hint sets
/// (up to D^T) and, with a fixed tracking budget, degrades CLIC's hit ratio
/// on the traces that depend on fine-grained hint distinctions (Figure 10).
#[test]
fn noise_hints_dilute_fixed_budget_tracking() {
    let preset = TracePreset::Db2C540;
    let base = preset.build(PresetScale::Smoke);
    let cache = 1_800;

    let clean_sets = base.summary().distinct_hint_sets;
    let noisy = inject_noise(&base, NoiseConfig::new(3));
    let noisy_sets = noisy.summary().distinct_hint_sets;
    assert!(
        noisy_sets > 10 * clean_sets,
        "T=3 should blow up the hint-set count ({clean_sets} -> {noisy_sets})"
    );

    let clean_ratio = run_clic(&base, cache, TrackingMode::TopK(100));
    let noisy_ratio = run_clic(&noisy, cache, TrackingMode::TopK(100));
    assert!(
        noisy_ratio < clean_ratio,
        "noise should not improve the hit ratio ({clean_ratio:.3} -> {noisy_ratio:.3})"
    );
    assert!(
        clean_ratio - noisy_ratio > 0.05,
        "T=3 with k=100 should visibly degrade DB2_C540 ({clean_ratio:.3} -> {noisy_ratio:.3})"
    );
}

/// Noise injection leaves the request structure (pages, kinds, ordering)
/// untouched, so hint-oblivious policies are unaffected by it.
#[test]
fn noise_does_not_affect_hint_oblivious_policies() {
    let base = TracePreset::Db2C60.build(PresetScale::Smoke);
    let noisy = inject_noise(&base, NoiseConfig::new(2));
    let cache = 1_200;
    let base_lru = simulate(&mut Lru::new(cache), &base).read_hit_ratio();
    let noisy_lru = simulate(&mut Lru::new(cache), &noisy).read_hit_ratio();
    assert!((base_lru - noisy_lru).abs() < 1e-12);
}
