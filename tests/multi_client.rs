//! Integration tests for the multi-client experiment (Section 6.4 /
//! Figure 11): interleaved traces, shared vs partitioned caches.

use cache_sim::policy::PolicyFactory;
use cache_sim::BoxedPolicy;
use clic::prelude::*;

struct ClicFactory {
    window: u64,
}

impl PolicyFactory for ClicFactory {
    fn name(&self) -> String {
        "CLIC".to_string()
    }

    fn build(&self, capacity: usize) -> BoxedPolicy {
        Box::new(Clic::new(
            capacity,
            ClicConfig::default()
                .with_window(self.window)
                .with_tracking(TrackingMode::TopK(100)),
        ))
    }
}

fn build_clients() -> (Trace, Vec<ClientId>) {
    let presets = [
        TracePreset::Db2C60,
        TracePreset::Db2C300,
        TracePreset::Db2C540,
    ];
    let traces: Vec<Trace> = presets
        .iter()
        .enumerate()
        .map(|(i, p)| {
            p.build_with_offset(PresetScale::Smoke, i as u64 * 100_000_000, 42 + i as u64)
        })
        .collect();
    let refs: Vec<&Trace> = traces.iter().collect();
    interleave(&refs)
}

/// The combined trace keeps clients separate: requests alternate between the
/// three clients, page ranges never collide, and the hint-set count is the
/// sum of the individual counts.
#[test]
fn interleaved_trace_is_well_formed() {
    let (combined, clients) = build_clients();
    assert_eq!(clients.len(), 3);
    assert_eq!(combined.catalog.client_count(), 3);
    // Round-robin: three consecutive requests come from three distinct clients.
    for chunk in combined.requests.chunks_exact(3).take(100) {
        let mut seen: Vec<ClientId> = chunk.iter().map(|r| r.client).collect();
        seen.dedup();
        assert_eq!(seen.len(), 3, "round-robin order violated");
    }
    // Per-client request counts are equal (truncated to the shortest trace).
    for client in &clients {
        let count = combined
            .requests
            .iter()
            .filter(|r| r.client == *client)
            .count();
        assert_eq!(count * 3, combined.len());
    }
}

/// A shared CLIC-managed cache achieves at least the overall hit ratio of an
/// equal static partitioning of the same space (the paper's Figure 11
/// result: sharing helps because CLIC gives the space to the client with the
/// best caching opportunities).
#[test]
fn shared_clic_cache_beats_equal_partitioning_overall() {
    let (combined, clients) = build_clients();
    let shared_pages = 1_800;
    let window = suggested_window(combined.len() as u64);

    let mut shared = Clic::new(
        shared_pages,
        ClicConfig::default()
            .with_window(window)
            .with_tracking(TrackingMode::TopK(100)),
    );
    let shared_result = simulate(&mut shared, &combined);

    let factory = ClicFactory { window };
    let mut partitioned = PartitionedCache::new(&factory, &clients, shared_pages / clients.len());
    let partitioned_result = simulate(&mut partitioned, &combined);

    assert!(
        shared_result.read_hit_ratio() >= partitioned_result.read_hit_ratio() - 0.01,
        "shared {:.3} should not lose to partitioned {:.3}",
        shared_result.read_hit_ratio(),
        partitioned_result.read_hit_ratio()
    );
}

/// The shared cache is allowed to serve clients unevenly — that is the point
/// of maximizing the overall hit ratio — but every client's requests must be
/// accounted for.
#[test]
fn per_client_accounting_covers_all_requests() {
    let (combined, clients) = build_clients();
    let mut shared = Clic::new(1_200, ClicConfig::default().with_window(5_000));
    let result = simulate(&mut shared, &combined);
    let total: u64 = clients
        .iter()
        .map(|c| result.per_client.get(c).map(|s| s.requests()).unwrap_or(0))
        .sum();
    assert_eq!(total, combined.len() as u64);
}
