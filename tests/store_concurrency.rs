//! Concurrent smoke tests for the per-shard data plane: real client
//! threads driving a store-backed sharded server, checked against the
//! serial partitioned replay of the same requests.
//!
//! With per-shard stores, each shard's worker owns its own `PageStore`
//! outside the shard lock, so concurrent clients exercise the latched
//! frame arena and the WAL from several threads at once. Thread
//! scheduling makes the per-shard *interleaving* nondeterministic, so
//! these tests split their checks in two:
//!
//! * **Exact** — counters that depend only on the request multiset, not
//!   on order: total requests and cache-interface bytes moved must equal
//!   the serial [`replay_storage_partitioned`] run bit-for-bit.
//! * **Tolerance** — the aggregate read hit ratio must land within 10% of
//!   the shared single-cache simulation of the interleaved trace, the
//!   same bar as the policy-only concurrency tests.
//!
//! Both tests finish by reopening every shard's store after the clean
//! shutdown and reading written pages back byte-for-byte — the checkpoint
//! left nothing in any WAL.
//!
//! `scripts/verify.sh --smoke-store` runs this file as the concurrent
//! smoke gate.

use std::path::PathBuf;

use clic::prelude::*;

const PAGE_SIZE: usize = 128;

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "clic-store-concurrency-{label}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Drives `presets.len()` concurrent client threads against a
/// `shards`-shard store-backed server, compares the order-insensitive I/O
/// counters and the hit ratio against the serial partitioned replay of
/// the interleaved trace, then reopens every shard store and verifies
/// written pages byte-for-byte.
fn concurrent_run_matches_serial_replay(
    presets: &[TracePreset],
    shards: usize,
    durability: Durability,
    label: &str,
) {
    let traces = preset_client_traces(presets, PresetScale::Smoke);
    let total: u64 = traces.iter().map(|t| t.len() as u64).sum();
    let cache_pages = 1_800;
    let window = suggested_window(total);
    let clic_config = ClicConfig::default()
        .with_window(window)
        .with_tracking(TrackingMode::TopK(100));

    // Online: one closed-loop client thread per trace over a real store.
    let dir = scratch(label);
    let store_config = StoreConfig::new(&dir, cache_pages)
        .with_page_size(PAGE_SIZE)
        .with_flush_threshold(64);
    let report = run_load(
        &LoadConfig::new(
            ServerConfig::new(cache_pages)
                .with_shards(shards)
                .with_clic(clic_config)
                .with_merge_every(window)
                .with_durability(durability)
                .with_store(store_config.clone()),
        )
        .with_batch(64),
        &traces,
    );
    assert_eq!(report.requests(), total, "no request may be lost");
    assert_eq!(report.clients.len(), presets.len());
    let online_io = report.io.expect("a store-backed run reports I/O");

    // Serial reference: the same requests through the partitioned replay,
    // one partition per shard, on one thread.
    let refs: Vec<&Trace> = traces.iter().collect();
    let (combined, _) = interleave(&refs);
    let serial_dir = scratch(&format!("{label}-serial"));
    let serial_config = StoreConfig::new(&serial_dir, cache_pages)
        .with_page_size(PAGE_SIZE)
        .with_flush_threshold(64);
    let factory = (
        "CLIC(k=100)".to_string(),
        move |capacity: usize| -> cache_sim::BoxedPolicy {
            Box::new(Clic::new(capacity, clic_config))
        },
    );
    let serial = replay_storage_partitioned(
        &ThreadPool::new(1),
        &factory,
        &combined,
        cache_pages,
        shards,
        &serial_config,
    )
    .expect("serial replay");
    std::fs::remove_dir_all(&serial_dir).ok();

    // Exact: order-insensitive counters match the serial replay. (WAL
    // records are *not* on this list: a bypassed write goes write-through
    // without a log record, and bypass decisions depend on policy state,
    // which depends on the scheduling order.)
    assert_eq!(report.requests(), serial.result.stats.requests());
    assert_eq!(online_io.bytes_read, serial.io.bytes_read);
    assert_eq!(online_io.bytes_written, serial.io.bytes_written);
    let writes: u64 = traces
        .iter()
        .flat_map(|t| &t.requests)
        .filter(|r| r.kind == AccessKind::Write)
        .count() as u64;
    assert!(
        online_io.wal_records > 0 && online_io.wal_records <= writes,
        "every WAL record acknowledges one staged write: {} records, {writes} writes",
        online_io.wal_records
    );

    // Tolerance: the hit-ratio reference is the *shared* single cache over
    // the same interleaved requests (the Figure 11 anchor, same bar as
    // `server_concurrency.rs`). The partitioned replay is not the right
    // yardstick here: it fragments hint learning across independent
    // partitions, while the online server's cross-shard priority merge
    // keeps the shards aligned with the global workload.
    let mut shared = Clic::new(
        cache_pages,
        ClicConfig::default()
            .with_window(suggested_window(combined.len() as u64))
            .with_tracking(TrackingMode::TopK(100)),
    );
    let single = simulate(&mut shared, &combined);
    let online_ratio = report.read_hit_ratio();
    let single_ratio = single.read_hit_ratio();
    assert!(
        (online_ratio - single_ratio).abs() <= 0.10 * single_ratio,
        "concurrent hit ratio {online_ratio:.3} must stay within 10% of the \
         shared single-cache result {single_ratio:.3}"
    );

    // The clean shutdown checkpointed every shard: reopen each store,
    // confirm the WAL is empty, and read one written page per client back
    // byte-for-byte through whichever shard owns it.
    let stores: Vec<PageStore> = (0..shards)
        .map(|shard| {
            let store =
                PageStore::open(store_config.for_shard(shard, shards)).expect("reopen shard store");
            assert_eq!(
                store.recovered_writes(),
                0,
                "a clean shutdown leaves shard {shard} nothing to recover"
            );
            store
        })
        .collect();
    let mut buf = Vec::new();
    for trace in &traces {
        let written = trace
            .requests
            .iter()
            .find(|r| r.kind == AccessKind::Write)
            .map(|r| r.page)
            .expect("the TPC-C mix writes");
        let store = &stores[page_partition(written, shards)];
        store.read(written, &mut buf).expect("read back");
        assert_eq!(buf, page_payload(written, PAGE_SIZE), "page {}", written.0);
    }
    drop(stores);
    std::fs::remove_dir_all(&dir).ok();
}

/// The `--smoke-store` concurrent smoke: 2 shards × 2 client threads.
#[test]
fn two_shards_two_clients_match_serial_replay() {
    concurrent_run_matches_serial_replay(
        &[TracePreset::Db2C60, TracePreset::Db2C300],
        2,
        Durability::Buffered,
        "2x2",
    );
}

/// The acceptance-bar shape — 4 shards × 4 clients, each shard owning its
/// store — run under the server's group-commit durability knob (which
/// changes when the WAL syncs, never what the policies decide or what the
/// WAL records).
#[test]
fn four_shards_four_clients_match_serial_replay_under_group_commit() {
    concurrent_run_matches_serial_replay(
        &[
            TracePreset::Db2C60,
            TracePreset::Db2C300,
            TracePreset::Db2C540,
            TracePreset::Db2C60,
        ],
        4,
        Durability::group_commit(),
        "4x4",
    );
}
