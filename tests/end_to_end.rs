//! End-to-end integration tests: generate the paper's workloads (at smoke
//! scale), run the full policy comparison, and assert the qualitative
//! findings of the paper's evaluation (Section 6.1).

use clic::prelude::*;

fn hit_ratio(policy: &mut dyn CachePolicy, trace: &Trace) -> f64 {
    simulate(policy, trace).read_hit_ratio()
}

fn window(trace: &Trace) -> u64 {
    suggested_window(trace.len() as u64)
}

/// OPT upper-bounds every online policy on every preset workload family.
#[test]
fn opt_upper_bounds_every_policy_on_tpcc() {
    let trace = TracePreset::Db2C300.build(PresetScale::Smoke);
    let cache = 1_800;
    let opt = hit_ratio(&mut Opt::from_trace(&trace, cache), &trace);
    let lru = hit_ratio(&mut Lru::new(cache), &trace);
    let arc = hit_ratio(&mut Arc::new(cache), &trace);
    let tq = hit_ratio(&mut Tq::new(cache), &trace);
    let clic = hit_ratio(
        &mut Clic::new(cache, ClicConfig::default().with_window(window(&trace))),
        &trace,
    );
    for (name, ratio) in [("LRU", lru), ("ARC", arc), ("TQ", tq), ("CLIC", clic)] {
        assert!(
            opt >= ratio - 1e-9,
            "OPT ({opt:.3}) must dominate {name} ({ratio:.3})"
        );
    }
}

/// The paper's headline TPC-C result: with a mid-sized DBMS buffer the
/// hint-aware policies (TQ and CLIC) clearly beat the hint-oblivious ones
/// (LRU and ARC).
#[test]
fn hint_aware_policies_beat_hint_oblivious_on_tpcc_c300() {
    let trace = TracePreset::Db2C300.build(PresetScale::Smoke);
    let cache = 1_800;
    let lru = hit_ratio(&mut Lru::new(cache), &trace);
    let arc = hit_ratio(&mut Arc::new(cache), &trace);
    let tq = hit_ratio(&mut Tq::new(cache), &trace);
    let clic = hit_ratio(
        &mut Clic::new(cache, ClicConfig::default().with_window(window(&trace))),
        &trace,
    );
    let best_oblivious = lru.max(arc);
    assert!(
        clic > best_oblivious + 0.05,
        "CLIC ({clic:.3}) should clearly beat the best hint-oblivious policy ({best_oblivious:.3})"
    );
    assert!(
        tq > best_oblivious + 0.05,
        "TQ ({tq:.3}) should clearly beat the best hint-oblivious policy ({best_oblivious:.3})"
    );
}

/// The paper's TPC-H result: CLIC beats every online baseline, often by a
/// large factor, because it avoids caching one-shot scan pages.
#[test]
fn clic_dominates_online_baselines_on_tpch() {
    for preset in [TracePreset::Db2H80, TracePreset::Db2H400] {
        let trace = preset.build(PresetScale::Smoke);
        let cache = 1_800;
        let lru = hit_ratio(&mut Lru::new(cache), &trace);
        let arc = hit_ratio(&mut Arc::new(cache), &trace);
        let tq = hit_ratio(&mut Tq::new(cache), &trace);
        let clic = hit_ratio(
            &mut Clic::new(cache, ClicConfig::default().with_window(window(&trace))),
            &trace,
        );
        let best_other = lru.max(arc).max(tq);
        assert!(
            clic > best_other,
            "{}: CLIC ({clic:.3}) should beat the best online baseline ({best_other:.3})",
            preset.name()
        );
    }
}

/// The C540 configuration (very large first-tier cache) is where CLIC's
/// fine-grained hint analysis pays off over TQ's hard-coded write-hint rule
/// at small server caches.
#[test]
fn clic_beats_tq_on_c540_at_small_server_cache() {
    let trace = TracePreset::Db2C540.build(PresetScale::Smoke);
    let cache = 600;
    let tq = hit_ratio(&mut Tq::new(cache), &trace);
    let clic = hit_ratio(
        &mut Clic::new(cache, ClicConfig::default().with_window(window(&trace))),
        &trace,
    );
    assert!(
        clic > tq,
        "CLIC ({clic:.3}) should beat TQ ({tq:.3}) on DB2_C540 with a small server cache"
    );
}

/// Offline hint analysis reproduces the Figure 3 observation: STOCK-table
/// replacement writes are a far better caching opportunity than ORDER_LINE
/// reads, without CLIC knowing what either hint means.
#[test]
fn figure3_hint_ordering_holds() {
    let trace = TracePreset::Db2C60.build(PresetScale::Smoke);
    let reports = analyze_trace(&trace);
    let stock_repl = reports
        .iter()
        .find(|r| r.label.contains("object ID=8") && r.label.contains("request type=3"))
        .expect("stock replacement writes must appear in the trace");
    let orderline_reads = reports
        .iter()
        .find(|r| r.label.contains("object ID=6") && r.label.contains("request type=0"))
        .expect("order-line reads must appear in the trace");
    assert!(
        stock_repl.priority > orderline_reads.priority,
        "stock replacement writes (Pr {:.6}) must outrank order-line reads (Pr {:.6})",
        stock_repl.priority,
        orderline_reads.priority
    );
}

/// Read hit ratios are monotone (within tolerance) in the server cache size
/// for CLIC, as in Figures 6-8.
#[test]
fn clic_hit_ratio_grows_with_cache_size() {
    let trace = TracePreset::Db2C300.build(PresetScale::Smoke);
    let mut previous = -1.0f64;
    for cache in [600usize, 1_200, 2_400] {
        let ratio = hit_ratio(
            &mut Clic::new(cache, ClicConfig::default().with_window(window(&trace))),
            &trace,
        );
        assert!(
            ratio >= previous - 0.02,
            "hit ratio should not collapse when the cache grows ({previous:.3} -> {ratio:.3})"
        );
        previous = ratio;
    }
}
