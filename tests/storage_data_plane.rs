//! End-to-end tests of the disk-backed data plane: the page store replayed
//! under the real policies on the paper's workloads, at smoke scale.
//!
//! Three guarantees ride on these:
//!
//! 1. The headline acceptance bar of the storage subsystem — CLIC's
//!    hint-informed admission performs **no more disk reads** than the LRU
//!    baseline on the Figure 11 smoke trace, measured against a real
//!    backing file rather than inferred from miss counts.
//! 2. The store-backed replay is *statistically invisible*: policy
//!    decisions (hits, misses, evictions) are bit-identical to the pure
//!    in-memory simulation, and the same holds for a 1-shard store-backed
//!    server.
//! 3. Acknowledged writes survive a server crash and read back
//!    byte-for-byte through the recovered store.

use std::path::PathBuf;

use clic::prelude::*;

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clic-data-plane-{label}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The Figure 11 workload at smoke scale: three DB2 TPC-C clients over
/// disjoint page ranges, interleaved round-robin.
fn fig11_smoke_trace() -> Trace {
    let presets = TracePreset::TPCC;
    let traces: Vec<Trace> = presets
        .iter()
        .enumerate()
        .map(|(i, p)| {
            p.build_with_offset(PresetScale::Smoke, (i as u64) * 100_000_000, 42 + i as u64)
        })
        .collect();
    let refs: Vec<&Trace> = traces.iter().collect();
    interleave(&refs).0
}

fn replay(policy: &mut dyn CachePolicy, trace: &Trace, label: &str) -> StorageReplayReport {
    let dir = scratch(label);
    let store = PageStore::open(
        StoreConfig::new(&dir, policy.capacity())
            .with_page_size(256)
            .with_flush_threshold(64),
    )
    .expect("open store");
    let report = replay_storage(policy, &store, trace).expect("replay");
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
    report
}

/// The acceptance bar: on the Figure 11 smoke trace, CLIC admission reads
/// the disk no more often than LRU admission over the same store setup.
#[test]
fn clic_performs_no_more_disk_reads_than_lru_on_fig11_smoke() {
    let trace = fig11_smoke_trace();
    let cache_pages = TracePreset::Db2C60.reference_cache_size(PresetScale::Smoke);
    let window = suggested_window(trace.len() as u64);

    let mut clic = Clic::new(
        cache_pages,
        ClicConfig::default()
            .with_window(window)
            .with_tracking(TrackingMode::TopK(100)),
    );
    let clic_report = replay(&mut clic, &trace, "clic");

    let mut lru = Lru::new(cache_pages);
    let lru_report = replay(&mut lru, &trace, "lru");

    assert!(
        clic_report.io.disk_reads <= lru_report.io.disk_reads,
        "CLIC must not read the disk more than LRU: {} vs {}",
        clic_report.io.disk_reads,
        lru_report.io.disk_reads
    );
    // Both replays moved the same bytes through the cache interface.
    assert_eq!(clic_report.io.bytes_read, lru_report.io.bytes_read);
    assert_eq!(clic_report.io.bytes_written, lru_report.io.bytes_written);
    // Sanity: this workload actually exercises the disk and the WAL.
    assert!(clic_report.io.disk_reads > 0);
    assert!(clic_report.io.wal_records > 0);
    assert!(clic_report.io.pages_flushed > 0);
}

/// The store is a pure data plane: replaying over it yields exactly the
/// statistics of the in-memory simulation, for both policies.
#[test]
fn store_backed_replay_is_statistically_invisible() {
    let trace = fig11_smoke_trace();
    let cache_pages = 1_200;
    let window = suggested_window(trace.len() as u64);

    let pure = {
        let mut clic = Clic::new(cache_pages, ClicConfig::default().with_window(window));
        simulate(&mut clic, &trace)
    };
    let stored = {
        let mut clic = Clic::new(cache_pages, ClicConfig::default().with_window(window));
        replay(&mut clic, &trace, "invisible")
    };
    assert_eq!(pure.stats, stored.result.stats);
    assert_eq!(pure.per_client, stored.result.per_client);
}

/// A 1-shard store-backed server matches the offline simulation
/// bit-for-bit — the byte-exactness anchor extended to the data plane.
#[test]
fn one_shard_store_backed_server_matches_simulation() {
    let trace = fig11_smoke_trace();
    let cache_pages = 1_200;
    let window = suggested_window(trace.len() as u64);
    let config = ClicConfig::default().with_window(window);

    let reference = {
        let mut clic = Clic::new(cache_pages, config);
        simulate(&mut clic, &trace)
    };

    let dir = scratch("one-shard");
    let server = Server::start(
        ServerConfig::new(cache_pages)
            .with_shards(1)
            .with_clic(config)
            .with_store(StoreConfig::new(&dir, cache_pages).with_page_size(128)),
    );
    for chunk in trace.requests.chunks(256) {
        let batch: Vec<ServerRequest> = chunk.iter().map(ServerRequest::from_request).collect();
        server.submit(&batch);
    }
    let result = server.shutdown();
    assert_eq!(result.stats, reference.stats);
    assert_eq!(result.per_client, reference.per_client);
    std::fs::remove_dir_all(&dir).ok();
}

/// Acknowledged writes survive a crash of the whole server stack and read
/// back byte-for-byte through the recovered store.
#[test]
fn server_crash_recovers_acknowledged_writes() {
    let dir = scratch("crash");
    let store_config = StoreConfig::new(&dir, 32).with_page_size(128);
    let server = Server::start(
        ServerConfig::new(32)
            .with_shards(2)
            .with_store(store_config.clone()),
    );
    let hint = HintSetId(0);
    let pages: Vec<u64> = (0..10).collect();
    let batch: Vec<ServerRequest> = pages
        .iter()
        .map(|&p| ServerRequest::Put {
            client: ClientId(0),
            page: PageId(p),
            hint,
            write_hint: None,
            data: Some(page_payload(PageId(p), 128)),
        })
        .collect();
    server.submit(&batch);
    drop(server); // crash: no shutdown, no checkpoint

    // Each shard owns its own store (and WAL) under a shard-N subdirectory;
    // recovery opens both and every acknowledged write is in exactly one.
    let shards = 2;
    let mut recovered = 0;
    let stores: Vec<PageStore> = (0..shards)
        .map(|shard| {
            let store = PageStore::open(store_config.for_shard(shard, shards)).expect("recover");
            recovered += store.recovered_writes();
            store
        })
        .collect();
    assert_eq!(recovered, pages.len() as u64);
    let mut buf = Vec::new();
    for &p in &pages {
        let store = &stores[page_partition(PageId(p), shards)];
        store.read(PageId(p), &mut buf).expect("read back");
        assert_eq!(buf, page_payload(PageId(p), 128), "page {p}");
    }
    drop(stores);
    std::fs::remove_dir_all(&dir).ok();
}
