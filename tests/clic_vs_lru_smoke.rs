//! Workspace smoke test for the paper's core claim: on a hinted
//! storage-server trace, CLIC's read hit ratio is at least LRU's.
//!
//! This is the end-to-end guard that the whole pipeline — trace generation,
//! hint cataloging, on-line hint-statistics tracking, priority evaluation,
//! and the replacement policy — still adds up to the headline result of the
//! paper (Figures 6-8: CLIC matches or beats the hint-oblivious baselines
//! everywhere). It runs at smoke scale so it stays fast enough for tier-1.

use clic::prelude::*;

/// CLIC >= LRU on a hinted smoke-scale preset trace, across the workload
/// families of the paper's evaluation (DB2 TPC-C, DB2 TPC-H, MySQL TPC-H).
#[test]
fn clic_read_hit_ratio_at_least_lru_on_hinted_presets() {
    for preset in [
        TracePreset::Db2C300,
        TracePreset::Db2H80,
        TracePreset::MyH65,
    ] {
        let trace = preset.build(PresetScale::Smoke);
        let cache_pages = 1_800;
        let window = suggested_window(trace.len() as u64);

        let mut lru = Lru::new(cache_pages);
        let lru_result = simulate(&mut lru, &trace);

        let mut clic = Clic::new(cache_pages, ClicConfig::default().with_window(window));
        let clic_result = simulate(&mut clic, &trace);

        assert!(
            clic_result.read_hit_ratio() >= lru_result.read_hit_ratio(),
            "{}: CLIC ({:.3}) must not lose to LRU ({:.3})",
            preset.name(),
            clic_result.read_hit_ratio(),
            lru_result.read_hit_ratio()
        );
    }
}

/// The same claim holds for the bounded top-k tracking variant, which is the
/// configuration a real storage server would deploy (Section 5).
#[test]
fn topk_clic_read_hit_ratio_at_least_lru() {
    let trace = TracePreset::Db2C300.build(PresetScale::Smoke);
    let cache_pages = 1_800;
    let window = suggested_window(trace.len() as u64);

    let mut lru = Lru::new(cache_pages);
    let lru_result = simulate(&mut lru, &trace);

    let mut clic = Clic::new(
        cache_pages,
        ClicConfig::default()
            .with_window(window)
            .with_tracking(TrackingMode::TopK(64)),
    );
    let clic_result = simulate(&mut clic, &trace);

    assert!(
        clic_result.read_hit_ratio() >= lru_result.read_hit_ratio(),
        "top-k CLIC ({:.3}) must not lose to LRU ({:.3})",
        clic_result.read_hit_ratio(),
        lru_result.read_hit_ratio()
    );
}
