//! The `Stats` protocol round trip: a client asking a live, store-backed
//! server for statistics gets a [`clic::server::StatsSnapshot`] whose
//! deterministic counters — requests, hits, evictions, WAL appends — are
//! exact, both mid-load and against the final shutdown report.

use std::fs;
use std::path::PathBuf;

use clic::prelude::*;
use clic::server::{StatsSnapshot, BATCH_SERVICE_HISTOGRAM, QUEUE_DEPTH_GAUGE};

const BATCH: usize = 256;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("clic-stats-snapshot-{}-{tag}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Asks the server for stats through the protocol (a one-request batch) and
/// unwraps the snapshot.
fn request_stats(server: &Server) -> StatsSnapshot {
    let responses = server.submit(&[ServerRequest::Stats]);
    assert_eq!(responses.len(), 1);
    match responses.into_iter().next().unwrap() {
        ServerResponse::Stats(snapshot) => *snapshot,
        other => panic!("expected a stats response, got {other:?}"),
    }
}

#[test]
fn stats_round_trip_is_exact_mid_load_and_at_the_end() {
    // A deterministic workload with real evictions and WAL traffic: the
    // DB2 TPC-C smoke preset truncated to 48 batches, over a cache far
    // smaller than its page footprint, on a WAL-enabled store.
    let mut trace = TracePreset::Db2C60.build(PresetScale::Smoke);
    trace.requests.truncate(48 * BATCH);
    let cache_pages = 512;
    let dir = scratch_dir("roundtrip");
    let server = Server::start(
        ServerConfig::new(cache_pages)
            .with_shards(2)
            .with_clic(
                ClicConfig::default()
                    .with_window(suggested_window(trace.len() as u64))
                    .with_tracking(TrackingMode::TopK(100)),
            )
            .with_store(
                StoreConfig::new(&dir, cache_pages)
                    .with_page_size(128)
                    .with_wal(true)
                    .with_flush_threshold(64),
            )
            .with_recorder(Recorder::enabled()),
    );

    // Drive the load serially, keeping a client-side tally from the
    // responses; the server's snapshots must agree with it exactly.
    let mut tally = CacheStats::new();
    let mut submitted = 0u64;
    let batches: Vec<&[cache_sim::Request]> = trace.requests.chunks(BATCH).collect();
    let midpoint = batches.len() / 2;
    let mut mid_snapshot: Option<StatsSnapshot> = None;
    for (i, chunk) in batches.iter().enumerate() {
        let batch: Vec<ServerRequest> = chunk.iter().map(ServerRequest::from_request).collect();
        let responses = server.submit(&batch);
        assert_eq!(responses.len(), batch.len());
        for (req, response) in chunk.iter().zip(&responses) {
            let hit = response.hit().expect("data responses carry a hit flag");
            if req.is_read() {
                tally.record_read(hit);
            } else {
                tally.record_write(hit);
            }
        }
        submitted += chunk.len() as u64;
        if i + 1 == midpoint {
            mid_snapshot = Some(request_stats(&server));
        }
    }

    // Mid-load: the snapshot covers exactly the responses delivered before
    // the Stats request was submitted (the load is serial, so that is the
    // first `midpoint` batches), and the Stats request itself counts as no
    // request at all.
    let mid = mid_snapshot.expect("midpoint snapshot taken");
    assert_eq!(mid.result.stats.requests(), (midpoint * BATCH) as u64);
    let mid_wal = mid.metrics.counter("store.wal_records");
    assert!(mid_wal > 0, "a WAL-enabled write workload appends records");

    // End of load, before shutdown: the protocol snapshot and the final
    // report are the same counters.
    let final_snapshot = request_stats(&server);
    assert_eq!(final_snapshot.result.stats.requests(), submitted);
    assert_eq!(
        final_snapshot.result.stats.read_hits, tally.read_hits,
        "server-side read hits must match the hits the client observed"
    );
    assert_eq!(final_snapshot.result.stats.write_hits, tally.write_hits);
    assert!(final_snapshot.result.stats.evictions > 0);
    assert!(final_snapshot.result.stats.evictions >= mid.result.stats.evictions);

    // The metrics half of the snapshot: always-on store counters agree with
    // the data plane's own report, and the recorder's server-side
    // instruments are present.
    let io = server.io_stats().expect("store-backed server reports I/O");
    assert_eq!(
        final_snapshot.metrics.counter("store.wal_records"),
        io.wal_records
    );
    assert!(io.wal_records >= mid_wal, "WAL appends only grow");
    assert_eq!(
        final_snapshot.metrics.counter("store.buffer_hits"),
        io.buffer_hits
    );
    assert!(
        final_snapshot
            .metrics
            .histograms
            .contains_key(BATCH_SERVICE_HISTOGRAM),
        "an enabled recorder publishes per-sub-batch service times"
    );
    assert!(final_snapshot.metrics.gauge(QUEUE_DEPTH_GAUGE).peak >= 1);

    let result = server.shutdown();
    assert_eq!(
        result.stats, final_snapshot.result.stats,
        "the shutdown report and the last protocol snapshot are the same counters"
    );
    assert_eq!(result.per_client, final_snapshot.result.per_client);
    fs::remove_dir_all(&dir).ok();
}

/// Two identical serial runs produce identical mid-load snapshots: the
/// protocol's deterministic counters really are deterministic.
#[test]
fn mid_load_snapshots_are_reproducible() {
    let run = |tag: &str| -> (CacheStats, u64) {
        let mut trace = TracePreset::Db2C300.build(PresetScale::Smoke);
        trace.requests.truncate(16 * BATCH);
        let dir = scratch_dir(tag);
        let server = Server::start(
            ServerConfig::new(256)
                .with_shards(2)
                .with_clic(ClicConfig::default().with_window(2_048))
                .with_store(
                    StoreConfig::new(&dir, 256)
                        .with_page_size(128)
                        .with_wal(true)
                        .with_flush_threshold(32),
                ),
        );
        for chunk in trace.requests.chunks(BATCH).take(8) {
            let batch: Vec<ServerRequest> = chunk.iter().map(ServerRequest::from_request).collect();
            server.submit(&batch);
        }
        let snapshot = request_stats(&server);
        server.shutdown();
        fs::remove_dir_all(&dir).ok();
        (
            snapshot.result.stats,
            snapshot.metrics.counter("store.wal_records"),
        )
    };
    assert_eq!(run("repro-a"), run("repro-b"));
}
