//! Integration tests for the `clic-server` subsystem: correctness anchors
//! tying the online, concurrent deployment back to the offline simulator.
//!
//! * With 1 shard and 1 client, the server must reproduce
//!   [`simulate`]'s statistics *exactly* — same hits, misses, evictions,
//!   bypasses, per client.
//! * With several shards under concurrent clients, the run must complete
//!   without deadlock and the aggregate read hit ratio must stay within 10%
//!   of the single-cache result on the Figure 11 multi-client preset.

use clic::prelude::*;

/// Correctness anchor (a): a 1-shard server driven by 1 client produces
/// statistics identical to `simulate` on the same trace.
#[test]
fn single_shard_single_client_matches_simulate_exactly() {
    let trace = TracePreset::Db2C60.build(PresetScale::Smoke);
    let capacity = 1_800;
    let window = suggested_window(trace.len() as u64);
    let config = ClicConfig::default()
        .with_window(window)
        .with_tracking(TrackingMode::TopK(100));

    let mut reference = Clic::new(capacity, config);
    let expected = simulate(&mut reference, &trace);

    let report = run_load(
        &LoadConfig::new(ServerConfig::new(capacity).with_clic(config)).with_batch(64),
        std::slice::from_ref(&trace),
    );

    assert_eq!(report.result.stats, expected.stats);
    assert_eq!(report.result.per_client, expected.per_client);
    assert_eq!(report.result.capacity, expected.capacity);
    // The client-side view agrees with the server-side accounting.
    assert_eq!(report.clients.len(), 1);
    assert_eq!(report.clients[0].stats.read_hits, expected.stats.read_hits);
    assert_eq!(
        report.clients[0].stats.requests(),
        expected.stats.requests()
    );
}

/// Correctness anchor (b): four shards under four concurrent clients
/// complete without deadlock, account for every request, and land within 10%
/// of the single shared cache on the Figure 11 multi-client preset.
#[test]
fn sharded_concurrent_run_tracks_single_cache_hit_ratio() {
    let presets = [
        TracePreset::Db2C60,
        TracePreset::Db2C300,
        TracePreset::Db2C540,
        TracePreset::Db2C60,
    ];
    // The Figure 11 client mix (plus one extra DB2_C60 instance to reach
    // four concurrent clients), truncated to the shortest trace so online
    // and offline runs serve exactly the same requests.
    let traces = preset_client_traces(&presets, PresetScale::Smoke);
    let total: u64 = traces.iter().map(|t| t.len() as u64).sum();
    let cache_pages = 1_800;
    let window = suggested_window(total);
    let clic_config = ClicConfig::default()
        .with_window(window)
        .with_tracking(TrackingMode::TopK(100));

    // Online: 4 shards, 4 concurrent closed-loop clients, small queues so
    // back-pressure is actually exercised.
    let report = run_load(
        &LoadConfig::new(
            ServerConfig::new(cache_pages)
                .with_shards(4)
                .with_clic(clic_config)
                .with_merge_every(window)
                .with_queue_depth(2),
        )
        .with_batch(64),
        &traces,
    );
    assert_eq!(report.requests(), total, "no request may be lost");
    assert!(report.merges > 0, "cross-shard merges must have happened");
    assert_eq!(report.clients.len(), 4);
    for client in &report.clients {
        assert!(client.batches > 0);
    }

    // Offline: the Figure 11 shared single cache over the same requests.
    let refs: Vec<&Trace> = traces.iter().collect();
    let (combined, _) = interleave(&refs);
    let mut shared = Clic::new(
        cache_pages,
        ClicConfig::default()
            .with_window(suggested_window(combined.len() as u64))
            .with_tracking(TrackingMode::TopK(100)),
    );
    let single = simulate(&mut shared, &combined);

    let sharded_ratio = report.read_hit_ratio();
    let single_ratio = single.read_hit_ratio();
    assert!(
        (sharded_ratio - single_ratio).abs() <= 0.10 * single_ratio,
        "sharded aggregate read hit ratio {sharded_ratio:.3} must stay within 10% \
         of the single-cache result {single_ratio:.3}"
    );
}
