//! Integration tests for trace persistence: generated workload traces
//! survive a save/load round trip bit-for-bit, so experiments can cache
//! expensive trace generation on disk.

use clic::prelude::*;

#[test]
fn generated_trace_roundtrips_through_disk() {
    let trace = TracePreset::MyH65.build(PresetScale::Smoke);
    let dir = std::env::temp_dir().join(format!("clic-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("my_h65.trace");

    trace.save(&path).expect("save trace");
    let loaded = Trace::load(&path).expect("load trace");

    assert_eq!(loaded.name, trace.name);
    assert_eq!(loaded.requests, trace.requests);
    assert_eq!(
        loaded.catalog.hint_set_count(),
        trace.catalog.hint_set_count()
    );
    assert_eq!(loaded.catalog.client_count(), trace.catalog.client_count());
    // The hint labels survive too (schema round trip).
    let some_hint = trace.requests[0].hint;
    assert_eq!(
        loaded.catalog.describe(some_hint),
        trace.catalog.describe(some_hint)
    );

    // Simulation results over the loaded trace are identical.
    let mut a = Lru::new(500);
    let mut b = Lru::new(500);
    let original = simulate(&mut a, &trace);
    let reloaded = simulate(&mut b, &loaded);
    assert_eq!(original.stats, reloaded.stats);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loading_garbage_fails_cleanly() {
    let dir = std::env::temp_dir().join(format!("clic-garbage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.trace");
    std::fs::write(&path, b"this is not a trace file at all").unwrap();
    let err = Trace::load(&path).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    std::fs::remove_dir_all(&dir).ok();
}
