//! Integration tests for the event-driven network front-end: the wire
//! path must be a *transparent* transport over the in-process server.
//!
//! * The loopback equivalence anchor: one TCP connection into a 1-shard
//!   server produces statistics **bit-identical** to the in-process
//!   [`run_load`] harness over the same trace with the same batching.
//! * Deletes travel over the wire and actually remove bytes from a
//!   store-backed server (a re-read misses and reads zeroes).
//! * The open-loop generator completes against a live front-end and
//!   reports non-empty percentiles.
//! * Malformed frames (garbage opcode, oversized length prefix) kill only
//!   the offending connection; the server keeps serving new ones.

use clic::prelude::*;
use clic::server::wire;
use std::io::{Read, Write};
use std::net::TcpStream;

/// A deterministic mixed read/write trace over a small page universe.
fn small_trace(requests: u64, pages: u64) -> Trace {
    let mut b = TraceBuilder::new();
    let client = b.add_client("wire", &[("kind", 1)]);
    let hints: Vec<_> = (0..4).map(|h| b.intern_hints(client, &[h])).collect();
    for i in 0..requests {
        let page = (i * 7919) % pages; // co-prime stride re-references pages
        let hint = hints[(page % 4) as usize];
        if i % 5 == 0 {
            b.push(client, page, AccessKind::Write, None, hint);
        } else {
            b.push(client, page, AccessKind::Read, None, hint);
        }
    }
    b.build()
}

/// Acceptance anchor: statistics over one TCP connection into a 1-shard
/// server are bit-identical to the in-process `run_load` path.
#[test]
fn loopback_tcp_stats_match_run_load_bit_for_bit() {
    let trace = small_trace(4_000, 600);
    let capacity = 256;
    let batch = 64;
    let server_config = || ServerConfig::new(capacity).with_shards(1);

    // In-process reference.
    let in_process = run_load(
        &LoadConfig::new(server_config()).with_batch(batch),
        std::slice::from_ref(&trace),
    );

    // The same trace, same batching, over the wire.
    let net = NetServer::start(Server::start(server_config()), NetOptions::default())
        .expect("front-end starts");
    let addr = net.tcp_addr().expect("tcp enabled");
    let mut client = BlockingClient::connect_tcp(addr).expect("connect");
    let mut client_hits = 0u64;
    for chunk in trace.requests.chunks(batch) {
        let batch: Vec<ServerRequest> = chunk.iter().map(ServerRequest::from_request).collect();
        for response in client.call_batch(&batch).expect("batch served") {
            if response.hit() == Some(true) {
                client_hits += 1;
            }
        }
    }
    // The client-observed hit count must agree with the server's account.
    let snapshot = client.stats().expect("stats over the wire");
    assert_eq!(
        snapshot.result.stats.read_hits + snapshot.result.stats.write_hits,
        client_hits
    );
    drop(client);
    let over_wire = net.shutdown().expect("clean shutdown");

    assert_eq!(over_wire, in_process.result);
}

/// Deletes over the wire remove the page from cache *and* disk.
#[test]
fn wire_deletes_remove_pages_from_a_store_backed_server() {
    let dir = tempdir();
    let config = ServerConfig::new(64)
        .with_shards(1)
        .with_store(StoreConfig::new(&dir, 64).with_durability(Durability::Buffered));
    let net =
        NetServer::start(Server::start(config), NetOptions::default()).expect("front-end starts");
    let mut client = BlockingClient::connect_tcp(net.tcp_addr().unwrap()).expect("connect");

    let page = PageId(9);
    let hint = HintSetId(0);
    let payload = page_payload(page, DEFAULT_PAGE_SIZE);
    let put = ServerRequest::Put {
        client: ClientId(0),
        page,
        hint,
        write_hint: None,
        data: Some(payload.clone()),
    };
    let get = ServerRequest::Get {
        client: ClientId(0),
        page,
        hint,
        prefetch: false,
    };
    client.call(&put).expect("put");
    let read = client.call(&get).expect("get");
    assert_eq!(read.hit(), Some(true));
    assert_eq!(read.data(), Some(&payload[..]));

    let deleted = client
        .call(&ServerRequest::Delete { page })
        .expect("delete");
    assert_eq!(deleted.existed(), Some(true));
    let gone = client
        .call(&ServerRequest::Delete { page })
        .expect("second delete");
    assert_eq!(gone.existed(), Some(false));

    // The page is gone everywhere: a re-read misses and reads zeroes.
    let reread = client.call(&get).expect("get after delete");
    assert_eq!(reread.hit(), Some(false));
    assert_eq!(reread.data(), Some(&vec![0u8; DEFAULT_PAGE_SIZE][..]));

    drop(client);
    net.shutdown().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

/// The open-loop generator drives a live front-end to completion and
/// measures non-empty latency percentiles.
#[test]
fn open_loop_generator_completes_and_measures_latency() {
    let config = ServerConfig::new(512).with_shards(2);
    let net =
        NetServer::start(Server::start(config), NetOptions::default()).expect("front-end starts");
    let report = run_open_loop(
        net.tcp_addr().unwrap(),
        &OpenLoopConfig {
            rate: 50_000.0,
            requests: 5_000,
            pages: 2_000,
            ..OpenLoopConfig::default()
        },
    )
    .expect("open-loop run");
    assert_eq!(report.sent, 5_000);
    assert_eq!(report.completed, 5_000);
    assert_eq!(report.latency.batches, 5_000);
    assert!(report.latency.p99_us >= report.latency.p50_us);
    assert!(report.achieved_rps > 0.0);
    let result = net.shutdown().expect("clean shutdown");
    assert_eq!(result.stats.requests(), 5_000);
}

/// A garbage opcode closes only the offending connection; an oversized
/// length prefix is rejected before any buffering; fresh connections keep
/// working afterwards.
#[test]
fn malformed_frames_kill_the_connection_not_the_server() {
    let net = NetServer::start(
        Server::start(ServerConfig::new(64).with_shards(1)),
        NetOptions::default(),
    )
    .expect("front-end starts");
    let addr = net.tcp_addr().unwrap();

    // Garbage opcode inside a well-formed frame.
    let mut bad = TcpStream::connect(addr).expect("connect");
    let mut frame = 9u32.to_le_bytes().to_vec();
    frame.push(0x7f); // no such opcode
    frame.extend_from_slice(&0u64.to_le_bytes());
    bad.write_all(&frame).expect("write");
    let mut sink = Vec::new();
    let n = bad.read_to_end(&mut sink).unwrap_or(0);
    assert_eq!(n, 0, "the server must close without responding");

    // Oversized length prefix: closed without waiting for the body.
    let mut oversized = TcpStream::connect(addr).expect("connect");
    oversized
        .write_all(&(64u32 << 20).to_le_bytes())
        .expect("write");
    let n = oversized.read_to_end(&mut sink).unwrap_or(0);
    assert_eq!(n, 0, "oversized frames must be rejected eagerly");

    // A truncated frame abandoned mid-body must not wedge the loop.
    let mut truncated = TcpStream::connect(addr).expect("connect");
    truncated.write_all(&frame[..7]).expect("write");
    drop(truncated);

    // The server is still healthy for well-behaved clients.
    let mut good = BlockingClient::connect_tcp(addr).expect("connect");
    let response = good
        .call(&ServerRequest::Get {
            client: ClientId(0),
            page: PageId(1),
            hint: HintSetId(0),
            prefetch: false,
        })
        .expect("request after the bad peers");
    assert_eq!(response.hit(), Some(false));
    drop(good);
    let result = net.shutdown().expect("clean shutdown");
    assert_eq!(result.stats.requests(), 1, "only the good request counted");
}

/// Unix-domain connections speak the same protocol.
#[cfg(unix)]
#[test]
fn unix_domain_socket_round_trips() {
    let path = std::env::temp_dir().join(format!("clic-net-uds-{}.sock", std::process::id()));
    let net = NetServer::start(
        Server::start(ServerConfig::new(64).with_shards(1)),
        NetOptions {
            uds: Some(path.clone()),
            ..NetOptions::default()
        },
    )
    .expect("front-end starts");
    let mut client = BlockingClient::connect_uds(&path).expect("connect over uds");
    let put = ServerRequest::Put {
        client: ClientId(1),
        page: PageId(3),
        hint: HintSetId(0),
        write_hint: Some(WriteHint::Replacement),
        data: None,
    };
    let get = ServerRequest::Get {
        client: ClientId(1),
        page: PageId(3),
        hint: HintSetId(0),
        prefetch: false,
    };
    let responses = client.call_batch(&[put, get]).expect("batch over uds");
    assert_eq!(responses[1].hit(), Some(true));
    drop(client);
    net.shutdown().expect("clean shutdown");
    assert!(!path.exists(), "the socket file is removed on shutdown");
}

/// Frames assembled by hand must decode to the documented layout — the
/// byte offsets in the crate docs are load-bearing for foreign clients.
#[test]
fn frame_layout_matches_the_documented_offsets() {
    let mut out = Vec::new();
    wire::encode_request(
        0x0102_0304_0506_0708,
        &ServerRequest::Delete { page: PageId(0xab) },
        &mut out,
    );
    // [len=17][opcode=0x03][seq LE][page LE]
    assert_eq!(out.len(), 4 + 9 + 8);
    assert_eq!(u32::from_le_bytes(out[..4].try_into().unwrap()), 17);
    assert_eq!(out[4], 0x03);
    assert_eq!(
        u64::from_le_bytes(out[5..13].try_into().unwrap()),
        0x0102_0304_0506_0708
    );
    assert_eq!(u64::from_le_bytes(out[13..21].try_into().unwrap()), 0xab);
}

fn tempdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "clic-net-test-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}
