//! The eight workload/trace presets of the paper's Figure 5, plus the
//! scaling machinery that shrinks them to laptop-friendly sizes.
//!
//! The paper's traces were collected from multi-gigabyte TPC-C/TPC-H runs
//! (0.6–0.8 M database pages, 3–640 M requests). Every quantity in the
//! evaluation is a *ratio* — DBMS buffer size and server cache size as
//! fractions of the database — so the experiments can be reproduced at a
//! reduced scale as long as those ratios are preserved. [`PresetScale`]
//! controls the absolute size:
//!
//! * [`PresetScale::Smoke`] — ~100× smaller than the paper; seconds per
//!   experiment, used by integration tests.
//! * [`PresetScale::Default`] — ~10× smaller than the paper; the default for
//!   the experiment binaries.
//! * [`PresetScale::Paper`] — the paper's database and buffer page counts
//!   (request counts still depend on how many transactions/query streams are
//!   run).

use cache_sim::Trace;

use crate::tpcc::{TpccConfig, TpccWorkload};
use crate::tpch::{TpchConfig, TpchVariant, TpchWorkload};

/// The eight traces of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TracePreset {
    /// DB2, TPC-C, 60 K-page DBMS buffer (10 % of the database).
    Db2C60,
    /// DB2, TPC-C, 300 K-page DBMS buffer (50 %).
    Db2C300,
    /// DB2, TPC-C, 540 K-page DBMS buffer (90 %).
    Db2C540,
    /// DB2, TPC-H, 80 K-page DBMS buffer (10 %).
    Db2H80,
    /// DB2, TPC-H, 400 K-page DBMS buffer (50 %).
    Db2H400,
    /// DB2, TPC-H, 720 K-page DBMS buffer (90 %).
    Db2H720,
    /// MySQL, TPC-H, 65 K-page DBMS buffer (~20 %).
    MyH65,
    /// MySQL, TPC-H, 98 K-page DBMS buffer (~30 %).
    MyH98,
}

impl TracePreset {
    /// All presets, in the order of Figure 5.
    pub const ALL: [TracePreset; 8] = [
        TracePreset::Db2C60,
        TracePreset::Db2C300,
        TracePreset::Db2C540,
        TracePreset::Db2H80,
        TracePreset::Db2H400,
        TracePreset::Db2H720,
        TracePreset::MyH65,
        TracePreset::MyH98,
    ];

    /// The three DB2 TPC-C presets (Figure 6).
    pub const TPCC: [TracePreset; 3] = [
        TracePreset::Db2C60,
        TracePreset::Db2C300,
        TracePreset::Db2C540,
    ];

    /// The three DB2 TPC-H presets (Figure 7).
    pub const DB2_TPCH: [TracePreset; 3] = [
        TracePreset::Db2H80,
        TracePreset::Db2H400,
        TracePreset::Db2H720,
    ];

    /// The two MySQL TPC-H presets (Figure 8).
    pub const MYSQL: [TracePreset; 2] = [TracePreset::MyH65, TracePreset::MyH98];

    /// The trace name used in the paper (e.g. `"DB2_C60"`).
    pub fn name(self) -> &'static str {
        match self {
            TracePreset::Db2C60 => "DB2_C60",
            TracePreset::Db2C300 => "DB2_C300",
            TracePreset::Db2C540 => "DB2_C540",
            TracePreset::Db2H80 => "DB2_H80",
            TracePreset::Db2H400 => "DB2_H400",
            TracePreset::Db2H720 => "DB2_H720",
            TracePreset::MyH65 => "MY_H65",
            TracePreset::MyH98 => "MY_H98",
        }
    }

    /// Parses a preset from its paper name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        let upper = name.to_ascii_uppercase();
        Self::ALL.iter().copied().find(|p| p.name() == upper)
    }

    /// The paper's database size in pages for this preset.
    pub fn paper_database_pages(self) -> u64 {
        match self {
            TracePreset::Db2C60 | TracePreset::Db2C300 | TracePreset::Db2C540 => 600_000,
            TracePreset::Db2H80 | TracePreset::Db2H400 | TracePreset::Db2H720 => 800_000,
            TracePreset::MyH65 | TracePreset::MyH98 => 328_000,
        }
    }

    /// The paper's DBMS buffer size in pages for this preset.
    pub fn paper_buffer_pages(self) -> u64 {
        match self {
            TracePreset::Db2C60 => 60_000,
            TracePreset::Db2C300 => 300_000,
            TracePreset::Db2C540 => 540_000,
            TracePreset::Db2H80 => 80_000,
            TracePreset::Db2H400 => 400_000,
            TracePreset::Db2H720 => 720_000,
            TracePreset::MyH65 => 65_000,
            TracePreset::MyH98 => 98_000,
        }
    }

    /// Database pages at the given scale.
    pub fn database_pages(self, scale: PresetScale) -> u64 {
        (self.paper_database_pages() / scale.divisor()).max(1_000)
    }

    /// DBMS buffer pages at the given scale.
    pub fn buffer_pages(self, scale: PresetScale) -> usize {
        ((self.paper_buffer_pages() / scale.divisor()).max(100)) as usize
    }

    /// The storage-server cache sizes swept by Figures 6-8 for this preset,
    /// at the given scale. The paper sweeps 60 K–300 K pages for the DB2
    /// workloads and 50 K–100 K pages for MySQL.
    pub fn server_cache_sizes(self, scale: PresetScale) -> Vec<usize> {
        let paper_sizes: &[u64] = match self {
            TracePreset::MyH65 | TracePreset::MyH98 => &[50_000, 75_000, 100_000],
            _ => &[60_000, 120_000, 180_000, 240_000, 300_000],
        };
        paper_sizes
            .iter()
            .map(|s| ((s / scale.divisor()).max(50)) as usize)
            .collect()
    }

    /// The single server-cache size used by the paper's Figures 9-11
    /// (180 K pages for the DB2 workloads), at the given scale.
    pub fn reference_cache_size(self, scale: PresetScale) -> usize {
        ((180_000u64 / scale.divisor()).max(50)) as usize
    }

    /// Whether this preset uses the MySQL client profile.
    pub fn is_mysql(self) -> bool {
        matches!(self, TracePreset::MyH65 | TracePreset::MyH98)
    }

    /// Whether this preset runs the TPC-C workload.
    pub fn is_tpcc(self) -> bool {
        matches!(
            self,
            TracePreset::Db2C60 | TracePreset::Db2C300 | TracePreset::Db2C540
        )
    }

    /// Relative number of TPC-C transactions executed for this preset.
    ///
    /// The paper collected each trace over a fixed wall-clock run; DB2
    /// configurations with larger buffer pools executed more transactions in
    /// that time, which is why Figure 5 reports more distinct pages (more
    /// database growth) for `DB2_C300`/`DB2_C540` than for `DB2_C60`. The
    /// multipliers below reproduce those relative run lengths.
    pub fn tpcc_transaction_multiplier(self) -> u64 {
        match self {
            TracePreset::Db2C60 => 1,
            TracePreset::Db2C300 => 2,
            TracePreset::Db2C540 => 4,
            _ => 1,
        }
    }

    /// Generates the trace for this preset at the given scale.
    pub fn build(self, scale: PresetScale) -> Trace {
        self.build_with_offset(scale, 0, 42)
    }

    /// Generates the trace with an explicit page-id offset and seed, so that
    /// several presets can be combined into a multi-client scenario without
    /// page collisions.
    pub fn build_with_offset(self, scale: PresetScale, page_offset: u64, seed: u64) -> Trace {
        let database_pages = self.database_pages(scale);
        let buffer_pages = self.buffer_pages(scale);
        if self.is_tpcc() {
            let transactions = scale.tpcc_transactions() * self.tpcc_transaction_multiplier();
            let config = TpccConfig::new(database_pages, buffer_pages, transactions)
                .with_client_name(self.name())
                .with_page_offset(page_offset)
                .with_seed(seed);
            TpccWorkload::new(config).generate()
        } else {
            let variant = if self.is_mysql() {
                TpchVariant::MySql
            } else {
                TpchVariant::Db2
            };
            let config = TpchConfig::new(
                database_pages,
                buffer_pages,
                scale.tpch_query_streams(),
                variant,
            )
            .with_client_name(self.name())
            .with_page_offset(page_offset)
            .with_seed(seed);
            TpchWorkload::new(config).generate()
        }
    }
}

/// How much to shrink the paper's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresetScale {
    /// ~100× smaller than the paper (integration tests, seconds).
    Smoke,
    /// ~10× smaller than the paper (default for the experiment binaries).
    Default,
    /// The paper's page counts (long-running).
    Paper,
}

impl PresetScale {
    /// Divisor applied to the paper's page counts.
    pub fn divisor(self) -> u64 {
        match self {
            PresetScale::Smoke => 100,
            PresetScale::Default => 10,
            PresetScale::Paper => 1,
        }
    }

    /// Number of TPC-C transactions to run at this scale.
    pub fn tpcc_transactions(self) -> u64 {
        match self {
            PresetScale::Smoke => 16_000,
            PresetScale::Default => 160_000,
            PresetScale::Paper => 1_600_000,
        }
    }

    /// Number of TPC-H query streams to run at this scale.
    pub fn tpch_query_streams(self) -> u64 {
        match self {
            PresetScale::Smoke => 2,
            PresetScale::Default => 4,
            PresetScale::Paper => 6,
        }
    }

    /// Parses a scale from a command-line friendly name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "smoke" => Some(PresetScale::Smoke),
            "default" => Some(PresetScale::Default),
            "paper" => Some(PresetScale::Paper),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for preset in TracePreset::ALL {
            assert_eq!(TracePreset::from_name(preset.name()), Some(preset));
        }
        assert_eq!(TracePreset::from_name("nope"), None);
        assert_eq!(PresetScale::from_name("smoke"), Some(PresetScale::Smoke));
        assert_eq!(PresetScale::from_name("PAPER"), Some(PresetScale::Paper));
        assert_eq!(PresetScale::from_name("x"), None);
    }

    #[test]
    fn scaled_sizes_preserve_ratios() {
        for preset in TracePreset::ALL {
            let paper_ratio =
                preset.paper_buffer_pages() as f64 / preset.paper_database_pages() as f64;
            let scaled_ratio = preset.buffer_pages(PresetScale::Default) as f64
                / preset.database_pages(PresetScale::Default) as f64;
            assert!(
                (paper_ratio - scaled_ratio).abs() < 0.02,
                "{}: ratio {paper_ratio:.3} vs scaled {scaled_ratio:.3}",
                preset.name()
            );
        }
    }

    #[test]
    fn cache_sweep_sizes_are_increasing() {
        for preset in TracePreset::ALL {
            let sizes = preset.server_cache_sizes(PresetScale::Default);
            assert!(sizes.len() >= 3);
            assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn smoke_scale_traces_build_quickly_and_are_plausible() {
        // Building all eight presets at Smoke scale verifies that the whole
        // generation pipeline holds together.
        let c60 = TracePreset::Db2C60.build(PresetScale::Smoke);
        let summary = c60.summary();
        assert!(
            summary.requests > 10_000,
            "C60 smoke trace too small: {summary}"
        );
        assert!(summary.distinct_hint_sets >= 20);
        assert_eq!(c60.name, "DB2_C60");

        let h80 = TracePreset::Db2H80.build(PresetScale::Smoke);
        assert!(h80.summary().reads > h80.summary().writes);

        let my = TracePreset::MyH65.build(PresetScale::Smoke);
        let my_summary = my.summary();
        assert!(my_summary.requests > 1_000);
        assert!(
            (5..=150).contains(&my_summary.distinct_hint_sets),
            "MySQL trace hint-set count out of range: {}",
            my_summary.distinct_hint_sets
        );
    }

    #[test]
    fn larger_first_tier_buffers_leak_fewer_requests() {
        let c60 = TracePreset::Db2C60.build(PresetScale::Smoke).len();
        let c540 = TracePreset::Db2C540.build(PresetScale::Smoke).len();
        assert!(
            c540 < c60,
            "C540 ({c540}) must produce fewer storage requests than C60 ({c60})"
        );
    }

    #[test]
    fn page_offsets_keep_clients_disjoint() {
        let a = TracePreset::Db2C60.build_with_offset(PresetScale::Smoke, 0, 1);
        let b = TracePreset::Db2C60.build_with_offset(PresetScale::Smoke, 10_000_000, 2);
        let max_a = a.requests.iter().map(|r| r.page.0).max().unwrap();
        let min_b = b.requests.iter().map(|r| r.page.0).min().unwrap();
        assert!(max_a < min_b);
    }
}
