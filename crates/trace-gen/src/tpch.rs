//! A TPC-H-like decision-support workload generator.
//!
//! Like the TPC-C model, this is a workload *model*, not a compliant
//! implementation: it reproduces the page-access structure of the 22 TPC-H
//! queries (large sequential scans over LINEITEM/ORDERS, selective
//! index-driven access to the dimension tables, sort/aggregation spills) and
//! the two refresh functions (inserts into ORDERS/LINEITEM and deletes),
//! executed as a continuous query stream beneath a DBMS buffer pool.
//!
//! The same generator serves both the DB2-style traces (`DB2_H*`, five
//! buffer pools, refresh functions included) and the MySQL-style traces
//! (`MY_H*`, single buffer pool, no refresh stream, one query skipped),
//! mirroring how the paper collected its workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cache_sim::Trace;

use crate::bufferpool::BufferPoolConfig;
use crate::client::{DbmsSimulator, HintStyle, MYSQL_THREADS};
use crate::db::{DatabaseLayout, ObjectId, ObjectKind, ObjectSpec};
use crate::zipf::Zipf;

/// Which client application profile to emulate for the TPC-H run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpchVariant {
    /// DB2-style: 5 buffer pools, 22 queries plus the 2 refresh functions.
    Db2,
    /// MySQL-style: single buffer pool, 21 queries (Q18 skipped), no
    /// refresh functions — matching the paper's MySQL configuration.
    MySql,
}

/// Configuration of the TPC-H-like workload.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// Approximate database size in pages.
    pub database_pages: u64,
    /// Total client buffer-pool capacity in pages.
    pub buffer_pages: usize,
    /// Number of query-stream iterations. One iteration runs every query in
    /// the set (plus refresh functions for the DB2 variant).
    pub query_streams: u64,
    /// Which client profile to emulate.
    pub variant: TpchVariant,
    /// Random seed.
    pub seed: u64,
    /// First page id to allocate.
    pub page_offset: u64,
    /// Client name recorded in the trace (e.g. `"DB2_H80"`).
    pub client_name: String,
}

impl TpchConfig {
    /// Creates a configuration with the given sizes and variant.
    pub fn new(
        database_pages: u64,
        buffer_pages: usize,
        query_streams: u64,
        variant: TpchVariant,
    ) -> Self {
        TpchConfig {
            database_pages,
            buffer_pages,
            query_streams,
            variant,
            seed: 42,
            page_offset: 0,
            client_name: match variant {
                TpchVariant::Db2 => "DB2_TPCH".to_string(),
                TpchVariant::MySql => "MY_TPCH".to_string(),
            },
        }
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the trace / client name.
    pub fn with_client_name(mut self, name: impl Into<String>) -> Self {
        self.client_name = name.into();
        self
    }

    /// Sets the first page id used by this client.
    pub fn with_page_offset(mut self, offset: u64) -> Self {
        self.page_offset = offset;
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct Schema {
    lineitem: ObjectId,
    lineitem_idx: ObjectId,
    lineitem_idx2: ObjectId,
    orders: ObjectId,
    orders_idx: ObjectId,
    orders_idx2: ObjectId,
    partsupp: ObjectId,
    partsupp_idx: ObjectId,
    part: ObjectId,
    part_idx: ObjectId,
    customer: ObjectId,
    customer_idx: ObjectId,
    supplier: ObjectId,
    supplier_idx: ObjectId,
    nation: ObjectId,
    region: ObjectId,
    temp: ObjectId,
}

fn build_layout(
    database_pages: u64,
    page_offset: u64,
    variant: TpchVariant,
) -> (DatabaseLayout, Schema) {
    let mut layout = DatabaseLayout::new(page_offset);
    let pages = |fraction: f64| ((database_pages as f64 * fraction) as u64).max(1);
    // Pool assignment: the DB2 configuration spreads object groups across 5
    // pools; MySQL uses a single pool.
    let pool = |db2_pool: u32| match variant {
        TpchVariant::Db2 => db2_pool,
        TpchVariant::MySql => 0,
    };
    let add = |layout: &mut DatabaseLayout,
               name: &str,
               kind: ObjectKind,
               group: u32,
               p: u32,
               frac: f64| {
        layout.add_object(ObjectSpec {
            name: name.to_string(),
            kind,
            group,
            pool: p,
            // TPC-H runs give every page the same buffer priority (the
            // paper's DB2 TPC-H trace has priority-domain cardinality 1).
            priority: 0,
            initial_pages: pages(frac),
        })
    };
    let schema = Schema {
        lineitem: add(&mut layout, "LINEITEM", ObjectKind::Table, 0, pool(0), 0.46),
        lineitem_idx: add(
            &mut layout,
            "LINEITEM_PK",
            ObjectKind::Index,
            0,
            pool(1),
            0.03,
        ),
        lineitem_idx2: add(
            &mut layout,
            "LINEITEM_SUPPKEY",
            ObjectKind::Index,
            0,
            pool(1),
            0.02,
        ),
        orders: add(&mut layout, "ORDERS", ObjectKind::Table, 1, pool(0), 0.15),
        orders_idx: add(
            &mut layout,
            "ORDERS_PK",
            ObjectKind::Index,
            1,
            pool(1),
            0.012,
        ),
        orders_idx2: add(
            &mut layout,
            "ORDERS_CUSTKEY",
            ObjectKind::Index,
            1,
            pool(1),
            0.01,
        ),
        partsupp: add(
            &mut layout,
            "PARTSUPP",
            ObjectKind::Table,
            2,
            pool(2),
            0.095,
        ),
        partsupp_idx: add(
            &mut layout,
            "PARTSUPP_PK",
            ObjectKind::Index,
            2,
            pool(1),
            0.008,
        ),
        part: add(&mut layout, "PART", ObjectKind::Table, 3, pool(2), 0.035),
        part_idx: add(&mut layout, "PART_PK", ObjectKind::Index, 3, pool(1), 0.006),
        customer: add(&mut layout, "CUSTOMER", ObjectKind::Table, 4, pool(3), 0.05),
        customer_idx: add(
            &mut layout,
            "CUSTOMER_PK",
            ObjectKind::Index,
            4,
            pool(1),
            0.006,
        ),
        supplier: add(&mut layout, "SUPPLIER", ObjectKind::Table, 5, pool(3), 0.01),
        supplier_idx: add(
            &mut layout,
            "SUPPLIER_PK",
            ObjectKind::Index,
            5,
            pool(1),
            0.002,
        ),
        nation: add(&mut layout, "NATION", ObjectKind::Table, 6, pool(3), 0.0002),
        region: add(&mut layout, "REGION", ObjectKind::Table, 7, pool(3), 0.0002),
        temp: add(&mut layout, "TEMP", ObjectKind::Temporary, 8, pool(4), 0.02),
    };
    (layout, schema)
}

/// The TPC-H-like workload generator.
#[derive(Debug)]
pub struct TpchWorkload {
    config: TpchConfig,
}

impl TpchWorkload {
    /// Creates a generator from a configuration.
    pub fn new(config: TpchConfig) -> Self {
        TpchWorkload { config }
    }

    /// Runs the query stream(s) and returns the resulting storage trace.
    pub fn generate(&self) -> Trace {
        let (layout, schema) = build_layout(
            self.config.database_pages,
            self.config.page_offset,
            self.config.variant,
        );
        let style = match self.config.variant {
            TpchVariant::Db2 => HintStyle::Db2,
            TpchVariant::MySql => HintStyle::MySql,
        };
        let pools = self.pool_configs();
        let mut dbms = DbmsSimulator::new(&self.config.client_name, style, layout, &pools);
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let queries: Vec<u32> = match self.config.variant {
            TpchVariant::Db2 => (1..=22).collect(),
            // The paper skipped Q18 on MySQL because of excessive run time.
            TpchVariant::MySql => (1..=22).filter(|q| *q != 18).collect(),
        };

        for stream in 0..self.config.query_streams {
            if self.config.variant == TpchVariant::MySql {
                // One server thread executes the whole stream, as when the
                // TPC-H queries are submitted over a single connection.
                dbms.set_thread(stream as u32 % MYSQL_THREADS);
            }
            for &q in queries.iter() {
                self.run_query(&mut dbms, &schema, q, &mut rng);
            }
            if self.config.variant == TpchVariant::Db2 {
                self.refresh_insert(&mut dbms, &schema, &mut rng);
                self.refresh_delete(&mut dbms, &schema, &mut rng);
            }
        }
        dbms.finish()
    }

    fn pool_configs(&self) -> Vec<BufferPoolConfig> {
        match self.config.variant {
            TpchVariant::Db2 => {
                // Five pools; the big-table pool gets most of the memory.
                let total = self.config.buffer_pages.max(5);
                let shares = [0.50, 0.15, 0.15, 0.10, 0.10];
                shares
                    .iter()
                    .map(|s| {
                        BufferPoolConfig::new(((total as f64 * s) as usize).max(1))
                            .with_priority_levels(1)
                    })
                    .collect()
            }
            TpchVariant::MySql => {
                vec![BufferPoolConfig::new(self.config.buffer_pages.max(1)).with_priority_levels(1)]
            }
        }
    }

    /// Executes one of the 22 query templates. Each template is a mix of
    /// sequential scans (with prefetching) over the fact tables and
    /// index-driven lookups into the dimension tables, with sort/aggregation
    /// spill for the heavier queries.
    fn run_query(&self, dbms: &mut DbmsSimulator, s: &Schema, query: u32, rng: &mut StdRng) {
        let li_pages = dbms.layout().pages_of(s.lineitem);
        let ord_pages = dbms.layout().pages_of(s.orders);
        let ps_pages = dbms.layout().pages_of(s.partsupp);
        let part_pages = dbms.layout().pages_of(s.part);
        let cust_pages = dbms.layout().pages_of(s.customer);
        let supp_pages = dbms.layout().pages_of(s.supplier);
        // Fraction of the fact tables touched by each query; approximates
        // the relative heaviness of the TPC-H query set.
        let (li_frac, ord_frac, dims): (f64, f64, u32) = match query {
            1 => (0.95, 0.0, 0),
            2 => (0.0, 0.0, 3),
            3 => (0.35, 0.5, 1),
            4 => (0.25, 0.6, 0),
            5 => (0.30, 0.35, 3),
            6 => (0.60, 0.0, 0),
            7 => (0.30, 0.25, 2),
            8 => (0.20, 0.30, 3),
            9 => (0.45, 0.30, 3),
            10 => (0.25, 0.40, 2),
            11 => (0.0, 0.0, 2),
            12 => (0.35, 0.45, 0),
            13 => (0.0, 0.80, 1),
            14 => (0.30, 0.0, 1),
            15 => (0.35, 0.0, 1),
            16 => (0.0, 0.0, 2),
            17 => (0.30, 0.0, 1),
            18 => (0.70, 0.65, 1),
            19 => (0.25, 0.0, 1),
            20 => (0.30, 0.0, 2),
            21 => (0.55, 0.45, 1),
            _ => (0.05, 0.35, 1),
        };

        // Fact-table scans with sequential prefetch.
        if li_frac > 0.0 {
            let pages = ((li_pages as f64) * li_frac) as u64;
            let start = rng.gen_range(0..li_pages.max(1));
            dbms.scan(s.lineitem, start, pages.max(1), true);
            // Point lookups through the indexes for join probes; odd queries
            // use the primary key, even ones the secondary index.
            let idx = if query % 2 == 0 {
                s.lineitem_idx2
            } else {
                s.lineitem_idx
            };
            for _ in 0..(pages / 64).min(64) {
                dbms.read(idx, hot_index_slot(rng, dbms.layout().pages_of(idx)));
            }
        }
        if ord_frac > 0.0 {
            let pages = ((ord_pages as f64) * ord_frac) as u64;
            let start = rng.gen_range(0..ord_pages.max(1));
            dbms.scan(s.orders, start, pages.max(1), true);
            let idx = if query % 3 == 0 {
                s.orders_idx2
            } else {
                s.orders_idx
            };
            for _ in 0..(pages / 64).min(32) {
                dbms.read(idx, hot_index_slot(rng, dbms.layout().pages_of(idx)));
            }
        }

        // Dimension-table access: smaller scans and skewed index lookups.
        let cust_skew = Zipf::new(cust_pages.max(1) as usize, 0.5);
        for d in 0..dims {
            match (query + d) % 5 {
                0 => {
                    dbms.scan(s.part, 0, (part_pages / 2).max(1), true);
                    for _ in 0..16 {
                        dbms.read(
                            s.part_idx,
                            hot_index_slot(rng, dbms.layout().pages_of(s.part_idx)),
                        );
                    }
                }
                1 => {
                    dbms.scan(s.partsupp, 0, (ps_pages / 2).max(1), true);
                    for _ in 0..16 {
                        dbms.read(
                            s.partsupp_idx,
                            hot_index_slot(rng, dbms.layout().pages_of(s.partsupp_idx)),
                        );
                    }
                }
                2 => {
                    for _ in 0..48 {
                        let slot = cust_skew.sample(rng) as u64;
                        dbms.read(
                            s.customer_idx,
                            hot_index_slot(rng, dbms.layout().pages_of(s.customer_idx)),
                        );
                        dbms.read(s.customer, slot);
                    }
                }
                3 => {
                    dbms.scan(s.supplier, 0, supp_pages.max(1), true);
                    for _ in 0..8 {
                        dbms.read(
                            s.supplier_idx,
                            hot_index_slot(rng, dbms.layout().pages_of(s.supplier_idx)),
                        );
                    }
                }
                _ => {
                    dbms.scan(s.nation, 0, dbms.layout().pages_of(s.nation), false);
                    dbms.scan(s.region, 0, dbms.layout().pages_of(s.region), false);
                }
            }
        }

        // Heavy queries spill sorted runs / hash partitions to temp space.
        if li_frac >= 0.4 || (li_frac + ord_frac) >= 0.7 {
            let temp_pages = dbms.layout().pages_of(s.temp);
            let spill = (temp_pages / 2).max(1);
            let start = rng.gen_range(0..temp_pages.max(1));
            for i in 0..spill {
                dbms.update(s.temp, (start + i) % temp_pages.max(1));
            }
            dbms.scan(s.temp, start, spill, false);
        }
    }

    /// RF1: insert a batch of new orders and their line items.
    fn refresh_insert(&self, dbms: &mut DbmsSimulator, s: &Schema, rng: &mut StdRng) {
        let batch = 64;
        for _ in 0..batch {
            dbms.insert_append(s.orders);
            dbms.update(
                s.orders_idx,
                hot_index_slot(rng, dbms.layout().pages_of(s.orders_idx)),
            );
            for _ in 0..rng.gen_range(1..=5) {
                dbms.insert_append(s.lineitem);
                dbms.update(
                    s.lineitem_idx,
                    hot_index_slot(rng, dbms.layout().pages_of(s.lineitem_idx)),
                );
            }
        }
    }

    /// RF2: delete a batch of old orders (read + rewrite their pages).
    fn refresh_delete(&self, dbms: &mut DbmsSimulator, s: &Schema, rng: &mut StdRng) {
        let batch = 64;
        let ord_pages = dbms.layout().pages_of(s.orders);
        let li_pages = dbms.layout().pages_of(s.lineitem);
        for _ in 0..batch {
            dbms.update(s.orders, rng.gen_range(0..ord_pages));
            dbms.update(s.lineitem, rng.gen_range(0..li_pages));
        }
    }
}

/// Index traversals touch the root/internal pages (the first few pages of
/// the object) far more often than the leaves.
fn hot_index_slot(rng: &mut StdRng, index_pages: u64) -> u64 {
    if index_pages <= 1 {
        return 0;
    }
    if rng.gen_bool(0.5) {
        rng.gen_range(0..index_pages.min(4))
    } else {
        rng.gen_range(0..index_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(variant: TpchVariant, buffer: usize) -> Trace {
        TpchWorkload::new(
            TpchConfig::new(6_000, buffer, 2, variant)
                .with_seed(3)
                .with_client_name("TPCH_TEST"),
        )
        .generate()
    }

    #[test]
    fn db2_variant_produces_prefetch_reads_and_writes() {
        let trace = tiny(TpchVariant::Db2, 600);
        let summary = trace.summary();
        assert!(summary.reads > 1_000);
        assert!(
            summary.writes > 0,
            "refresh functions and spills must write"
        );
        assert!(trace.requests.iter().any(|r| r.prefetch));
    }

    #[test]
    fn mysql_variant_uses_mysql_hint_schema() {
        let trace = tiny(TpchVariant::MySql, 600);
        let schema = trace.catalog.schema(cache_sim::ClientId(0));
        assert_eq!(schema.arity(), 4);
        assert!(schema.types.iter().any(|t| t.name == "thread ID"));
        // The MySQL schema spans a smaller hint-set space than the DB2
        // schema (Figure 2): fewer hint types, smaller domains.
        let db2_space = tiny(TpchVariant::Db2, 600)
            .catalog
            .schema(cache_sim::ClientId(0))
            .max_hint_sets();
        let mysql_space = schema.max_hint_sets();
        assert!(
            mysql_space < db2_space,
            "MySQL hint-set space ({mysql_space}) should be smaller than DB2's ({db2_space})"
        );
    }

    #[test]
    fn scans_dominate_the_read_stream() {
        let trace = tiny(TpchVariant::Db2, 600);
        let summary = trace.summary();
        assert!(
            summary.reads > 4 * summary.writes,
            "decision-support workloads are read-mostly: {} reads vs {} writes",
            summary.reads,
            summary.writes
        );
    }

    #[test]
    fn bigger_buffer_absorbs_more_traffic() {
        let small = tiny(TpchVariant::Db2, 300).len();
        let large = tiny(TpchVariant::Db2, 4_000).len();
        assert!(
            large < small,
            "large buffer {large} should be below small buffer {small}"
        );
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = tiny(TpchVariant::MySql, 500);
        let b = tiny(TpchVariant::MySql, 500);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.requests[..50], b.requests[..50]);
    }
}
