//! A TPC-C-like OLTP workload generator.
//!
//! This is not a benchmark-compliant TPC-C implementation; it is a *workload
//! model* that reproduces the page-access structure that matters for
//! second-tier caching studies: the standard transaction mix (New-Order,
//! Payment, Order-Status, Delivery, Stock-Level), the table population
//! ratios, skewed customer/item selection, insert-driven database growth, and
//! index traversals whose upper levels are far hotter than the leaves.
//!
//! Driven through a [`DbmsSimulator`], the workload produces a storage-server
//! trace equivalent in structure to the paper's `DB2_C*` traces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cache_sim::Trace;

use crate::bufferpool::BufferPoolConfig;
use crate::client::{DbmsSimulator, HintStyle};
use crate::db::{DatabaseLayout, ObjectId, ObjectKind, ObjectSpec};
use crate::zipf::Zipf;

/// Configuration of the TPC-C-like workload.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Approximate initial database size in pages (tables plus indexes).
    pub database_pages: u64,
    /// Total buffer-pool capacity of the DBMS client, in pages.
    pub buffer_pages: usize,
    /// Number of transactions to execute.
    pub transactions: u64,
    /// Seed for the workload's random number generator.
    pub seed: u64,
    /// First page id to allocate (lets multiple clients use disjoint pages).
    pub page_offset: u64,
    /// Client name recorded in the trace (e.g. `"DB2_C60"`).
    pub client_name: String,
}

impl TpccConfig {
    /// A workload over a `database_pages`-page database with a
    /// `buffer_pages`-page client cache.
    pub fn new(database_pages: u64, buffer_pages: usize, transactions: u64) -> Self {
        TpccConfig {
            database_pages,
            buffer_pages,
            transactions,
            seed: 42,
            page_offset: 0,
            client_name: "DB2_TPCC".to_string(),
        }
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the client name recorded in the trace.
    pub fn with_client_name(mut self, name: impl Into<String>) -> Self {
        self.client_name = name.into();
        self
    }

    /// Sets the first page id used by this client.
    pub fn with_page_offset(mut self, offset: u64) -> Self {
        self.page_offset = offset;
        self
    }
}

/// Handles to the TPC-C tables and indexes.
#[derive(Debug, Clone, Copy)]
struct Schema {
    warehouse: ObjectId,
    district: ObjectId,
    customer: ObjectId,
    customer_idx: ObjectId,
    history: ObjectId,
    new_order: ObjectId,
    orders: ObjectId,
    orders_idx: ObjectId,
    order_line: ObjectId,
    order_line_idx: ObjectId,
    item: ObjectId,
    item_idx: ObjectId,
    stock: ObjectId,
    stock_idx: ObjectId,
}

/// Builds the TPC-C database layout sized to roughly `database_pages` pages.
///
/// The per-table fractions approximate the footprint of a populated TPC-C
/// database: STOCK dominates, followed by CUSTOMER and the order tables;
/// ITEM and the warehouse/district tables are small and hot.
fn build_layout(database_pages: u64, page_offset: u64) -> (DatabaseLayout, Schema) {
    let mut layout = DatabaseLayout::new(page_offset);
    let pages = |fraction: f64| ((database_pages as f64 * fraction) as u64).max(1);
    // Group ids: a table and its indexes share a group ("object ID" hint).
    let add = |layout: &mut DatabaseLayout,
               name: &str,
               kind: ObjectKind,
               group: u32,
               pool: u32,
               priority: u32,
               p: u64| {
        layout.add_object(ObjectSpec {
            name: name.to_string(),
            kind,
            group,
            pool,
            priority,
            initial_pages: p,
        })
    };
    let schema = Schema {
        warehouse: add(
            &mut layout,
            "WAREHOUSE",
            ObjectKind::Table,
            0,
            0,
            3,
            pages(0.0002),
        ),
        district: add(
            &mut layout,
            "DISTRICT",
            ObjectKind::Table,
            1,
            0,
            3,
            pages(0.0005),
        ),
        customer: add(
            &mut layout,
            "CUSTOMER",
            ObjectKind::Table,
            2,
            0,
            1,
            pages(0.18),
        ),
        customer_idx: add(
            &mut layout,
            "CUSTOMER_PK",
            ObjectKind::Index,
            2,
            1,
            2,
            pages(0.035),
        ),
        history: add(
            &mut layout,
            "HISTORY",
            ObjectKind::Table,
            3,
            0,
            0,
            pages(0.04),
        ),
        new_order: add(
            &mut layout,
            "NEW_ORDER",
            ObjectKind::Table,
            4,
            0,
            0,
            pages(0.01),
        ),
        orders: add(
            &mut layout,
            "ORDERS",
            ObjectKind::Table,
            5,
            0,
            0,
            pages(0.04),
        ),
        orders_idx: add(
            &mut layout,
            "ORDERS_PK",
            ObjectKind::Index,
            5,
            1,
            2,
            pages(0.01),
        ),
        order_line: add(
            &mut layout,
            "ORDER_LINE",
            ObjectKind::Table,
            6,
            0,
            0,
            pages(0.12),
        ),
        order_line_idx: add(
            &mut layout,
            "ORDER_LINE_PK",
            ObjectKind::Index,
            6,
            1,
            2,
            pages(0.03),
        ),
        item: add(&mut layout, "ITEM", ObjectKind::Table, 7, 0, 3, pages(0.03)),
        item_idx: add(
            &mut layout,
            "ITEM_PK",
            ObjectKind::Index,
            7,
            1,
            3,
            pages(0.006),
        ),
        stock: add(
            &mut layout,
            "STOCK",
            ObjectKind::Table,
            8,
            0,
            1,
            pages(0.42),
        ),
        stock_idx: add(
            &mut layout,
            "STOCK_PK",
            ObjectKind::Index,
            8,
            1,
            2,
            pages(0.05),
        ),
    };
    (layout, schema)
}

/// The TPC-C-like workload generator.
#[derive(Debug)]
pub struct TpccWorkload {
    config: TpccConfig,
}

impl TpccWorkload {
    /// Creates a generator from a configuration.
    pub fn new(config: TpccConfig) -> Self {
        TpccWorkload { config }
    }

    /// Runs the workload and returns the storage-server trace it produces.
    pub fn generate(&self) -> Trace {
        let (layout, schema) = build_layout(self.config.database_pages, self.config.page_offset);
        // Two buffer pools, as in the paper's DB2 TPC-C configuration: one
        // for data pages, one for index pages. The index pool gets a quarter
        // of the frames.
        let index_pool = (self.config.buffer_pages / 4).max(1);
        let data_pool = (self.config.buffer_pages - index_pool).max(1);
        let pools = [
            BufferPoolConfig::new(data_pool),
            BufferPoolConfig::new(index_pool),
        ];
        let mut dbms = DbmsSimulator::new(&self.config.client_name, HintStyle::Db2, layout, &pools);
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let customer_pages = dbms.layout().pages_of(schema.customer);
        let stock_pages = dbms.layout().pages_of(schema.stock);
        let item_pages = dbms.layout().pages_of(schema.item);
        // Skewed key selection: customers and items follow a Zipf-like
        // popularity distribution (TPC-C's NURand produces a similar skew).
        let customer_skew = Zipf::new(customer_pages as usize, 0.6);
        let item_skew = Zipf::new(item_pages as usize, 0.8);
        let stock_skew = Zipf::new(stock_pages as usize, 0.4);

        let mut state = RunState::default();
        for txn in 0..self.config.transactions {
            let dice = rng.gen_range(0u32..100);
            if dice < 45 {
                self.new_order(&mut dbms, &schema, &mut rng, &item_skew, &stock_skew);
            } else if dice < 88 {
                self.payment(&mut dbms, &schema, &mut rng, &customer_skew);
            } else if dice < 92 {
                self.order_status(&mut dbms, &schema, &mut rng, &customer_skew);
            } else if dice < 96 {
                self.delivery(&mut dbms, &schema, &mut rng, &mut state);
            } else {
                self.stock_level(&mut dbms, &schema, &mut rng, &stock_skew);
            }
            let _ = txn;
        }
        dbms.finish()
    }

    /// New-Order: read item/stock for ~10 lines, update stock and district,
    /// insert the order, its order lines and the new-order entry.
    fn new_order(
        &self,
        dbms: &mut DbmsSimulator,
        s: &Schema,
        rng: &mut StdRng,
        item_skew: &Zipf,
        stock_skew: &Zipf,
    ) {
        dbms.read(
            s.warehouse,
            rng.gen_range(0..dbms.layout().pages_of(s.warehouse)),
        );
        dbms.update(
            s.district,
            rng.gen_range(0..dbms.layout().pages_of(s.district)),
        );
        let customer_slot = rng.gen_range(0..dbms.layout().pages_of(s.customer));
        dbms.read(
            s.customer_idx,
            index_path(rng, dbms.layout().pages_of(s.customer_idx)),
        );
        dbms.read(s.customer, customer_slot);

        let lines = rng.gen_range(5u32..=15);
        for _ in 0..lines {
            let item_slot = item_skew.sample(rng) as u64;
            dbms.read(
                s.item_idx,
                index_path(rng, dbms.layout().pages_of(s.item_idx)),
            );
            dbms.read(s.item, item_slot);
            let stock_slot = stock_skew.sample(rng) as u64;
            dbms.read(
                s.stock_idx,
                index_path(rng, dbms.layout().pages_of(s.stock_idx)),
            );
            dbms.update(s.stock, stock_slot);
            dbms.insert_append(s.order_line);
        }
        dbms.insert_append(s.orders);
        dbms.update(
            s.orders_idx,
            index_path(rng, dbms.layout().pages_of(s.orders_idx)),
        );
        dbms.update(
            s.order_line_idx,
            index_path(rng, dbms.layout().pages_of(s.order_line_idx)),
        );
        dbms.insert_append(s.new_order);
    }

    /// Payment: update warehouse/district/customer, insert a history row.
    fn payment(
        &self,
        dbms: &mut DbmsSimulator,
        s: &Schema,
        rng: &mut StdRng,
        customer_skew: &Zipf,
    ) {
        dbms.update(
            s.warehouse,
            rng.gen_range(0..dbms.layout().pages_of(s.warehouse)),
        );
        dbms.update(
            s.district,
            rng.gen_range(0..dbms.layout().pages_of(s.district)),
        );
        let customer_slot = customer_skew.sample(rng) as u64;
        dbms.read(
            s.customer_idx,
            index_path(rng, dbms.layout().pages_of(s.customer_idx)),
        );
        dbms.update(s.customer, customer_slot);
        dbms.insert_append(s.history);
    }

    /// Order-Status: read a customer and their most recent order lines.
    /// The recent order pages are the freshly appended ones, which the DBMS
    /// buffer still holds, so this transaction produces little storage I/O.
    fn order_status(
        &self,
        dbms: &mut DbmsSimulator,
        s: &Schema,
        rng: &mut StdRng,
        customer_skew: &Zipf,
    ) {
        let customer_slot = customer_skew.sample(rng) as u64;
        dbms.read(
            s.customer_idx,
            index_path(rng, dbms.layout().pages_of(s.customer_idx)),
        );
        dbms.read(s.customer, customer_slot);
        dbms.read(
            s.orders_idx,
            index_path(rng, dbms.layout().pages_of(s.orders_idx)),
        );
        // Recent orders live on the most recently appended pages.
        let orders_pages = dbms.layout().pages_of(s.orders);
        dbms.read(
            s.orders,
            orders_pages.saturating_sub(1 + rng.gen_range(0..4.min(orders_pages))),
        );
        let ol_pages = dbms.layout().pages_of(s.order_line);
        for back in 0..2u64 {
            dbms.read(s.order_line, ol_pages.saturating_sub(1 + back));
        }
    }

    /// Delivery: process the *oldest* undelivered orders — read their
    /// new-order entries, update the order rows, read their order lines and
    /// credit the customers. The delivery cursor lags far behind the insert
    /// frontier, so these order/order-line pages have long since left the
    /// DBMS buffer and are read from the server exactly once (they are not
    /// revisited afterwards) — the behaviour that makes "ORDER_LINE reads" a
    /// poor caching hint in the paper's Figure 3.
    fn delivery(
        &self,
        dbms: &mut DbmsSimulator,
        s: &Schema,
        rng: &mut StdRng,
        state: &mut RunState,
    ) {
        // One delivery processes 10 orders (one per district), roughly 110
        // order-line rows.
        state.delivered_order_rows += 10;
        state.delivered_order_line_rows += 110;
        let orders_cursor = state.delivered_order_rows / 24;
        let ol_cursor = state.delivered_order_line_rows / 24;
        let no_pages = dbms.layout().pages_of(s.new_order);
        dbms.update(s.new_order, state.delivered_order_rows / 24 % no_pages);
        dbms.read(
            s.orders_idx,
            index_path(rng, dbms.layout().pages_of(s.orders_idx)),
        );
        dbms.update(s.orders, orders_cursor);
        // The ~5 order-line pages belonging to the delivered orders.
        dbms.scan(s.order_line, ol_cursor, 5, false);
        for _ in 0..4u64 {
            let customer_slot = rng.gen_range(0..dbms.layout().pages_of(s.customer));
            dbms.update(s.customer, customer_slot);
        }
    }

    /// Stock-Level: examine the order lines of the 20 most recent orders
    /// (still resident in the DBMS buffer) and probe the stock rows they
    /// reference.
    fn stock_level(
        &self,
        dbms: &mut DbmsSimulator,
        s: &Schema,
        rng: &mut StdRng,
        stock_skew: &Zipf,
    ) {
        dbms.read(
            s.district,
            rng.gen_range(0..dbms.layout().pages_of(s.district)),
        );
        let ol_pages = dbms.layout().pages_of(s.order_line);
        let start = ol_pages.saturating_sub(4.min(ol_pages));
        dbms.scan(s.order_line, start, 4, false);
        for _ in 0..12 {
            let stock_slot = stock_skew.sample(rng) as u64;
            dbms.read(
                s.stock_idx,
                index_path(rng, dbms.layout().pages_of(s.stock_idx)),
            );
            dbms.read(s.stock, stock_slot);
        }
    }
}

/// Mutable cursors carried across transactions.
#[derive(Debug, Default)]
struct RunState {
    /// Number of order rows processed by Delivery so far (the delivery
    /// cursor into ORDERS).
    delivered_order_rows: u64,
    /// Number of order-line rows processed by Delivery so far.
    delivered_order_line_rows: u64,
}

/// Picks an index page to visit for one traversal. Real B-tree traversals
/// touch the (very hot) root and internal pages far more often than leaves;
/// we model this by biasing the visited page heavily toward the first pages
/// of the index object.
fn index_path(rng: &mut StdRng, index_pages: u64) -> u64 {
    if index_pages <= 1 {
        return 0;
    }
    match rng.gen_range(0u32..100) {
        // Root / internal node: the first few pages.
        0..=49 => rng.gen_range(0..index_pages.min(4)),
        // Leaf page: anywhere in the index.
        _ => rng.gen_range(0..index_pages),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::WriteHint;

    fn small_trace(buffer_pages: usize) -> Trace {
        let config = TpccConfig::new(4_000, buffer_pages, 2_000)
            .with_seed(7)
            .with_client_name("DB2_TEST");
        TpccWorkload::new(config).generate()
    }

    #[test]
    fn produces_reads_and_all_three_write_kinds() {
        let trace = small_trace(400);
        let summary = trace.summary();
        assert!(summary.reads > 0);
        assert!(summary.writes > 0);
        let mut kinds = std::collections::HashSet::new();
        for r in &trace.requests {
            if let Some(k) = r.write_hint {
                kinds.insert(k);
            }
        }
        assert!(kinds.contains(&WriteHint::Replacement), "kinds: {kinds:?}");
        assert!(kinds.contains(&WriteHint::Recovery), "kinds: {kinds:?}");
    }

    #[test]
    fn hint_set_count_is_moderate() {
        // The paper's TPC-C traces contain 140-164 distinct hint sets; our
        // scaled-down model should land in the same order of magnitude.
        let trace = small_trace(400);
        let distinct = trace.summary().distinct_hint_sets;
        assert!(
            (20..=300).contains(&distinct),
            "unexpected number of distinct hint sets: {distinct}"
        );
    }

    #[test]
    fn larger_client_buffer_produces_fewer_storage_requests() {
        let small_buffer = small_trace(200).len();
        let large_buffer = small_trace(2_000).len();
        assert!(
            large_buffer < small_buffer,
            "a larger first-tier cache must absorb more requests ({large_buffer} vs {small_buffer})"
        );
    }

    #[test]
    fn database_grows_during_the_run() {
        let trace = small_trace(400);
        let summary = trace.summary();
        // Growth means the trace touches more distinct pages than the
        // initial database had... at least in the tail tables; just check
        // that the trace is non-trivial and deterministic.
        assert!(summary.distinct_pages > 100);
        let again = small_trace(400);
        assert_eq!(
            trace.len(),
            again.len(),
            "same seed must give the same trace"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = TpccWorkload::new(TpccConfig::new(4_000, 400, 1_000).with_seed(1)).generate();
        let b = TpccWorkload::new(TpccConfig::new(4_000, 400, 1_000).with_seed(2)).generate();
        assert_ne!(a.len(), b.len());
    }
}
