//! Multi-client trace interleaving (the Section 6.4 experiment).
//!
//! The paper simulates several DB2 instances sharing one storage server by
//! interleaving their single-client traces round-robin, one request from
//! each trace in turn, truncating every trace to the length of the shortest
//! so that no client is over-represented. Hint types of different clients are
//! kept distinct, so the combined trace's hint-set count is the sum of the
//! individual counts.

use cache_sim::{ClientId, Request, Trace};

/// Round-robin interleaves the given traces into one multi-client trace.
///
/// Every input trace is truncated to the length of the shortest input. The
/// clients and hint sets of each input are re-registered in the combined
/// catalog, so requests from different inputs can never share a hint set even
/// if their hint values coincide.
///
/// Returns the combined trace together with the new [`ClientId`] assigned to
/// each input trace's first client (in input order), which the experiments
/// use to report per-client hit ratios.
///
/// # Panics
///
/// Panics if `traces` is empty or any input trace is empty.
pub fn interleave(traces: &[&Trace]) -> (Trace, Vec<ClientId>) {
    assert!(!traces.is_empty(), "at least one trace is required");
    for t in traces {
        assert!(
            !t.is_empty(),
            "cannot interleave an empty trace ({})",
            t.name
        );
    }
    let truncate_to = traces.iter().map(|t| t.len()).min().unwrap_or(0);

    let mut combined = Trace {
        name: format!(
            "interleaved({})",
            traces
                .iter()
                .map(|t| t.name.as_str())
                .collect::<Vec<_>>()
                .join("+")
        ),
        requests: Vec::with_capacity(truncate_to * traces.len()),
        catalog: cache_sim::HintCatalog::new(),
    };

    // Merge every input catalog, remembering the id remappings.
    let mut client_maps = Vec::with_capacity(traces.len());
    let mut set_maps = Vec::with_capacity(traces.len());
    let mut primary_clients = Vec::with_capacity(traces.len());
    for t in traces {
        let (client_map, set_map) = combined.catalog.merge(&t.catalog);
        primary_clients.push(client_map.first().copied().unwrap_or(ClientId(0)));
        client_maps.push(client_map);
        set_maps.push(set_map);
    }

    for i in 0..truncate_to {
        for (t_idx, t) in traces.iter().enumerate() {
            let req = &t.requests[i];
            combined.requests.push(Request {
                client: client_maps[t_idx][req.client.0 as usize],
                hint: set_maps[t_idx][req.hint.index()],
                ..*req
            });
        }
    }
    (combined, primary_clients)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessKind, TraceBuilder};

    fn trace(name: &str, pages: std::ops::Range<u64>, requests: usize) -> Trace {
        let mut b = TraceBuilder::new().with_name(name);
        let c = b.add_client(name, &[("kind", 2)]);
        let h = b.intern_hints(c, &[0]);
        for i in 0..requests as u64 {
            let page = pages.start + (i % (pages.end - pages.start));
            b.push(c, page, AccessKind::Read, None, h);
        }
        b.build()
    }

    #[test]
    fn round_robin_order_and_truncation() {
        let a = trace("A", 0..10, 6);
        let b = trace("B", 1000..1010, 4);
        let (combined, clients) = interleave(&[&a, &b]);
        // Truncated to 4 requests each, alternating A, B, A, B, ...
        assert_eq!(combined.len(), 8);
        assert_eq!(clients.len(), 2);
        assert_ne!(clients[0], clients[1]);
        for (i, req) in combined.requests.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(req.client, clients[0]);
                assert!(req.page.0 < 1000);
            } else {
                assert_eq!(req.client, clients[1]);
                assert!(req.page.0 >= 1000);
            }
        }
        assert!(combined.name.contains('A') && combined.name.contains('B'));
    }

    #[test]
    fn hint_sets_stay_distinct_across_clients() {
        let a = trace("A", 0..10, 5);
        let b = trace("B", 1000..1010, 5);
        let (combined, _) = interleave(&[&a, &b]);
        // Both inputs used identical hint values, but the combined trace must
        // keep them separate: sum of the individual counts.
        assert_eq!(combined.summary().distinct_hint_sets, 2);
        assert_eq!(combined.catalog.client_count(), 2);
    }

    #[test]
    fn three_way_interleave_preserves_per_client_request_counts() {
        let a = trace("A", 0..5, 9);
        let b = trace("B", 100..105, 7);
        let c = trace("C", 200..205, 12);
        let (combined, clients) = interleave(&[&a, &b, &c]);
        assert_eq!(combined.len(), 7 * 3);
        for client in clients {
            let count = combined
                .requests
                .iter()
                .filter(|r| r.client == client)
                .count();
            assert_eq!(count, 7);
        }
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_input_rejected() {
        let _ = interleave(&[]);
    }
}
