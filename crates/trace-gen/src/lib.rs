//! Storage-client substrate for the CLIC reproduction.
//!
//! The paper evaluates CLIC on I/O traces collected beneath the buffer
//! caches of instrumented DB2 and MySQL servers running TPC-C and TPC-H.
//! Those binaries, databases, and traces are not available, so this crate
//! rebuilds the entire pipeline that produced them:
//!
//! * [`db`] — a synthetic relational database layout (tables, indexes,
//!   growth) mapped onto storage pages,
//! * [`bufferpool`] — a first-tier DBMS buffer-pool simulator with an
//!   asynchronous page cleaner (replacement writes), checkpoints (recovery
//!   writes), synchronous writes, priorities and prefetch,
//! * [`client`] — the simulated DBMS storage client that attaches DB2-style
//!   or MySQL-style hint sets (the paper's Figure 2) to every storage I/O,
//! * [`tpcc`] / [`tpch`] — TPC-C-like and TPC-H-like workload generators,
//! * [`presets`] — the eight trace configurations of Figure 5
//!   (`DB2_C60` … `MY_H98`) with paper-scale and scaled-down variants,
//! * [`noise`] — the useless-hint injection of Section 6.3,
//! * [`interleave`] — the multi-client trace interleaving of Section 6.4,
//! * [`zipf`] — Zipf sampling used by the workloads and the noise injector.
//!
//! # Example
//!
//! ```
//! use trace_gen::{PresetScale, TracePreset};
//!
//! // Build a scaled-down version of the paper's DB2_C60 trace.
//! let trace = TracePreset::Db2C60.build(PresetScale::Smoke);
//! assert_eq!(trace.name, "DB2_C60");
//! assert!(trace.summary().distinct_hint_sets > 10);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod bufferpool;
pub mod client;
pub mod db;
pub mod interleave;
pub mod noise;
pub mod presets;
pub mod tpcc;
pub mod tpch;
pub mod zipf;

pub use bufferpool::{BufferPool, BufferPoolConfig, PoolEvent};
pub use client::{DbmsSimulator, HintStyle};
pub use db::{DatabaseLayout, ObjectId, ObjectKind, ObjectSpec};
pub use interleave::interleave;
pub use noise::{inject_noise, NoiseConfig};
pub use presets::{PresetScale, TracePreset};
pub use tpcc::{TpccConfig, TpccWorkload};
pub use tpch::{TpchConfig, TpchVariant, TpchWorkload};
pub use zipf::Zipf;
