//! First-tier (DBMS) buffer-pool simulator.
//!
//! The paper's traces were collected *underneath* the buffer caches of DB2
//! and MySQL: the storage server only sees the misses and write-backs that
//! escape the first tier. This module reproduces that filter. It simulates a
//! buffer pool with:
//!
//! * priority-aware LRU replacement (DB2 buffer priorities),
//! * an asynchronous page cleaner that writes out dirty pages *near the
//!   eviction end* of the pool — these become **replacement writes**,
//! * periodic checkpoints that write out the oldest-dirtied (typically hot)
//!   pages — these become **recovery writes**,
//! * **synchronous writes** when a dirty page reaches the eviction point
//!   before the cleaner got to it.
//!
//! The pool emits [`PoolEvent`]s describing the storage-level I/O it
//! performs; the [`crate::client::DbmsSimulator`] turns those into hinted
//! requests.

use std::collections::HashMap;

use cache_sim::policies::util::OrderedPageSet;
use cache_sim::{PageId, WriteHint};

/// One storage-level I/O performed by the buffer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolEvent {
    /// The pool read `page` from the storage server.
    Read {
        /// The page that was fetched.
        page: PageId,
        /// `true` if the fetch was issued by the prefetcher.
        prefetch: bool,
    },
    /// The pool wrote `page` back to the storage server.
    Write {
        /// The page that was written.
        page: PageId,
        /// Why the write happened (replacement / recovery / synchronous).
        hint: WriteHint,
    },
}

/// Tuning parameters of the simulated buffer pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferPoolConfig {
    /// Number of page frames in the pool.
    pub capacity: usize,
    /// Fraction of dirty frames that triggers the asynchronous page cleaner.
    pub dirty_high_watermark: f64,
    /// Maximum number of pages the cleaner writes per activation.
    pub cleaner_batch: usize,
    /// Number of logical page operations between checkpoints
    /// (`0` disables checkpoints).
    pub checkpoint_interval: u64,
    /// Maximum number of dirty pages written per checkpoint.
    pub checkpoint_batch: usize,
    /// Number of distinct priority levels used by the client (DB2 uses 4,
    /// MySQL effectively 1).
    pub priority_levels: u32,
}

impl BufferPoolConfig {
    /// A reasonable default configuration for a pool of `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        BufferPoolConfig {
            capacity,
            dirty_high_watermark: 0.25,
            cleaner_batch: 32,
            checkpoint_interval: 50_000,
            checkpoint_batch: 64,
            priority_levels: 4,
        }
    }

    /// Sets the number of priority levels.
    pub fn with_priority_levels(mut self, levels: u32) -> Self {
        self.priority_levels = levels.max(1);
        self
    }

    /// Sets the checkpoint interval (0 disables checkpoints).
    pub fn with_checkpoint_interval(mut self, interval: u64) -> Self {
        self.checkpoint_interval = interval;
        self
    }
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    dirty: bool,
    priority: u32,
}

/// The simulated buffer pool.
#[derive(Debug)]
pub struct BufferPool {
    config: BufferPoolConfig,
    frames: HashMap<PageId, Frame>,
    /// One LRU list per priority level; victims are taken from the lowest
    /// non-empty level.
    lru: Vec<OrderedPageSet>,
    /// Dirty pages in the order they first became dirty (checkpoint source).
    dirty_fifo: OrderedPageSet,
    dirty_count: usize,
    ops: u64,
}

impl BufferPool {
    /// Creates a buffer pool.
    ///
    /// # Panics
    ///
    /// Panics if the configured capacity is zero.
    pub fn new(config: BufferPoolConfig) -> Self {
        assert!(config.capacity > 0, "buffer pool capacity must be positive");
        let levels = config.priority_levels.max(1) as usize;
        BufferPool {
            config,
            frames: HashMap::with_capacity(config.capacity),
            lru: (0..levels).map(|_| OrderedPageSet::new()).collect(),
            dirty_fifo: OrderedPageSet::new(),
            dirty_count: 0,
            ops: 0,
        }
    }

    /// Number of frames currently occupied.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Returns `true` if the pool holds no pages.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Number of dirty frames.
    pub fn dirty(&self) -> usize {
        self.dirty_count
    }

    /// Returns `true` if `page` currently resides in the pool.
    pub fn contains(&self, page: PageId) -> bool {
        self.frames.contains_key(&page)
    }

    /// Accesses `page` with the given buffer `priority`. If `write` is true
    /// the page is dirtied. Returns `true` if the access hit in the pool
    /// (i.e. produced no storage read). Storage I/O, if any, is appended to
    /// `events`.
    pub fn access(
        &mut self,
        page: PageId,
        priority: u32,
        write: bool,
        prefetch: bool,
        events: &mut Vec<PoolEvent>,
    ) -> bool {
        self.tick(events);
        let priority = priority.min(self.config.priority_levels - 1);
        if let Some(frame) = self.frames.get_mut(&page) {
            let old_priority = frame.priority;
            frame.priority = priority;
            if write && !frame.dirty {
                frame.dirty = true;
                self.dirty_count += 1;
                self.dirty_fifo.push_back(page);
            }
            if old_priority as usize != priority as usize {
                self.lru[old_priority as usize].remove(page);
                self.lru[priority as usize].push_back(page);
            } else {
                self.lru[priority as usize].touch(page);
            }
            self.maybe_clean(events);
            return true;
        }
        self.make_room(events);
        events.push(PoolEvent::Read { page, prefetch });
        self.install(page, priority, write);
        self.maybe_clean(events);
        false
    }

    /// Installs a newly created page (for example a freshly allocated insert
    /// page) without reading it from storage. The page starts dirty.
    pub fn create(&mut self, page: PageId, priority: u32, events: &mut Vec<PoolEvent>) {
        self.tick(events);
        let priority = priority.min(self.config.priority_levels - 1);
        if let Some(frame) = self.frames.get_mut(&page) {
            if !frame.dirty {
                frame.dirty = true;
                self.dirty_count += 1;
                self.dirty_fifo.push_back(page);
            }
            self.lru[frame.priority as usize].touch(page);
        } else {
            self.make_room(events);
            self.install(page, priority, true);
        }
        self.maybe_clean(events);
    }

    /// Flushes every dirty page (used at end of run); the writes are tagged
    /// as recovery writes, mirroring a final checkpoint.
    pub fn flush_all(&mut self, events: &mut Vec<PoolEvent>) {
        let dirty: Vec<PageId> = self.dirty_fifo.iter().collect();
        for page in dirty {
            self.clean_page(page, WriteHint::Recovery, events);
        }
    }

    fn install(&mut self, page: PageId, priority: u32, dirty: bool) {
        self.frames.insert(page, Frame { dirty, priority });
        self.lru[priority as usize].push_back(page);
        if dirty {
            self.dirty_count += 1;
            self.dirty_fifo.push_back(page);
        }
    }

    fn tick(&mut self, events: &mut Vec<PoolEvent>) {
        self.ops += 1;
        if self.config.checkpoint_interval > 0 && self.ops % self.config.checkpoint_interval == 0 {
            self.checkpoint(events);
        }
    }

    /// Evicts frames until there is room for one more page.
    fn make_room(&mut self, events: &mut Vec<PoolEvent>) {
        while self.frames.len() >= self.config.capacity {
            let victim = self
                .lru
                .iter()
                .find_map(|q| q.front())
                .expect("pool is full so some queue is non-empty");
            let frame = self.frames.remove(&victim).expect("victim has a frame");
            self.lru[frame.priority as usize].remove(victim);
            if frame.dirty {
                // The cleaner did not get to this page in time: the eviction
                // must wait for a synchronous write.
                self.dirty_fifo.remove(victim);
                self.dirty_count -= 1;
                events.push(PoolEvent::Write {
                    page: victim,
                    hint: WriteHint::Synchronous,
                });
            }
        }
    }

    /// Asynchronous page cleaner: when too many frames are dirty, write out
    /// dirty pages that are close to the eviction end of the LRU lists
    /// (lowest priority first) as replacement writes. The pages stay cached
    /// but become clean, so their later eviction is silent.
    fn maybe_clean(&mut self, events: &mut Vec<PoolEvent>) {
        let threshold =
            (self.config.capacity as f64 * self.config.dirty_high_watermark).ceil() as usize;
        if self.dirty_count <= threshold {
            return;
        }
        let mut to_clean = Vec::new();
        let mut budget = self.config.cleaner_batch;
        let scan_limit = self.config.cleaner_batch * 8;
        let mut scanned = 0usize;
        'outer: for queue in &self.lru {
            for page in queue.iter() {
                if budget == 0 || scanned >= scan_limit {
                    break 'outer;
                }
                scanned += 1;
                if self.frames.get(&page).map(|f| f.dirty).unwrap_or(false) {
                    to_clean.push(page);
                    budget -= 1;
                }
            }
        }
        for page in to_clean {
            self.clean_page(page, WriteHint::Replacement, events);
        }
    }

    /// Checkpoint: write out the oldest-dirtied pages (typically hot pages
    /// that keep getting re-dirtied) as recovery writes.
    fn checkpoint(&mut self, events: &mut Vec<PoolEvent>) {
        let batch: Vec<PageId> = self
            .dirty_fifo
            .iter()
            .take(self.config.checkpoint_batch)
            .collect();
        for page in batch {
            self.clean_page(page, WriteHint::Recovery, events);
        }
    }

    fn clean_page(&mut self, page: PageId, hint: WriteHint, events: &mut Vec<PoolEvent>) {
        if let Some(frame) = self.frames.get_mut(&page) {
            if frame.dirty {
                frame.dirty = false;
                self.dirty_count -= 1;
                self.dirty_fifo.remove(page);
                events.push(PoolEvent::Write { page, hint });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(capacity: usize) -> BufferPoolConfig {
        BufferPoolConfig {
            capacity,
            dirty_high_watermark: 0.5,
            cleaner_batch: 2,
            checkpoint_interval: 0,
            checkpoint_batch: 4,
            priority_levels: 4,
        }
    }

    #[test]
    fn hits_produce_no_storage_reads() {
        let mut pool = BufferPool::new(config(4));
        let mut events = Vec::new();
        assert!(!pool.access(PageId(1), 0, false, false, &mut events));
        assert!(pool.access(PageId(1), 0, false, false, &mut events));
        let reads = events
            .iter()
            .filter(|e| matches!(e, PoolEvent::Read { .. }))
            .count();
        assert_eq!(reads, 1, "only the first access should reach storage");
    }

    #[test]
    fn clean_eviction_is_silent_dirty_eviction_writes_synchronously() {
        let mut pool = BufferPool::new(BufferPoolConfig {
            dirty_high_watermark: 1.1, // cleaner never runs
            ..config(2)
        });
        let mut events = Vec::new();
        pool.access(PageId(1), 0, true, false, &mut events); // dirty
        pool.access(PageId(2), 0, false, false, &mut events); // clean
        events.clear();
        // Page 3 evicts page 1 (LRU), which is dirty -> synchronous write.
        pool.access(PageId(3), 0, false, false, &mut events);
        assert!(events.contains(&PoolEvent::Write {
            page: PageId(1),
            hint: WriteHint::Synchronous
        }));
        events.clear();
        // Page 4 evicts page 2, which is clean -> no write, just the read.
        pool.access(PageId(4), 0, false, false, &mut events);
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, PoolEvent::Write { .. }))
                .count(),
            0
        );
    }

    #[test]
    fn cleaner_emits_replacement_writes_and_keeps_pages() {
        let mut pool = BufferPool::new(BufferPoolConfig {
            dirty_high_watermark: 0.25,
            cleaner_batch: 8,
            ..config(8)
        });
        let mut events = Vec::new();
        for p in 0..6u64 {
            pool.access(PageId(p), 0, true, false, &mut events);
        }
        let replacement_writes: Vec<PageId> = events
            .iter()
            .filter_map(|e| match e {
                PoolEvent::Write {
                    page,
                    hint: WriteHint::Replacement,
                } => Some(*page),
                _ => None,
            })
            .collect();
        assert!(
            !replacement_writes.is_empty(),
            "cleaner should have produced replacement writes"
        );
        // Cleaned pages are still resident.
        for p in &replacement_writes {
            assert!(pool.contains(*p));
        }
        assert!(pool.dirty() < 6);
    }

    #[test]
    fn checkpoint_emits_recovery_writes() {
        let mut pool = BufferPool::new(BufferPoolConfig {
            checkpoint_interval: 10,
            checkpoint_batch: 4,
            dirty_high_watermark: 1.1, // isolate the checkpoint path
            ..config(16)
        });
        let mut events = Vec::new();
        // Keep re-dirtying a hot page while doing other work.
        for i in 0..40u64 {
            pool.access(PageId(1), 3, true, false, &mut events);
            pool.access(PageId(2 + (i % 4)), 0, false, false, &mut events);
        }
        let recovery_writes = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    PoolEvent::Write {
                        hint: WriteHint::Recovery,
                        ..
                    }
                )
            })
            .count();
        assert!(
            recovery_writes > 0,
            "checkpoints must produce recovery writes"
        );
        assert!(
            pool.contains(PageId(1)),
            "checkpointed hot page stays resident"
        );
    }

    #[test]
    fn low_priority_pages_are_evicted_before_high_priority_ones() {
        let mut pool = BufferPool::new(BufferPoolConfig {
            dirty_high_watermark: 1.1,
            ..config(2)
        });
        let mut events = Vec::new();
        pool.access(PageId(1), 3, false, false, &mut events); // high priority
        pool.access(PageId(2), 0, false, false, &mut events); // low priority
        pool.access(PageId(3), 0, false, false, &mut events); // evicts page 2
        assert!(pool.contains(PageId(1)));
        assert!(!pool.contains(PageId(2)));
        assert!(pool.contains(PageId(3)));
    }

    #[test]
    fn prefetch_flag_is_propagated() {
        let mut pool = BufferPool::new(config(4));
        let mut events = Vec::new();
        pool.access(PageId(9), 0, false, true, &mut events);
        assert_eq!(
            events[0],
            PoolEvent::Read {
                page: PageId(9),
                prefetch: true
            }
        );
    }

    #[test]
    fn create_does_not_read_from_storage() {
        let mut pool = BufferPool::new(config(4));
        let mut events = Vec::new();
        pool.create(PageId(7), 0, &mut events);
        assert!(events.iter().all(|e| !matches!(e, PoolEvent::Read { .. })));
        assert!(pool.contains(PageId(7)));
        assert_eq!(pool.dirty(), 1);
    }

    #[test]
    fn flush_all_writes_every_dirty_page_as_recovery() {
        let mut pool = BufferPool::new(BufferPoolConfig {
            dirty_high_watermark: 1.1,
            ..config(8)
        });
        let mut events = Vec::new();
        for p in 0..5u64 {
            pool.access(PageId(p), 0, true, false, &mut events);
        }
        events.clear();
        pool.flush_all(&mut events);
        assert_eq!(events.len(), 5);
        assert!(events.iter().all(|e| matches!(
            e,
            PoolEvent::Write {
                hint: WriteHint::Recovery,
                ..
            }
        )));
        assert_eq!(pool.dirty(), 0);
    }

    #[test]
    fn pool_never_exceeds_capacity() {
        let mut pool = BufferPool::new(config(16));
        let mut events = Vec::new();
        for i in 0..2000u64 {
            let write = i % 3 == 0;
            pool.access(PageId(i % 97), (i % 4) as u32, write, false, &mut events);
            assert!(pool.len() <= 16);
        }
    }
}
