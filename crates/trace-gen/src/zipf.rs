//! Zipf-distributed sampling.
//!
//! Used in two places that mirror the paper: the skewed key-selection of the
//! synthetic TPC-C/TPC-H workloads, and the noise-hint injection experiment
//! of Section 6.3, which draws each injected hint value "using a Zipf
//! distribution with skew parameter z = 1".

use rand::Rng;

/// A sampler over `{0, 1, ..., n-1}` where value `i` has probability
/// proportional to `1 / (i + 1)^s`.
///
/// The implementation precomputes the cumulative distribution and samples by
/// binary search, so construction is `O(n)` and each sample is `O(log n)`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf sampler over `n` values with skew parameter `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative or not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf domain size must be positive");
        assert!(
            s.is_finite() && s >= 0.0,
            "zipf skew must be non-negative, got {s}"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        // Normalize so the last entry is exactly 1.0.
        for c in cumulative.iter_mut() {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Zipf { cumulative }
    }

    /// Number of values in the domain.
    pub fn domain(&self) -> usize {
        self.cumulative.len()
    }

    /// Draws one value in `0..domain()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf values are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skew_one_prefers_small_values() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Value 0 should be roughly (1/1) / (1/2) = 2x more likely than value 1.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[9]);
        // The head (first 10 values) should dominate the tail under z = 1.
        let head: u64 = counts[..10].iter().sum();
        let tail: u64 = counts[90..].iter().sum();
        assert!(head > 10 * tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn skew_zero_is_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 1_000.0,
                "uniform sampling expected, got {counts:?}"
            );
        }
    }

    #[test]
    fn samples_stay_in_domain() {
        let zipf = Zipf::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 3);
        }
        assert_eq!(zipf.domain(), 3);
    }

    #[test]
    fn single_value_domain_always_returns_zero() {
        let zipf = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn empty_domain_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
