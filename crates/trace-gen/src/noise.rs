//! Noise-hint injection (the Section 6.3 experiment).
//!
//! The paper stresses CLIC's top-k hint tracking by attaching `T` additional
//! *useless* hint types to every request of a real trace. Each injected hint
//! type has a value domain of size `D`, and each value is drawn independently
//! from a Zipf distribution with skew `z = 1`. Because the injected values
//! carry no information about re-reference behaviour, the ideal policy would
//! ignore them — but they multiply the number of distinct hint sets by up to
//! `D^T`, diluting the statistics of the original hint sets.

use rand::rngs::StdRng;
use rand::SeedableRng;

use cache_sim::{HintCatalog, Request, Trace};

use crate::zipf::Zipf;

/// Configuration of the noise-injection transformation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Number of synthetic hint types `T` appended to every request.
    pub noise_types: u32,
    /// Domain size `D` of each synthetic hint type.
    pub domain: u32,
    /// Zipf skew used to draw the synthetic values (the paper uses 1.0).
    pub skew: f64,
    /// Random seed.
    pub seed: u64,
}

impl NoiseConfig {
    /// The paper's setting: domain `D = 10`, skew `z = 1`.
    pub fn new(noise_types: u32) -> Self {
        NoiseConfig {
            noise_types,
            domain: 10,
            skew: 1.0,
            seed: 7,
        }
    }

    /// Sets the domain size `D`.
    pub fn with_domain(mut self, domain: u32) -> Self {
        self.domain = domain.max(1);
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Returns a copy of `trace` in which every request carries `T` additional
/// Zipf-distributed noise hint values (and therefore a new, larger hint-set
/// catalog). With `noise_types == 0` the trace is rebuilt unchanged except
/// for freshly assigned hint-set ids.
pub fn inject_noise(trace: &Trace, config: NoiseConfig) -> Trace {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(config.domain as usize, config.skew);

    // Rebuild the catalog: same clients, schemas extended with T noise types.
    let mut catalog = HintCatalog::new();
    for schema in trace.catalog.schemas() {
        let mut types: Vec<(String, u32)> = schema
            .types
            .iter()
            .map(|t| (t.name.clone(), t.domain_cardinality))
            .collect();
        for t in 0..config.noise_types {
            types.push((format!("noise hint {t}"), config.domain));
        }
        let refs: Vec<(&str, u32)> = types.iter().map(|(n, c)| (n.as_str(), *c)).collect();
        catalog.add_client(schema.client_name.clone(), &refs);
    }

    let mut requests = Vec::with_capacity(trace.requests.len());
    let mut values = Vec::new();
    for req in &trace.requests {
        let original = trace.catalog.resolve(req.hint);
        values.clear();
        values.extend(original.values.iter().map(|v| v.0));
        for _ in 0..config.noise_types {
            values.push(zipf.sample(&mut rng) as u32);
        }
        let hint = catalog.intern(req.client, &values);
        requests.push(Request { hint, ..*req });
    }

    Trace {
        name: if config.noise_types == 0 {
            trace.name.clone()
        } else {
            format!("{}+T{}", trace.name, config.noise_types)
        },
        requests,
        catalog,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessKind, TraceBuilder};

    fn base_trace() -> Trace {
        let mut b = TraceBuilder::new().with_name("base");
        let c = b.add_client("db", &[("kind", 3)]);
        let hints: Vec<_> = (0..3).map(|v| b.intern_hints(c, &[v])).collect();
        for i in 0..3_000u64 {
            b.push(c, i % 50, AccessKind::Read, None, hints[(i % 3) as usize]);
        }
        b.build()
    }

    #[test]
    fn zero_noise_preserves_structure() {
        let trace = base_trace();
        let noisy = inject_noise(&trace, NoiseConfig::new(0));
        assert_eq!(noisy.len(), trace.len());
        assert_eq!(noisy.summary().distinct_hint_sets, 3);
        assert_eq!(noisy.name, "base");
        // Page/kind structure is untouched.
        assert_eq!(noisy.requests[0].page, trace.requests[0].page);
    }

    #[test]
    fn noise_multiplies_distinct_hint_sets() {
        let trace = base_trace();
        let t1 = inject_noise(&trace, NoiseConfig::new(1));
        let t2 = inject_noise(&trace, NoiseConfig::new(2));
        let base_sets = trace.summary().distinct_hint_sets;
        let t1_sets = t1.summary().distinct_hint_sets;
        let t2_sets = t2.summary().distinct_hint_sets;
        assert!(t1_sets > base_sets);
        assert!(t2_sets > t1_sets);
        // Upper bound: D^T times the original count.
        assert!(t1_sets <= base_sets * 10);
        assert!(t2_sets <= base_sets * 100);
        assert_eq!(t1.name, "base+T1");
    }

    #[test]
    fn schema_gains_noise_hint_types() {
        let trace = base_trace();
        let noisy = inject_noise(&trace, NoiseConfig::new(3).with_domain(7));
        let schema = noisy.catalog.schema(cache_sim::ClientId(0));
        assert_eq!(schema.arity(), 1 + 3);
        assert_eq!(schema.types[1].name, "noise hint 0");
        assert_eq!(schema.types[1].domain_cardinality, 7);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let trace = base_trace();
        let a = inject_noise(&trace, NoiseConfig::new(2).with_seed(5));
        let b = inject_noise(&trace, NoiseConfig::new(2).with_seed(5));
        let c = inject_noise(&trace, NoiseConfig::new(2).with_seed(6));
        assert_eq!(a.requests, b.requests);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn noise_values_are_zipf_skewed() {
        let trace = base_trace();
        let noisy = inject_noise(&trace, NoiseConfig::new(1));
        // Count how often each noise value appears; value 0 must dominate.
        let mut counts = vec![0u64; 10];
        for req in &noisy.requests {
            let resolved = noisy.catalog.resolve(req.hint);
            counts[resolved.values[1].0 as usize] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > counts[9]);
    }
}
