//! The simulated storage client: a DBMS instance that owns a database
//! layout and one or more buffer pools, executes logical page operations,
//! and records every resulting storage-level I/O as a hinted request.
//!
//! This is the stand-in for the instrumented DB2 and MySQL binaries the paper
//! used to collect its traces. The hint *types* it attaches are the same as
//! the paper's Figure 2:
//!
//! * **DB2 style**: pool ID, object ID, object type ID, request type
//!   (regular read / prefetch read / recovery write / replacement write /
//!   synchronous write), and buffer priority.
//! * **MySQL style**: thread ID, request type (read / replacement write /
//!   recovery write), file ID, and fix count.

use cache_sim::{ClientId, HintSetId, PageId, Request, Trace, TraceBuilder, WriteHint};

use crate::bufferpool::{BufferPool, BufferPoolConfig, PoolEvent};
use crate::db::{DatabaseLayout, ObjectId, ObjectKind};

/// Which client application's hint schema to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HintStyle {
    /// IBM DB2-style hints (5 hint types).
    Db2,
    /// MySQL-style hints (4 hint types).
    MySql,
}

/// Request-type hint values used by the DB2-style schema.
mod db2_request_type {
    pub const READ: u32 = 0;
    pub const PREFETCH_READ: u32 = 1;
    pub const RECOVERY_WRITE: u32 = 2;
    pub const REPLACEMENT_WRITE: u32 = 3;
    pub const SYNCHRONOUS_WRITE: u32 = 4;
}

/// Request-type hint values used by the MySQL-style schema.
mod mysql_request_type {
    pub const READ: u32 = 0;
    pub const REPLACEMENT_WRITE: u32 = 1;
    pub const RECOVERY_WRITE: u32 = 2;
}

/// Number of simulated MySQL server threads (Figure 2 lists a cardinality
/// of 5 for the MySQL thread-ID hint).
pub const MYSQL_THREADS: u32 = 5;

/// A simulated DBMS storage client.
///
/// Workload generators drive it through logical operations ([`read`],
/// [`update`], [`insert_append`], [`scan`], ...); every buffer-pool miss or
/// write-back is appended to an internal [`TraceBuilder`] with the
/// appropriate hint set. Call [`finish`] to obtain the storage-server trace.
///
/// [`read`]: DbmsSimulator::read
/// [`update`]: DbmsSimulator::update
/// [`insert_append`]: DbmsSimulator::insert_append
/// [`scan`]: DbmsSimulator::scan
/// [`finish`]: DbmsSimulator::finish
#[derive(Debug)]
pub struct DbmsSimulator {
    builder: TraceBuilder,
    client: ClientId,
    style: HintStyle,
    layout: DatabaseLayout,
    pools: Vec<BufferPool>,
    /// Scratch buffer reused across operations.
    events: Vec<PoolEvent>,
    /// Current MySQL thread id (round-robined by the workload generator).
    thread: u32,
    /// Per-object append state: rows written into the current tail page.
    append_fill: Vec<u32>,
    rows_per_page: u32,
}

impl DbmsSimulator {
    /// Creates a simulator for a client named `name`, using `style` hints,
    /// the given database `layout`, and one buffer pool per entry of
    /// `pool_configs`. `page_offset` has already been applied to `layout`.
    ///
    /// # Panics
    ///
    /// Panics if `pool_configs` is empty or if an object in `layout`
    /// references a pool index that is out of range.
    pub fn new(
        name: &str,
        style: HintStyle,
        layout: DatabaseLayout,
        pool_configs: &[BufferPoolConfig],
    ) -> Self {
        assert!(
            !pool_configs.is_empty(),
            "at least one buffer pool is required"
        );
        for (_, spec) in layout.objects() {
            assert!(
                (spec.pool as usize) < pool_configs.len(),
                "object {} references pool {} but only {} pools are configured",
                spec.name,
                spec.pool,
                pool_configs.len()
            );
        }
        let mut builder = TraceBuilder::new().with_name(name);
        let group_count = layout
            .objects()
            .map(|(_, s)| s.group)
            .max()
            .map(|g| g + 1)
            .unwrap_or(1);
        let client = match style {
            HintStyle::Db2 => builder.add_client(
                name,
                &[
                    ("pool ID", pool_configs.len() as u32),
                    ("object ID", group_count),
                    ("object type ID", 3),
                    ("request type", 5),
                    ("buffer priority", 4),
                ],
            ),
            HintStyle::MySql => builder.add_client(
                name,
                &[
                    ("thread ID", MYSQL_THREADS),
                    ("request type", 3),
                    ("file ID", group_count),
                    ("fix count", 2),
                ],
            ),
        };
        let append_fill = vec![0; layout.object_count()];
        DbmsSimulator {
            builder,
            client,
            style,
            layout,
            pools: pool_configs.iter().map(|c| BufferPool::new(*c)).collect(),
            events: Vec::new(),
            thread: 0,
            append_fill,
            rows_per_page: 24,
        }
    }

    /// The database layout (read-only).
    pub fn layout(&self) -> &DatabaseLayout {
        &self.layout
    }

    /// Number of storage requests recorded so far.
    pub fn request_count(&self) -> usize {
        self.builder.len()
    }

    /// Sets the simulated server thread issuing subsequent operations
    /// (only visible through the MySQL thread-ID hint).
    pub fn set_thread(&mut self, thread: u32) {
        self.thread = thread % MYSQL_THREADS;
    }

    /// Logical read of `(object, slot)`.
    pub fn read(&mut self, object: ObjectId, slot: u64) {
        self.operate(object, slot, false, false);
    }

    /// Logical prefetch read of `(object, slot)`.
    pub fn read_prefetch(&mut self, object: ObjectId, slot: u64) {
        self.operate(object, slot, false, true);
    }

    /// Logical read-modify-write of `(object, slot)`.
    pub fn update(&mut self, object: ObjectId, slot: u64) {
        self.operate(object, slot, true, false);
    }

    /// Appends a row to `object`, dirtying its tail page and growing the
    /// object by one page whenever the tail page fills up. Returns the slot
    /// that received the row.
    pub fn insert_append(&mut self, object: ObjectId) -> u64 {
        let fill = &mut self.append_fill[object.0];
        *fill += 1;
        if *fill >= self.rows_per_page {
            *fill = 0;
            self.layout.grow(object, 1);
        }
        let slot = self.layout.pages_of(object) - 1;
        let page = self.layout.page(object, slot);
        let spec = self.layout.spec(object);
        let (pool, priority) = (spec.pool as usize, spec.priority);
        self.pools[pool].create(page, priority, &mut self.events);
        self.drain_events();
        slot
    }

    /// Sequentially reads `pages` pages of `object` starting at `start_slot`
    /// (wrapping around the object). When `prefetch` is true all but the
    /// first page are tagged as prefetch reads, mirroring DB2's sequential
    /// prefetcher.
    pub fn scan(&mut self, object: ObjectId, start_slot: u64, pages: u64, prefetch: bool) {
        for i in 0..pages {
            let is_prefetch = prefetch && i > 0;
            self.operate(object, start_slot + i, false, is_prefetch);
        }
    }

    /// Flushes all dirty buffer-pool pages (a final checkpoint) and returns
    /// the accumulated storage trace.
    pub fn finish(mut self) -> Trace {
        for pool in &mut self.pools {
            pool.flush_all(&mut self.events);
        }
        self.drain_events();
        self.builder.build()
    }

    fn operate(&mut self, object: ObjectId, slot: u64, write: bool, prefetch: bool) {
        let page = self.layout.page(object, slot);
        let spec = self.layout.spec(object);
        let (pool, priority) = (spec.pool as usize, spec.priority);
        self.pools[pool].access(page, priority, write, prefetch, &mut self.events);
        self.drain_events();
    }

    /// Converts buffered pool events into hinted storage requests.
    fn drain_events(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let events = std::mem::take(&mut self.events);
        for event in &events {
            let request = self.request_for(event);
            self.builder.push_request(request);
        }
        self.events = events;
        self.events.clear();
    }

    fn request_for(&mut self, event: &PoolEvent) -> Request {
        match *event {
            PoolEvent::Read { page, prefetch } => {
                let hint = self.hint_for(page, None, prefetch);
                if prefetch {
                    Request::prefetch(self.client, page, hint)
                } else {
                    Request::read(self.client, page, hint)
                }
            }
            PoolEvent::Write {
                page,
                hint: write_hint,
            } => {
                let hint = self.hint_for(page, Some(write_hint), false);
                Request::write(self.client, page, Some(write_hint), hint)
            }
        }
    }

    fn hint_for(&mut self, page: PageId, write: Option<WriteHint>, prefetch: bool) -> HintSetId {
        let (group, kind, pool, priority) = match self.layout.object_of(page) {
            Some(object) => {
                let spec = self.layout.spec(object);
                (spec.group, spec.kind, spec.pool, spec.priority)
            }
            None => (0, ObjectKind::Temporary, 0, 0),
        };
        match self.style {
            HintStyle::Db2 => {
                let request_type = match (write, prefetch) {
                    (None, false) => db2_request_type::READ,
                    (None, true) => db2_request_type::PREFETCH_READ,
                    (Some(WriteHint::Recovery), _) => db2_request_type::RECOVERY_WRITE,
                    (Some(WriteHint::Replacement), _) => db2_request_type::REPLACEMENT_WRITE,
                    (Some(WriteHint::Synchronous), _) => db2_request_type::SYNCHRONOUS_WRITE,
                };
                self.builder.intern_hints(
                    self.client,
                    &[pool, group, kind.type_code(), request_type, priority],
                )
            }
            HintStyle::MySql => {
                let request_type = match write {
                    None => mysql_request_type::READ,
                    Some(WriteHint::Recovery) => mysql_request_type::RECOVERY_WRITE,
                    // MySQL does not distinguish synchronous from
                    // asynchronous replacement writes.
                    Some(WriteHint::Replacement) | Some(WriteHint::Synchronous) => {
                        mysql_request_type::REPLACEMENT_WRITE
                    }
                };
                // Reads are issued by the query thread; write-backs come from
                // the background flusher (thread 0), as in InnoDB.
                let thread = if write.is_some() { 0 } else { self.thread };
                let fix_count = if kind == ObjectKind::Index { 1 } else { 0 };
                self.builder
                    .intern_hints(self.client, &[thread, request_type, group, fix_count])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::ObjectSpec;
    use cache_sim::AccessKind;

    fn tiny_layout() -> (DatabaseLayout, ObjectId, ObjectId) {
        let mut layout = DatabaseLayout::new(0);
        let table = layout.add_object(ObjectSpec {
            name: "T".into(),
            kind: ObjectKind::Table,
            group: 0,
            pool: 0,
            priority: 1,
            initial_pages: 100,
        });
        let index = layout.add_object(ObjectSpec {
            name: "T_PK".into(),
            kind: ObjectKind::Index,
            group: 0,
            pool: 0,
            priority: 3,
            initial_pages: 10,
        });
        (layout, table, index)
    }

    fn small_pool() -> BufferPoolConfig {
        BufferPoolConfig {
            capacity: 8,
            dirty_high_watermark: 0.5,
            cleaner_batch: 4,
            checkpoint_interval: 0,
            checkpoint_batch: 4,
            priority_levels: 4,
        }
    }

    #[test]
    fn misses_become_hinted_read_requests() {
        let (layout, table, _) = tiny_layout();
        let mut dbms = DbmsSimulator::new("DB2_TEST", HintStyle::Db2, layout, &[small_pool()]);
        dbms.read(table, 5);
        dbms.read(table, 5); // buffer-pool hit: no storage request
        dbms.read(table, 6);
        let trace = dbms.finish();
        assert_eq!(trace.requests.iter().filter(|r| r.is_read()).count(), 2);
        let req = &trace.requests[0];
        assert_eq!(req.kind, AccessKind::Read);
        let label = trace.catalog.describe(req.hint);
        assert!(label.contains("request type=0"), "label was {label}");
        assert!(label.contains("buffer priority=1"), "label was {label}");
    }

    #[test]
    fn prefetch_scans_use_the_prefetch_hint() {
        let (layout, table, _) = tiny_layout();
        let mut dbms = DbmsSimulator::new("DB2_TEST", HintStyle::Db2, layout, &[small_pool()]);
        dbms.scan(table, 0, 4, true);
        let trace = dbms.finish();
        let prefetch_reads = trace.requests.iter().filter(|r| r.prefetch).count();
        assert_eq!(
            prefetch_reads, 3,
            "all but the first scan page are prefetched"
        );
    }

    #[test]
    fn updates_eventually_produce_write_requests_with_hints() {
        let (layout, table, _) = tiny_layout();
        let mut dbms = DbmsSimulator::new("DB2_TEST", HintStyle::Db2, layout, &[small_pool()]);
        for slot in 0..50u64 {
            dbms.update(table, slot);
        }
        let trace = dbms.finish();
        let writes: Vec<_> = trace.requests.iter().filter(|r| r.is_write()).collect();
        assert!(!writes.is_empty());
        // Every write carries a typed write hint and a categorical hint set
        // whose request-type value matches it.
        for w in &writes {
            let label = trace.catalog.describe(w.hint);
            match w.write_hint.unwrap() {
                WriteHint::Replacement => assert!(label.contains("request type=3"), "{label}"),
                WriteHint::Recovery => assert!(label.contains("request type=2"), "{label}"),
                WriteHint::Synchronous => assert!(label.contains("request type=4"), "{label}"),
            }
        }
    }

    #[test]
    fn mysql_style_hints_have_four_types() {
        let (layout, table, index) = tiny_layout();
        let mut dbms = DbmsSimulator::new("MY_TEST", HintStyle::MySql, layout, &[small_pool()]);
        dbms.set_thread(2);
        dbms.read(table, 1);
        dbms.read(index, 1);
        let trace = dbms.finish();
        assert_eq!(trace.catalog.schema(cache_sim::ClientId(0)).arity(), 4);
        let table_req = &trace.requests[0];
        let index_req = &trace.requests[1];
        let table_label = trace.catalog.describe(table_req.hint);
        let index_label = trace.catalog.describe(index_req.hint);
        assert!(table_label.contains("thread ID=2"), "{table_label}");
        assert!(table_label.contains("fix count=0"), "{table_label}");
        assert!(index_label.contains("fix count=1"), "{index_label}");
    }

    #[test]
    fn insert_append_grows_the_object() {
        let (layout, table, _) = tiny_layout();
        let before = layout.pages_of(table);
        let mut dbms = DbmsSimulator::new("DB2_TEST", HintStyle::Db2, layout, &[small_pool()]);
        for _ in 0..100 {
            dbms.insert_append(table);
        }
        assert!(dbms.layout().pages_of(table) > before);
        let trace = dbms.finish();
        // Inserts never read from storage.
        assert_eq!(trace.requests.iter().filter(|r| r.is_read()).count(), 0);
        // But dirty tail pages do get written back eventually.
        assert!(trace.requests.iter().any(|r| r.is_write()));
    }

    #[test]
    fn buffer_pool_absorbs_locality() {
        // A hot working set smaller than the pool produces almost no storage
        // traffic after the cold start; the same accesses with a tiny pool
        // produce much more.
        let make = |pool_pages: usize| {
            let (layout, table, _) = tiny_layout();
            let mut dbms = DbmsSimulator::new(
                "DB2_TEST",
                HintStyle::Db2,
                layout,
                &[BufferPoolConfig {
                    capacity: pool_pages,
                    ..small_pool()
                }],
            );
            for round in 0..200u64 {
                for slot in 0..20u64 {
                    dbms.read(table, slot);
                    let _ = round;
                }
            }
            dbms.finish().requests.len()
        };
        let big_pool_traffic = make(32);
        let small_pool_traffic = make(4);
        assert!(big_pool_traffic <= 25, "big pool should absorb the hot set");
        assert!(
            small_pool_traffic > 10 * big_pool_traffic,
            "small pool ({small_pool_traffic}) should leak far more requests than big pool ({big_pool_traffic})"
        );
    }

    #[test]
    #[should_panic(expected = "pool")]
    fn object_referencing_missing_pool_is_rejected() {
        let mut layout = DatabaseLayout::new(0);
        layout.add_object(ObjectSpec {
            name: "X".into(),
            kind: ObjectKind::Table,
            group: 0,
            pool: 3,
            priority: 0,
            initial_pages: 1,
        });
        let _ = DbmsSimulator::new("bad", HintStyle::Db2, layout, &[small_pool()]);
    }
}
