//! The synthetic relational database layout shared by the workload
//! generators.
//!
//! A [`DatabaseLayout`] maps logical database objects (tables and indexes) to
//! disjoint ranges of storage-server pages. Workload generators address pages
//! as `(object, row-or-slot index)`; the layout translates that into global
//! [`PageId`]s, supports table growth (TPC-C inserts), and can map a page
//! back to its owning object so that the buffer pool can attach the right
//! hints to write-backs.

use std::fmt;

use cache_sim::PageId;

/// Whether a database object is a base table or an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// A base table holding rows.
    Table,
    /// A secondary or primary index.
    Index,
    /// A temporary object (sort spill, intermediate result).
    Temporary,
}

impl ObjectKind {
    /// Numeric code used as the "object type" hint value.
    pub fn type_code(self) -> u32 {
        match self {
            ObjectKind::Table => 0,
            ObjectKind::Index => 1,
            ObjectKind::Temporary => 2,
        }
    }
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectKind::Table => write!(f, "table"),
            ObjectKind::Index => write!(f, "index"),
            ObjectKind::Temporary => write!(f, "temp"),
        }
    }
}

/// Handle to an object registered in a [`DatabaseLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectId(pub usize);

/// Static description of one database object.
#[derive(Debug, Clone)]
pub struct ObjectSpec {
    /// Object name, e.g. `"STOCK"` or `"STOCK_PK"`.
    pub name: String,
    /// Table, index, or temporary.
    pub kind: ObjectKind,
    /// Identifier of the *group* of related objects (a table and its
    /// indexes share a group), used as the "object ID" hint value.
    pub group: u32,
    /// The buffer pool this object is assigned to ("pool ID" hint value).
    pub pool: u32,
    /// The client buffer priority of this object's pages
    /// ("buffer priority" hint value).
    pub priority: u32,
    /// Initial number of pages.
    pub initial_pages: u64,
}

#[derive(Debug, Clone)]
struct Extent {
    object: ObjectId,
    start: u64,
    pages: u64,
}

/// Maps logical objects to global page numbers.
#[derive(Debug, Clone)]
pub struct DatabaseLayout {
    objects: Vec<ObjectSpec>,
    /// Allocated extents ordered by starting page.
    extents: Vec<Extent>,
    /// Per-object list of extent indexes, in allocation order.
    object_extents: Vec<Vec<usize>>,
    /// Current page count per object (initial + grown).
    object_pages: Vec<u64>,
    base_offset: u64,
    next_free: u64,
}

impl DatabaseLayout {
    /// Creates an empty layout whose pages start at `base_offset`. Distinct
    /// clients use distinct offsets so their page ids never collide.
    pub fn new(base_offset: u64) -> Self {
        DatabaseLayout {
            objects: Vec::new(),
            extents: Vec::new(),
            object_extents: Vec::new(),
            object_pages: Vec::new(),
            base_offset,
            next_free: base_offset,
        }
    }

    /// Registers an object and allocates its initial extent.
    ///
    /// # Panics
    ///
    /// Panics if `initial_pages` is zero.
    pub fn add_object(&mut self, spec: ObjectSpec) -> ObjectId {
        assert!(
            spec.initial_pages > 0,
            "objects must start with at least one page"
        );
        let id = ObjectId(self.objects.len());
        let extent = Extent {
            object: id,
            start: self.next_free,
            pages: spec.initial_pages,
        };
        self.next_free += spec.initial_pages;
        self.object_pages.push(spec.initial_pages);
        self.object_extents.push(vec![self.extents.len()]);
        self.extents.push(extent);
        self.objects.push(spec);
        id
    }

    /// The static description of `object`.
    pub fn spec(&self, object: ObjectId) -> &ObjectSpec {
        &self.objects[object.0]
    }

    /// Number of registered objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Current number of pages owned by `object`.
    pub fn pages_of(&self, object: ObjectId) -> u64 {
        self.object_pages[object.0]
    }

    /// Total pages allocated across all objects (the database size).
    pub fn total_pages(&self) -> u64 {
        self.next_free - self.base_offset
    }

    /// Translates `(object, slot)` into a global page id. `slot` is taken
    /// modulo the object's current page count, so callers can address rows
    /// with any non-negative index.
    pub fn page(&self, object: ObjectId, slot: u64) -> PageId {
        let pages = self.object_pages[object.0];
        let mut offset = slot % pages;
        for &ext_idx in &self.object_extents[object.0] {
            let ext = &self.extents[ext_idx];
            if offset < ext.pages {
                return PageId(ext.start + offset);
            }
            offset -= ext.pages;
        }
        unreachable!("slot {slot} not covered by extents of {:?}", object)
    }

    /// Appends `pages` new pages to `object` (database growth), returning the
    /// first newly allocated page id.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn grow(&mut self, object: ObjectId, pages: u64) -> PageId {
        assert!(pages > 0, "growth must add at least one page");
        let extent = Extent {
            object,
            start: self.next_free,
            pages,
        };
        let first = PageId(self.next_free);
        self.next_free += pages;
        self.object_pages[object.0] += pages;
        self.object_extents[object.0].push(self.extents.len());
        self.extents.push(extent);
        first
    }

    /// Maps a page id back to the object that owns it, or `None` if the page
    /// does not belong to this layout.
    pub fn object_of(&self, page: PageId) -> Option<ObjectId> {
        if page.0 < self.base_offset || page.0 >= self.next_free {
            return None;
        }
        // Extents are allocated in increasing page order, so binary search on
        // the start page finds the candidate extent.
        let idx = match self.extents.binary_search_by(|e| e.start.cmp(&page.0)) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let ext = &self.extents[idx];
        if page.0 >= ext.start && page.0 < ext.start + ext.pages {
            Some(ext.object)
        } else {
            None
        }
    }

    /// Iterates over all registered objects.
    pub fn objects(&self) -> impl Iterator<Item = (ObjectId, &ObjectSpec)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, spec)| (ObjectId(i), spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, kind: ObjectKind, group: u32, pages: u64) -> ObjectSpec {
        ObjectSpec {
            name: name.to_string(),
            kind,
            group,
            pool: 0,
            priority: 0,
            initial_pages: pages,
        }
    }

    #[test]
    fn pages_are_disjoint_across_objects() {
        let mut layout = DatabaseLayout::new(1000);
        let a = layout.add_object(spec("A", ObjectKind::Table, 0, 10));
        let b = layout.add_object(spec("B", ObjectKind::Table, 1, 5));
        assert_eq!(layout.page(a, 0), PageId(1000));
        assert_eq!(layout.page(a, 9), PageId(1009));
        assert_eq!(layout.page(b, 0), PageId(1010));
        assert_eq!(layout.total_pages(), 15);
        assert_eq!(layout.pages_of(a), 10);
        // Slots wrap modulo the object's size.
        assert_eq!(layout.page(a, 10), layout.page(a, 0));
    }

    #[test]
    fn object_of_resolves_pages() {
        let mut layout = DatabaseLayout::new(0);
        let a = layout.add_object(spec("A", ObjectKind::Table, 0, 4));
        let b = layout.add_object(spec("B", ObjectKind::Index, 0, 4));
        assert_eq!(layout.object_of(PageId(0)), Some(a));
        assert_eq!(layout.object_of(PageId(3)), Some(a));
        assert_eq!(layout.object_of(PageId(4)), Some(b));
        assert_eq!(layout.object_of(PageId(7)), Some(b));
        assert_eq!(layout.object_of(PageId(8)), None);
    }

    #[test]
    fn growth_extends_an_object_without_moving_others() {
        let mut layout = DatabaseLayout::new(0);
        let a = layout.add_object(spec("A", ObjectKind::Table, 0, 2));
        let b = layout.add_object(spec("B", ObjectKind::Table, 1, 2));
        let first_new = layout.grow(a, 3);
        assert_eq!(first_new, PageId(4));
        assert_eq!(layout.pages_of(a), 5);
        assert_eq!(layout.total_pages(), 7);
        // New pages resolve back to object A.
        assert_eq!(layout.object_of(PageId(5)), Some(a));
        assert_eq!(layout.object_of(PageId(3)), Some(b));
        // Addressing slot 2 of A now reaches the grown extent.
        assert_eq!(layout.page(a, 2), PageId(4));
        assert_eq!(layout.page(a, 4), PageId(6));
        // B's pages are untouched.
        assert_eq!(layout.page(b, 0), PageId(2));
    }

    #[test]
    fn base_offset_isolates_clients() {
        let mut c1 = DatabaseLayout::new(0);
        let mut c2 = DatabaseLayout::new(1_000_000);
        let a1 = c1.add_object(spec("A", ObjectKind::Table, 0, 100));
        let a2 = c2.add_object(spec("A", ObjectKind::Table, 0, 100));
        assert_ne!(c1.page(a1, 0), c2.page(a2, 0));
        assert_eq!(c1.object_of(c2.page(a2, 0)), None);
    }

    #[test]
    fn object_kind_codes_are_stable() {
        assert_eq!(ObjectKind::Table.type_code(), 0);
        assert_eq!(ObjectKind::Index.type_code(), 1);
        assert_eq!(ObjectKind::Temporary.type_code(), 2);
        assert_eq!(ObjectKind::Table.to_string(), "table");
    }

    #[test]
    fn objects_iterator_matches_specs() {
        let mut layout = DatabaseLayout::new(0);
        layout.add_object(spec("A", ObjectKind::Table, 0, 1));
        layout.add_object(spec("B", ObjectKind::Index, 0, 1));
        let names: Vec<&str> = layout.objects().map(|(_, s)| s.name.as_str()).collect();
        assert_eq!(names, vec!["A", "B"]);
        assert_eq!(layout.object_count(), 2);
    }
}
