//! Poison-tolerant lock acquisition, shared by every crate in the
//! workspace that guards state with [`std::sync`] primitives.
//!
//! A poisoned mutex means *some* thread panicked while holding the guard.
//! For the structures we protect — cache shards, disk directories, buffer
//! frames — the invariants are re-established on every operation, so the
//! right response is almost never to cascade the panic with `.unwrap()`.
//! Instead callers choose one of two explicit policies:
//!
//! * [`recover_lock`] / [`read_lock`] / [`write_lock`] — take the guard
//!   anyway. Use on paths that only read, or that rewrite the protected
//!   state wholesale, where a half-finished update by the panicking thread
//!   cannot be observed as corruption.
//! * [`checked_lock`] — surface the poisoning as a [`LockPoisoned`] error
//!   so the caller can return a clean failure instead of panicking.
//!
//! The store crate denies bare `Mutex::lock`/`RwLock` calls via clippy's
//! `disallowed-methods`, funnelling every acquisition through this module.

use std::error::Error;
use std::fmt;
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A lock was poisoned by a panicking holder and the caller asked for that
/// to be an error rather than recovered from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockPoisoned;

impl fmt::Display for LockPoisoned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("lock poisoned by a panicked holder")
    }
}

impl Error for LockPoisoned {}

/// Acquires `mutex`, reporting a poisoned lock as [`LockPoisoned`] instead
/// of panicking.
pub fn checked_lock<T>(mutex: &Mutex<T>) -> Result<MutexGuard<'_, T>, LockPoisoned> {
    mutex.lock().map_err(|_| LockPoisoned)
}

/// Acquires `mutex`, recovering the guard even if a previous holder
/// panicked. The protected value is whatever the panicking thread left
/// behind; callers must tolerate (or overwrite) a mid-operation state.
pub fn recover_lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Read-acquires `rwlock`, recovering from poison like [`recover_lock`].
pub fn read_lock<T>(rwlock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match rwlock.read() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Write-acquires `rwlock`, recovering from poison like [`recover_lock`].
pub fn write_lock<T>(rwlock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match rwlock.write() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn poison<T: Send + 'static>(mutex: &Arc<Mutex<T>>) {
        let m = Arc::clone(mutex);
        let _ = std::thread::spawn(move || {
            let _guard = m.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
    }

    #[test]
    fn recover_lock_survives_poison() {
        let mutex = Arc::new(Mutex::new(7u32));
        poison(&mutex);
        assert!(mutex.is_poisoned());
        assert_eq!(*recover_lock(&mutex), 7);
        *recover_lock(&mutex) = 8;
        assert_eq!(*recover_lock(&mutex), 8);
    }

    #[test]
    fn checked_lock_reports_poison() {
        let mutex = Arc::new(Mutex::new(0u32));
        assert!(checked_lock(&mutex).is_ok());
        poison(&mutex);
        assert_eq!(checked_lock(&mutex).unwrap_err(), LockPoisoned);
        assert_eq!(
            LockPoisoned.to_string(),
            "lock poisoned by a panicked holder"
        );
    }

    #[test]
    fn rwlock_helpers_survive_poison() {
        let rwlock = Arc::new(RwLock::new(vec![1, 2, 3]));
        {
            let r = Arc::clone(&rwlock);
            let _ = std::thread::spawn(move || {
                let _guard = r.write().unwrap();
                panic!("poison the rwlock");
            })
            .join();
        }
        assert_eq!(read_lock(&rwlock).len(), 3);
        write_lock(&rwlock).push(4);
        assert_eq!(read_lock(&rwlock).len(), 4);
    }
}
