//! A cache statically partitioned among storage clients.
//!
//! The paper's multi-client experiment (Figure 11) compares a single shared
//! server cache managed by CLIC against the baseline of giving every client a
//! private cache of `capacity / n` pages. [`PartitionedCache`] implements the
//! baseline: it routes each request to its client's private policy instance
//! and reports the union as one cache.

use std::collections::HashMap;

use crate::policy::{AccessOutcome, BoxedPolicy, CachePolicy, PolicyFactory};
use crate::request::{ClientId, PageId, Request};

/// A cache split into fixed, per-client partitions.
///
/// Requests from a client are served only by that client's partition;
/// partitions never borrow capacity from one another.
pub struct PartitionedCache {
    name: String,
    partitions: HashMap<ClientId, BoxedPolicy>,
    total_capacity: usize,
}

impl PartitionedCache {
    /// Creates a partitioned cache with one partition per listed client, each
    /// of `per_client_capacity` pages, using `factory` to build the per-client
    /// policy.
    pub fn new(
        factory: &dyn PolicyFactory,
        clients: &[ClientId],
        per_client_capacity: usize,
    ) -> Self {
        let mut partitions = HashMap::new();
        for &c in clients {
            partitions.insert(c, factory.build(per_client_capacity));
        }
        PartitionedCache {
            name: format!("Partitioned<{}>", factory.name()),
            total_capacity: per_client_capacity * clients.len(),
            partitions,
        }
    }

    /// Creates a partitioned cache with explicit per-client capacities.
    pub fn with_capacities(factory: &dyn PolicyFactory, allocations: &[(ClientId, usize)]) -> Self {
        let mut partitions = HashMap::new();
        let mut total = 0;
        for &(c, cap) in allocations {
            partitions.insert(c, factory.build(cap));
            total += cap;
        }
        PartitionedCache {
            name: format!("Partitioned<{}>", factory.name()),
            total_capacity: total,
            partitions,
        }
    }

    /// Returns the partition serving `client`, if one was configured.
    pub fn partition(&self, client: ClientId) -> Option<&dyn CachePolicy> {
        self.partitions.get(&client).map(|p| p.as_ref())
    }
}

impl CachePolicy for PartitionedCache {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn capacity(&self) -> usize {
        self.total_capacity
    }

    fn access(&mut self, req: &Request, seq: u64) -> AccessOutcome {
        match self.partitions.get_mut(&req.client) {
            Some(policy) => policy.access(req, seq),
            // A request from an unconfigured client cannot be cached at all.
            None => AccessOutcome::bypass(),
        }
    }

    fn contains(&self, page: PageId) -> bool {
        self.partitions.values().any(|p| p.contains(page))
    }

    fn len(&self) -> usize {
        self.partitions.values().map(|p| p.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::Lru;
    use crate::request::AccessKind;
    use crate::trace::TraceBuilder;
    use crate::{simulate, HintSetId};

    fn lru_factory() -> (String, fn(usize) -> BoxedPolicy) {
        ("LRU".to_string(), |cap| {
            Box::new(Lru::new(cap)) as BoxedPolicy
        })
    }

    #[test]
    fn partitions_do_not_share_capacity() {
        let factory = lru_factory();
        let c1 = ClientId(0);
        let c2 = ClientId(1);
        let mut cache = PartitionedCache::new(&factory, &[c1, c2], 2);
        assert_eq!(cache.capacity(), 4);
        assert_eq!(cache.name(), "Partitioned<LRU>");

        // Client 1 touches 3 distinct pages: its 2-page partition must evict
        // even though client 2's partition is empty.
        for p in 0..3u64 {
            let req = Request::read(c1, PageId(p), HintSetId(0));
            cache.access(&req, p);
        }
        assert_eq!(cache.len(), 2);
        assert!(
            !cache.contains(PageId(0)),
            "page 0 was evicted from c1's partition"
        );
        assert!(cache.contains(PageId(2)));
        assert_eq!(cache.partition(c2).unwrap().len(), 0);
    }

    #[test]
    fn unknown_client_is_bypassed() {
        let factory = lru_factory();
        let mut cache = PartitionedCache::new(&factory, &[ClientId(0)], 2);
        let req = Request::read(ClientId(9), PageId(1), HintSetId(0));
        let out = cache.access(&req, 0);
        assert!(out.bypassed);
        assert!(!out.hit);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn with_capacities_allows_asymmetric_split() {
        let factory = lru_factory();
        let cache =
            PartitionedCache::with_capacities(&factory, &[(ClientId(0), 1), (ClientId(1), 3)]);
        assert_eq!(cache.capacity(), 4);
        assert_eq!(cache.partition(ClientId(1)).unwrap().capacity(), 3);
    }

    #[test]
    fn driver_integration_reports_per_client_hit_ratios() {
        let mut b = TraceBuilder::new();
        let c1 = b.add_client("a", &[("x", 1)]);
        let c2 = b.add_client("b", &[("x", 1)]);
        let h1 = b.intern_hints(c1, &[0]);
        let h2 = b.intern_hints(c2, &[0]);
        // Client 1: tight loop over 2 pages (fits in its partition).
        // Client 2: scan over 6 pages (does not fit in its partition).
        for round in 0..3u64 {
            for p in 0..2u64 {
                b.push(c1, p, AccessKind::Read, None, h1);
            }
            for p in 0..6u64 {
                b.push(c2, 100 + (p + round) % 6, AccessKind::Read, None, h2);
            }
        }
        let trace = b.build();
        let factory = lru_factory();
        let mut cache = PartitionedCache::new(&factory, &[c1, c2], 2);
        let res = simulate(&mut cache, &trace);
        assert!(res.client_read_hit_ratio(c1) > 0.5);
        assert!(res.client_read_hit_ratio(c2) < 0.2);
    }
}
