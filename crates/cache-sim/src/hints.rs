//! The hint catalog: client hint schemas, concrete hint sets, and interning.
//!
//! In the paper each storage client defines one or more *hint types*, each
//! with a categorical *value domain*. Every request carries a *hint set*: one
//! value from each of that client's hint-type domains. A generic policy such
//! as CLIC must treat hint sets as opaque categorical labels — it neither
//! knows nor exploits the semantics of the values.
//!
//! To keep traces compact, this crate *interns* hint sets: each distinct
//! `(client, values)` combination is assigned a dense [`HintSetId`], and
//! requests store only that id. The [`HintCatalog`] retains the mapping from
//! ids back to clients, hint values, and human-readable hint-type
//! descriptions so that experiments (for example the Figure 2 and Figure 3
//! reproductions) can report interpretable labels, while policies continue to
//! see only opaque ids.

use std::collections::HashMap;
use std::fmt;

use crate::request::ClientId;

/// A single categorical hint value, an index into the hint type's domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HintValue(pub u32);

impl From<u32> for HintValue {
    #[inline]
    fn from(v: u32) -> Self {
        HintValue(v)
    }
}

impl fmt::Display for HintValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Dense identifier of a distinct interned hint set.
///
/// Hint sets from different clients always receive different ids, mirroring
/// the paper's rule that hint types of different clients are distinct even if
/// the clients run the same application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HintSetId(pub u32);

impl HintSetId {
    /// Returns the raw index.
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns the raw index as a `usize`, convenient for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HintSetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Describes one hint type declared by a client: a name and the cardinality
/// of its categorical value domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintTypeDescriptor {
    /// Human-readable name of the hint type, e.g. `"DB2 object ID"`.
    pub name: String,
    /// Number of distinct values in the hint type's domain.
    pub domain_cardinality: u32,
}

impl HintTypeDescriptor {
    /// Creates a descriptor.
    pub fn new(name: impl Into<String>, domain_cardinality: u32) -> Self {
        HintTypeDescriptor {
            name: name.into(),
            domain_cardinality,
        }
    }
}

/// The hint schema of one storage client: an ordered list of hint types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintSchema {
    /// The client that declared this schema.
    pub client: ClientId,
    /// Human-readable client label, e.g. `"DB2_C60"`.
    pub client_name: String,
    /// The hint types, in the order their values appear in hint sets.
    pub types: Vec<HintTypeDescriptor>,
}

impl HintSchema {
    /// Number of hint types declared by the client.
    pub fn arity(&self) -> usize {
        self.types.len()
    }

    /// Upper bound on the number of distinct hint sets this client can emit
    /// (the product of its domain cardinalities), saturating at `u64::MAX`.
    pub fn max_hint_sets(&self) -> u64 {
        self.types.iter().fold(1u64, |acc, t| {
            acc.saturating_mul(u64::from(t.domain_cardinality.max(1)))
        })
    }
}

/// A fully resolved hint set: the owning client plus one value per hint type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResolvedHintSet {
    /// The client that issued requests with this hint set.
    pub client: ClientId,
    /// One value per hint type, in schema order.
    pub values: Vec<HintValue>,
}

impl fmt::Display for ResolvedHintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:[", self.client)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// The catalog of all clients, their hint schemas, and all interned hint sets
/// observed in a trace.
#[derive(Debug, Clone, Default)]
pub struct HintCatalog {
    schemas: Vec<HintSchema>,
    sets: Vec<ResolvedHintSet>,
    interner: HashMap<ResolvedHintSet, HintSetId>,
}

impl HintCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        HintCatalog::default()
    }

    /// Registers a client with the given human-readable name and hint types
    /// (`(name, domain_cardinality)` pairs), returning its [`ClientId`].
    pub fn add_client(
        &mut self,
        client_name: impl Into<String>,
        hint_types: &[(&str, u32)],
    ) -> ClientId {
        let client = ClientId(self.schemas.len() as u16);
        self.schemas.push(HintSchema {
            client,
            client_name: client_name.into(),
            types: hint_types
                .iter()
                .map(|(n, c)| HintTypeDescriptor::new(*n, *c))
                .collect(),
        });
        client
    }

    /// Returns the schema of a client.
    ///
    /// # Panics
    ///
    /// Panics if `client` was not registered with this catalog.
    pub fn schema(&self, client: ClientId) -> &HintSchema {
        &self.schemas[client.0 as usize]
    }

    /// All registered client schemas.
    pub fn schemas(&self) -> &[HintSchema] {
        &self.schemas
    }

    /// Number of registered clients.
    pub fn client_count(&self) -> usize {
        self.schemas.len()
    }

    /// Interns a hint set for `client` with the given values (one per hint
    /// type in schema order) and returns its dense id. Interning the same
    /// `(client, values)` combination twice returns the same id.
    ///
    /// # Panics
    ///
    /// Panics if `client` is unknown or if the number of values does not
    /// match the client's schema arity.
    pub fn intern(&mut self, client: ClientId, values: &[u32]) -> HintSetId {
        let schema = &self.schemas[client.0 as usize];
        assert_eq!(
            values.len(),
            schema.types.len(),
            "hint set arity {} does not match schema arity {} for client {}",
            values.len(),
            schema.types.len(),
            schema.client_name
        );
        let resolved = ResolvedHintSet {
            client,
            values: values.iter().copied().map(HintValue).collect(),
        };
        if let Some(&id) = self.interner.get(&resolved) {
            return id;
        }
        let id = HintSetId(self.sets.len() as u32);
        self.sets.push(resolved.clone());
        self.interner.insert(resolved, id);
        id
    }

    /// Looks up an already-interned hint set without inserting it.
    pub fn lookup(&self, client: ClientId, values: &[u32]) -> Option<HintSetId> {
        let resolved = ResolvedHintSet {
            client,
            values: values.iter().copied().map(HintValue).collect(),
        };
        self.interner.get(&resolved).copied()
    }

    /// Returns the resolved hint set for an id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by this catalog.
    pub fn resolve(&self, id: HintSetId) -> &ResolvedHintSet {
        &self.sets[id.index()]
    }

    /// Returns the client that owns the hint set `id`.
    pub fn client_of(&self, id: HintSetId) -> ClientId {
        self.sets[id.index()].client
    }

    /// Total number of distinct hint sets interned so far.
    pub fn hint_set_count(&self) -> usize {
        self.sets.len()
    }

    /// Iterates over all interned hint sets as `(id, resolved)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (HintSetId, &ResolvedHintSet)> {
        self.sets
            .iter()
            .enumerate()
            .map(|(i, s)| (HintSetId(i as u32), s))
    }

    /// Produces a human-readable label for a hint set by pairing each value
    /// with its hint-type name, e.g. `"DB2_C60{pool=1, object=17, ...}"`.
    pub fn describe(&self, id: HintSetId) -> String {
        let set = self.resolve(id);
        let schema = self.schema(set.client);
        let mut out = format!("{}{{", schema.client_name);
        for (i, (t, v)) in schema.types.iter().zip(set.values.iter()).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}={}", t.name, v));
        }
        out.push('}');
        out
    }

    /// Merges another catalog into this one, returning mappings from the
    /// other catalog's client ids and hint-set ids to the ids they received
    /// in `self`. Used when interleaving traces from multiple clients.
    pub fn merge(&mut self, other: &HintCatalog) -> (Vec<ClientId>, Vec<HintSetId>) {
        let mut client_map = Vec::with_capacity(other.schemas.len());
        for schema in &other.schemas {
            let types: Vec<(&str, u32)> = schema
                .types
                .iter()
                .map(|t| (t.name.as_str(), t.domain_cardinality))
                .collect();
            let new_client = self.add_client(schema.client_name.clone(), &types);
            client_map.push(new_client);
        }
        let mut set_map = Vec::with_capacity(other.sets.len());
        for set in &other.sets {
            let new_client = client_map[set.client.0 as usize];
            let values: Vec<u32> = set.values.iter().map(|v| v.0).collect();
            set_map.push(self.intern(new_client, &values));
        }
        (client_map, set_map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_catalog() -> (HintCatalog, ClientId) {
        let mut cat = HintCatalog::new();
        let c = cat.add_client(
            "DB2_TEST",
            &[
                ("pool ID", 2),
                ("object ID", 21),
                ("object type ID", 6),
                ("request type", 5),
                ("buffer priority", 4),
            ],
        );
        (cat, c)
    }

    #[test]
    fn intern_is_idempotent() {
        let (mut cat, c) = sample_catalog();
        let a = cat.intern(c, &[0, 3, 1, 2, 0]);
        let b = cat.intern(c, &[0, 3, 1, 2, 0]);
        assert_eq!(a, b);
        assert_eq!(cat.hint_set_count(), 1);
        let d = cat.intern(c, &[0, 3, 1, 2, 1]);
        assert_ne!(a, d);
        assert_eq!(cat.hint_set_count(), 2);
    }

    #[test]
    fn lookup_without_insert() {
        let (mut cat, c) = sample_catalog();
        assert_eq!(cat.lookup(c, &[0, 0, 0, 0, 0]), None);
        let id = cat.intern(c, &[0, 0, 0, 0, 0]);
        assert_eq!(cat.lookup(c, &[0, 0, 0, 0, 0]), Some(id));
    }

    #[test]
    fn resolve_and_describe() {
        let (mut cat, c) = sample_catalog();
        let id = cat.intern(c, &[1, 7, 2, 3, 0]);
        let set = cat.resolve(id);
        assert_eq!(set.client, c);
        assert_eq!(set.values[1], HintValue(7));
        let label = cat.describe(id);
        assert!(label.contains("object ID=7"));
        assert!(label.contains("DB2_TEST"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn intern_rejects_wrong_arity() {
        let (mut cat, c) = sample_catalog();
        cat.intern(c, &[1, 2]);
    }

    #[test]
    fn distinct_clients_get_distinct_ids() {
        let mut cat = HintCatalog::new();
        let c1 = cat.add_client("A", &[("t", 4)]);
        let c2 = cat.add_client("B", &[("t", 4)]);
        let a = cat.intern(c1, &[1]);
        let b = cat.intern(c2, &[1]);
        assert_ne!(
            a, b,
            "same values from different clients must stay distinct"
        );
        assert_eq!(cat.client_of(a), c1);
        assert_eq!(cat.client_of(b), c2);
    }

    #[test]
    fn max_hint_sets_is_domain_product() {
        let (cat, c) = sample_catalog();
        assert_eq!(cat.schema(c).max_hint_sets(), 2 * 21 * 6 * 5 * 4);
        assert_eq!(cat.schema(c).arity(), 5);
    }

    #[test]
    fn merge_remaps_clients_and_sets() {
        let (mut a, ca) = sample_catalog();
        let ida = a.intern(ca, &[0, 1, 2, 3, 0]);

        let mut b = HintCatalog::new();
        let cb = b.add_client("MYSQL_TEST", &[("thread", 5), ("req", 3)]);
        let idb0 = b.intern(cb, &[0, 1]);
        let idb1 = b.intern(cb, &[4, 2]);

        let (client_map, set_map) = a.merge(&b);
        assert_eq!(client_map.len(), 1);
        assert_eq!(set_map.len(), 2);
        // Existing hint set untouched.
        assert_eq!(a.resolve(ida).client, ca);
        // Merged sets resolve under the new client id.
        let new_client = client_map[0];
        assert_ne!(new_client, ca);
        assert_eq!(a.resolve(set_map[idb0.index()]).client, new_client);
        assert_eq!(a.resolve(set_map[idb1.index()]).values[0], HintValue(4));
        assert_eq!(a.hint_set_count(), 3);
    }

    #[test]
    fn iter_yields_all_sets_in_id_order() {
        let (mut cat, c) = sample_catalog();
        let i0 = cat.intern(c, &[0, 0, 0, 0, 0]);
        let i1 = cat.intern(c, &[1, 1, 1, 1, 1]);
        let ids: Vec<HintSetId> = cat.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![i0, i1]);
    }
}
