//! The block I/O request model shared by all crates in the workspace.
//!
//! A storage server receives a sequence of [`Request`]s. Each request names a
//! [`PageId`] (a block address), is issued by a [`ClientId`] (a storage client
//! such as a DBMS instance), is either a read or a write ([`AccessKind`]), and
//! carries an opaque hint-set identifier ([`crate::HintSetId`]).
//!
//! Write requests may additionally carry a typed [`WriteHint`]. The typed
//! write hint exists so that the *ad hoc* TQ baseline (which hard-codes
//! responses to write hints) can be implemented; generic policies such as
//! CLIC only look at the opaque hint-set identifier, exactly as in the paper.

use std::fmt;

use crate::hints::HintSetId;

/// Identifier of a page (block) stored on the storage server.
///
/// Pages are the unit of caching. Page identifiers are global across clients:
/// two clients never share a page (each client's database occupies a disjoint
/// page-id range), which mirrors the paper's multi-client setup where every
/// DB2 instance manages its own database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u64);

impl PageId {
    /// Returns the raw page number.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl From<u64> for PageId {
    #[inline]
    fn from(v: u64) -> Self {
        PageId(v)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a storage client application (for example one DBMS instance).
///
/// The paper treats hint types of different clients as distinct even when the
/// clients are instances of the same application; keying hint sets by
/// `ClientId` in [`crate::HintCatalog`] enforces exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(pub u16);

impl ClientId {
    /// Returns the raw client number.
    #[inline]
    pub fn as_u16(self) -> u16 {
        self.0
    }
}

impl From<u16> for ClientId {
    #[inline]
    fn from(v: u16) -> Self {
        ClientId(v)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Whether a request reads or writes the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The client reads the page from the storage server.
    Read,
    /// The client writes the page back to the storage server.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Read`].
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// Returns `true` for [`AccessKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// The typed write hint attached to write requests, as defined by
/// Li et al. (FAST '05) and used by the TQ baseline policy.
///
/// * A *replacement* write is performed to clean a dirty page so that it can
///   be evicted from the client's buffer cache; the page is therefore likely
///   to leave the first tier soon and may be read again from the server.
/// * A *recovery* write is performed only to bound recovery time (for example
///   during a checkpoint); the page typically stays hot in the first tier and
///   will not be read from the server soon.
/// * A *synchronous* write is a replacement write issued directly by the
///   thread that needs a free buffer (rather than by the asynchronous page
///   cleaner); it signals buffer-pool pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteHint {
    /// Write performed to enable eviction from the first-tier cache.
    Replacement,
    /// Write performed for recoverability (checkpoint / log-driven).
    Recovery,
    /// Replacement write performed synchronously by the requesting thread.
    Synchronous,
}

impl fmt::Display for WriteHint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteHint::Replacement => write!(f, "replacement"),
            WriteHint::Recovery => write!(f, "recovery"),
            WriteHint::Synchronous => write!(f, "synchronous"),
        }
    }
}

/// A single block I/O request observed by the storage server.
///
/// Requests are deliberately small and `Copy` so that traces of millions of
/// requests stay compact and cheap to iterate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// The storage client that issued the request.
    pub client: ClientId,
    /// The page being read or written.
    pub page: PageId,
    /// Whether the request is a read or a write.
    pub kind: AccessKind,
    /// The typed write hint, present only for write requests and only when
    /// the client exposes write hints (used by the TQ baseline).
    pub write_hint: Option<WriteHint>,
    /// `true` if this read was issued by the client's prefetcher rather than
    /// on demand. Prefetch reads still count as reads for hit-ratio purposes.
    pub prefetch: bool,
    /// The opaque identifier of the hint set attached to this request.
    pub hint: HintSetId,
}

impl Request {
    /// Creates a read request.
    pub fn read(client: ClientId, page: PageId, hint: HintSetId) -> Self {
        Request {
            client,
            page,
            kind: AccessKind::Read,
            write_hint: None,
            prefetch: false,
            hint,
        }
    }

    /// Creates a prefetch read request.
    pub fn prefetch(client: ClientId, page: PageId, hint: HintSetId) -> Self {
        Request {
            prefetch: true,
            ..Request::read(client, page, hint)
        }
    }

    /// Creates a write request carrying the given typed write hint.
    pub fn write(
        client: ClientId,
        page: PageId,
        write_hint: Option<WriteHint>,
        hint: HintSetId,
    ) -> Self {
        Request {
            client,
            page,
            kind: AccessKind::Write,
            write_hint,
            prefetch: false,
            hint,
        }
    }

    /// Returns `true` if this request is a read.
    #[inline]
    pub fn is_read(&self) -> bool {
        self.kind.is_read()
    }

    /// Returns `true` if this request is a write.
    #[inline]
    pub fn is_write(&self) -> bool {
        self.kind.is_write()
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} (hint {})",
            self.client, self.kind, self.page, self.hint
        )?;
        if let Some(wh) = self.write_hint {
            write!(f, " [{wh}]")?;
        }
        if self.prefetch {
            write!(f, " [prefetch]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_roundtrip() {
        let p = PageId::from(42u64);
        assert_eq!(p.as_u64(), 42);
        assert_eq!(p.to_string(), "p42");
    }

    #[test]
    fn client_id_roundtrip() {
        let c = ClientId::from(3u16);
        assert_eq!(c.as_u16(), 3);
        assert_eq!(c.to_string(), "c3");
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Write.is_read());
    }

    #[test]
    fn request_constructors() {
        let hint = HintSetId(7);
        let r = Request::read(ClientId(0), PageId(1), hint);
        assert!(r.is_read());
        assert!(!r.prefetch);
        assert_eq!(r.write_hint, None);

        let p = Request::prefetch(ClientId(0), PageId(1), hint);
        assert!(p.is_read());
        assert!(p.prefetch);

        let w = Request::write(ClientId(0), PageId(1), Some(WriteHint::Replacement), hint);
        assert!(w.is_write());
        assert_eq!(w.write_hint, Some(WriteHint::Replacement));
    }

    #[test]
    fn display_formats_are_informative() {
        let hint = HintSetId(1);
        let w = Request::write(ClientId(2), PageId(9), Some(WriteHint::Recovery), hint);
        let s = w.to_string();
        assert!(s.contains("c2"));
        assert!(s.contains("p9"));
        assert!(s.contains("write"));
        assert!(s.contains("recovery"));
    }

    #[test]
    fn request_is_small() {
        // Traces hold millions of requests; keep the struct compact.
        assert!(std::mem::size_of::<Request>() <= 24);
    }
}
