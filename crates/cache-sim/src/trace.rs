//! Trace container: an ordered sequence of requests plus the hint catalog.

use std::collections::HashSet;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::hints::{HintCatalog, HintSetId};
use crate::request::{AccessKind, ClientId, PageId, Request, WriteHint};

/// An I/O request trace as observed by the storage server: an ordered
/// sequence of [`Request`]s plus the [`HintCatalog`] describing all clients
/// and hint sets that appear in it.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Human-readable trace name, e.g. `"DB2_C60"`.
    pub name: String,
    /// The requests in arrival order.
    pub requests: Vec<Request>,
    /// Catalog of clients and interned hint sets.
    pub catalog: HintCatalog,
}

impl Trace {
    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` if the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Iterates over `(sequence_number, request)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Request)> {
        self.requests.iter().enumerate().map(|(i, r)| (i as u64, r))
    }

    /// Computes summary statistics over the trace (the columns of the
    /// paper's Figure 5 table).
    pub fn summary(&self) -> TraceSummary {
        let mut pages = HashSet::new();
        let mut hint_sets = HashSet::new();
        let mut reads = 0u64;
        let mut writes = 0u64;
        for r in &self.requests {
            pages.insert(r.page);
            hint_sets.insert(r.hint);
            match r.kind {
                AccessKind::Read => reads += 1,
                AccessKind::Write => writes += 1,
            }
        }
        TraceSummary {
            name: self.name.clone(),
            requests: self.requests.len() as u64,
            reads,
            writes,
            distinct_pages: pages.len() as u64,
            distinct_hint_sets: hint_sets.len() as u64,
            clients: self.catalog.client_count() as u64,
        }
    }

    /// Saves the trace to a compact binary file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        self.write_to(&mut w)
    }

    /// Loads a trace previously written with [`Trace::save`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be read or is malformed.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Trace> {
        let file = std::fs::File::open(path)?;
        let mut r = std::io::BufReader::new(file);
        Self::read_from(&mut r)
    }

    /// Serializes the trace to any writer. The format is a small private
    /// binary encoding; use [`Trace::read_from`] to decode it.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(b"CLICTRC1")?;
        write_str(w, &self.name)?;
        // Catalog: clients.
        write_u32(w, self.catalog.client_count() as u32)?;
        for schema in self.catalog.schemas() {
            write_str(w, &schema.client_name)?;
            write_u32(w, schema.types.len() as u32)?;
            for t in &schema.types {
                write_str(w, &t.name)?;
                write_u32(w, t.domain_cardinality)?;
            }
        }
        // Catalog: hint sets.
        write_u32(w, self.catalog.hint_set_count() as u32)?;
        for (_, set) in self.catalog.iter() {
            write_u32(w, u32::from(set.client.0))?;
            write_u32(w, set.values.len() as u32)?;
            for v in &set.values {
                write_u32(w, v.0)?;
            }
        }
        // Requests.
        write_u64(w, self.requests.len() as u64)?;
        for r in &self.requests {
            write_u64(w, r.page.0)?;
            write_u32(w, u32::from(r.client.0))?;
            write_u32(w, r.hint.0)?;
            let kind: u8 = match (r.kind, r.write_hint, r.prefetch) {
                (AccessKind::Read, _, false) => 0,
                (AccessKind::Read, _, true) => 1,
                (AccessKind::Write, None, _) => 2,
                (AccessKind::Write, Some(WriteHint::Replacement), _) => 3,
                (AccessKind::Write, Some(WriteHint::Recovery), _) => 4,
                (AccessKind::Write, Some(WriteHint::Synchronous), _) => 5,
            };
            w.write_all(&[kind])?;
        }
        Ok(())
    }

    /// Deserializes a trace written by [`Trace::write_to`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the stream is not a valid trace encoding.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Trace> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != b"CLICTRC1" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a CLIC trace file (bad magic)",
            ));
        }
        let name = read_str(r)?;
        let mut catalog = HintCatalog::new();
        let client_count = read_u32(r)? as usize;
        for _ in 0..client_count {
            let cname = read_str(r)?;
            let ntypes = read_u32(r)? as usize;
            let mut types = Vec::with_capacity(ntypes);
            for _ in 0..ntypes {
                let tname = read_str(r)?;
                let card = read_u32(r)?;
                types.push((tname, card));
            }
            let refs: Vec<(&str, u32)> = types.iter().map(|(n, c)| (n.as_str(), *c)).collect();
            catalog.add_client(cname, &refs);
        }
        let set_count = read_u32(r)? as usize;
        for i in 0..set_count {
            let client = ClientId(read_u32(r)? as u16);
            let nvals = read_u32(r)? as usize;
            let mut values = Vec::with_capacity(nvals);
            for _ in 0..nvals {
                values.push(read_u32(r)?);
            }
            let id = catalog.intern(client, &values);
            if id.index() != i {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "duplicate hint set in trace file",
                ));
            }
        }
        let nreq = read_u64(r)? as usize;
        let mut requests = Vec::with_capacity(nreq);
        for _ in 0..nreq {
            let page = PageId(read_u64(r)?);
            let client = ClientId(read_u32(r)? as u16);
            let hint = HintSetId(read_u32(r)?);
            let mut kind = [0u8; 1];
            r.read_exact(&mut kind)?;
            let req = match kind[0] {
                0 => Request::read(client, page, hint),
                1 => Request::prefetch(client, page, hint),
                2 => Request::write(client, page, None, hint),
                3 => Request::write(client, page, Some(WriteHint::Replacement), hint),
                4 => Request::write(client, page, Some(WriteHint::Recovery), hint),
                5 => Request::write(client, page, Some(WriteHint::Synchronous), hint),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("invalid request kind byte {other}"),
                    ))
                }
            };
            requests.push(req);
        }
        Ok(Trace {
            name,
            requests,
            catalog,
        })
    }
}

/// Summary statistics of a trace (one row of the paper's Figure 5 table).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Trace name.
    pub name: String,
    /// Total number of requests.
    pub requests: u64,
    /// Number of read requests.
    pub reads: u64,
    /// Number of write requests.
    pub writes: u64,
    /// Number of distinct pages referenced.
    pub distinct_pages: u64,
    /// Number of distinct hint sets observed.
    pub distinct_hint_sets: u64,
    /// Number of storage clients contributing requests.
    pub clients: u64,
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} requests ({} reads / {} writes), {} pages, {} hint sets, {} client(s)",
            self.name,
            self.requests,
            self.reads,
            self.writes,
            self.distinct_pages,
            self.distinct_hint_sets,
            self.clients
        )
    }
}

/// Incremental builder for [`Trace`]s.
///
/// Wraps a [`HintCatalog`] and a request vector so that trace generators can
/// register clients, intern hint sets, and append requests in one place.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    name: String,
    catalog: HintCatalog,
    requests: Vec<Request>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Sets the trace name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Registers a client and its hint schema; see [`HintCatalog::add_client`].
    pub fn add_client(&mut self, name: impl Into<String>, hint_types: &[(&str, u32)]) -> ClientId {
        self.catalog.add_client(name, hint_types)
    }

    /// Interns a hint set for a registered client; see [`HintCatalog::intern`].
    pub fn intern_hints(&mut self, client: ClientId, values: &[u32]) -> HintSetId {
        self.catalog.intern(client, values)
    }

    /// Appends a request built from raw parts.
    pub fn push(
        &mut self,
        client: ClientId,
        page: u64,
        kind: AccessKind,
        write_hint: Option<WriteHint>,
        hint: HintSetId,
    ) {
        let req = match kind {
            AccessKind::Read => Request::read(client, PageId(page), hint),
            AccessKind::Write => Request::write(client, PageId(page), write_hint, hint),
        };
        self.requests.push(req);
    }

    /// Appends an already-constructed request.
    pub fn push_request(&mut self, req: Request) {
        self.requests.push(req);
    }

    /// Number of requests appended so far.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` if no requests have been appended.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Read-only access to the catalog being built.
    pub fn catalog(&self) -> &HintCatalog {
        &self.catalog
    }

    /// Finishes the builder and returns the trace.
    pub fn build(self) -> Trace {
        Trace {
            name: self.name,
            requests: self.requests,
            catalog: self.catalog,
        }
    }
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_str<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_u32(r)? as usize;
    if len > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unreasonably long string in trace file",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new().with_name("unit");
        let c = b.add_client("DB2", &[("pool", 2), ("req type", 5)]);
        let h_read = b.intern_hints(c, &[0, 0]);
        let h_repl = b.intern_hints(c, &[0, 2]);
        b.push(c, 1, AccessKind::Read, None, h_read);
        b.push(
            c,
            2,
            AccessKind::Write,
            Some(WriteHint::Replacement),
            h_repl,
        );
        b.push(c, 1, AccessKind::Read, None, h_read);
        b.push(c, 3, AccessKind::Write, Some(WriteHint::Recovery), h_repl);
        b.push_request(Request::prefetch(c, PageId(4), h_read));
        b.build()
    }

    #[test]
    fn summary_counts_distincts() {
        let t = sample_trace();
        let s = t.summary();
        assert_eq!(s.requests, 5);
        assert_eq!(s.reads, 3);
        assert_eq!(s.writes, 2);
        assert_eq!(s.distinct_pages, 4);
        assert_eq!(s.distinct_hint_sets, 2);
        assert_eq!(s.clients, 1);
        assert!(s.to_string().contains("unit"));
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = Trace::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.name, t.name);
        assert_eq!(back.requests, t.requests);
        assert_eq!(back.catalog.hint_set_count(), t.catalog.hint_set_count());
        assert_eq!(back.catalog.client_count(), t.catalog.client_count());
        assert_eq!(
            back.catalog.describe(HintSetId(0)),
            t.catalog.describe(HintSetId(0))
        );
    }

    #[test]
    fn read_from_rejects_bad_magic() {
        let err = Trace::read_from(&mut &b"NOTATRACE......."[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn save_and_load_via_tempfile() {
        let t = sample_trace();
        let dir = std::env::temp_dir().join(format!("clic-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.bin");
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(back.requests.len(), t.requests.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn iter_is_sequenced() {
        let t = sample_trace();
        let seqs: Vec<u64> = t.iter().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }
}
