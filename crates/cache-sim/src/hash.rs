//! A fast, non-cryptographic hasher for hot-path bookkeeping maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is
//! HashDoS-resistant but costs tens of cycles per lookup — measurable when a
//! cache policy performs several map operations per simulated request. The
//! keys hashed on the simulator's hot paths ([`crate::PageId`],
//! [`crate::HintSetId`]) are small integers produced by the workload
//! generators, not attacker-controlled strings, so the fleet-wide standard
//! multiply-rotate FxHash construction (as used by rustc and Firefox) is both
//! safe and several times faster here.
//!
//! Use [`FastHashMap`] wherever a map sits on a per-request path and its keys
//! are trusted; keep the std default for anything fed by external input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier (64-bit golden-ratio-derived odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming state: rotate, xor the next word in, multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (word, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(word.try_into().unwrap()));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (word, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_le_bytes(word.try_into().unwrap())));
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Routes a page to one of `partitions` disjoint partitions: a Fibonacci
/// multiplicative hash keeping the high bits (page ids are often sequential
/// per client, so the low bits are biased).
///
/// This is the **one** page-routing rule shared by every page-partitioned
/// deployment in the workspace — `clic-server`'s `ShardedClic` shard router
/// and the driver's [`crate::simulate_partitioned`] /
/// [`crate::simulate_partitioned_parallel`] replays — so the offline
/// partitioned replay models exactly the placement a sharded server
/// produces.
///
/// # Panics
///
/// Panics (divide by zero) if `partitions` is zero.
#[inline]
pub fn page_partition(page: crate::PageId, partitions: usize) -> usize {
    let hashed = page.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((hashed >> 32) as usize) % partitions
}

/// `BuildHasher` for [`FxHasher`]; plug into any `HashMap`/`HashSet`.
pub type FastBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`] — for hot paths over trusted keys.
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`] — for hot paths over trusted keys.
pub type FastHashSet<K> = HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HintSetId, PageId};

    #[test]
    fn maps_behave_like_std_maps() {
        let mut m: FastHashMap<PageId, u64> = FastHashMap::default();
        for p in 0..1000u64 {
            m.insert(PageId(p), p * 2);
        }
        assert_eq!(m.len(), 1000);
        for p in 0..1000u64 {
            assert_eq!(m.get(&PageId(p)), Some(&(p * 2)));
        }
        assert_eq!(m.remove(&PageId(7)), Some(14));
        assert_eq!(m.get(&PageId(7)), None);
    }

    #[test]
    fn hashes_are_deterministic_and_spread() {
        let build = FastBuildHasher::default();
        let hash = |h: HintSetId| {
            use std::hash::BuildHasher;
            build.hash_one(h)
        };
        assert_eq!(hash(HintSetId(3)), hash(HintSetId(3)));
        // Sequential small keys must not collide in the low bits (they feed
        // power-of-two-sized tables).
        let mut low: FastHashSet<u64> = FastHashSet::default();
        for i in 0..256u32 {
            low.insert(hash(HintSetId(i)) & 0xFFFF);
        }
        assert!(low.len() > 250, "low-bit collisions: {}", 256 - low.len());
    }
}
