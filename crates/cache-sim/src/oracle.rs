//! Future-knowledge oracle used by the offline OPT (Belady MIN) policy.
//!
//! The paper's OPT baseline "replaces the cached page that will not be read
//! for the longest time". Deciding that requires knowing, for every position
//! in the trace, when the requested page will next be *read*. The
//! [`NextUseOracle`] precomputes that information with a single backward scan
//! over the trace.

use std::collections::HashMap;

use crate::request::AccessKind;
use crate::trace::Trace;

/// Sentinel returned when a page is never read again after a given position.
pub const NEVER: u64 = u64::MAX;

/// Precomputed next-read positions for every request in a trace.
///
/// `next_read(seq)` answers: "after the request at position `seq`, at which
/// trace position will the same page next be read?" (or [`NEVER`]).
#[derive(Debug, Clone)]
pub struct NextUseOracle {
    next_read: Vec<u64>,
}

impl NextUseOracle {
    /// Builds the oracle from a trace with one backward pass.
    pub fn build(trace: &Trace) -> Self {
        let mut next_seen: HashMap<u64, u64> = HashMap::new();
        let n = trace.requests.len();
        let mut next_read = vec![NEVER; n];
        for i in (0..n).rev() {
            let req = &trace.requests[i];
            let key = req.page.0;
            next_read[i] = next_seen.get(&key).copied().unwrap_or(NEVER);
            // Only *read* requests count as re-uses that a cache could serve;
            // a future write does not benefit from having the page cached.
            if req.kind == AccessKind::Read {
                next_seen.insert(key, i as u64);
            }
        }
        NextUseOracle { next_read }
    }

    /// Position of the next read of the page requested at `seq`, or [`NEVER`].
    ///
    /// # Panics
    ///
    /// Panics if `seq` is beyond the end of the trace the oracle was built on.
    #[inline]
    pub fn next_read(&self, seq: u64) -> u64 {
        self.next_read[seq as usize]
    }

    /// Number of trace positions covered by the oracle.
    pub fn len(&self) -> usize {
        self.next_read.len()
    }

    /// Returns `true` if the oracle covers an empty trace.
    pub fn is_empty(&self) -> bool {
        self.next_read.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::WriteHint;
    use crate::trace::TraceBuilder;
    use crate::AccessKind;

    fn trace_of(accesses: &[(u64, AccessKind)]) -> Trace {
        let mut b = TraceBuilder::new();
        let c = b.add_client("t", &[("x", 1)]);
        let h = b.intern_hints(c, &[0]);
        for &(page, kind) in accesses {
            let wh = if kind == AccessKind::Write {
                Some(WriteHint::Replacement)
            } else {
                None
            };
            b.push(c, page, kind, wh, h);
        }
        b.build()
    }

    #[test]
    fn next_read_skips_writes() {
        use AccessKind::{Read, Write};
        // positions:        0       1        2       3        4
        let t = trace_of(&[(1, Read), (1, Write), (2, Read), (1, Read), (2, Write)]);
        let o = NextUseOracle::build(&t);
        // After position 0 (read p1) the next *read* of p1 is at 3 (the write
        // at 1 does not count).
        assert_eq!(o.next_read(0), 3);
        // After the write at 1, next read of p1 is 3.
        assert_eq!(o.next_read(1), 3);
        // p2 read at 2 is never read again (only written at 4).
        assert_eq!(o.next_read(2), NEVER);
        assert_eq!(o.next_read(3), NEVER);
        assert_eq!(o.next_read(4), NEVER);
        assert_eq!(o.len(), 5);
    }

    #[test]
    fn empty_trace() {
        let t = trace_of(&[]);
        let o = NextUseOracle::build(&t);
        assert!(o.is_empty());
    }

    #[test]
    fn repeated_reads_chain() {
        use AccessKind::Read;
        let t = trace_of(&[(7, Read), (7, Read), (7, Read)]);
        let o = NextUseOracle::build(&t);
        assert_eq!(o.next_read(0), 1);
        assert_eq!(o.next_read(1), 2);
        assert_eq!(o.next_read(2), NEVER);
    }
}
