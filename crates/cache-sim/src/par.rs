//! A small, dependency-free scoped thread pool with a deterministic ordered
//! `par_map` — the execution substrate of the parallel replay engine.
//!
//! The build environment is offline, so instead of `rayon` this module
//! provides exactly the surface the workspace needs (in the same spirit as
//! the vendored `rand`/`proptest`/`criterion` stubs): fan a slice of
//! independent work items across scoped worker threads and return the results
//! **in input order**, bit-identical to a serial loop. Work distribution uses
//! an atomic cursor (work stealing at item granularity), which only affects
//! *which thread* computes an item — never the result or its position — so
//! callers such as [`crate::driver::compare_policies`] can guarantee that the
//! parallel path is indistinguishable from the serial one except in
//! wall-clock time.
//!
//! Thread-count selection: [`default_jobs`] honours the `CLIC_JOBS`
//! environment variable when set (any positive integer) and otherwise uses
//! [`std::thread::available_parallelism`]. A pool of one job never spawns a
//! thread at all: [`ThreadPool::par_map`] degenerates to the plain serial
//! loop, so `--jobs 1` runs carry zero threading overhead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Environment variable overriding the default worker-thread count.
pub const JOBS_ENV: &str = "CLIC_JOBS";

/// The default number of worker threads: `CLIC_JOBS` if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`] (1 if unknown).
pub fn default_jobs() -> usize {
    if let Ok(value) = std::env::var(JOBS_ENV) {
        if let Ok(jobs) = value.trim().parse::<usize>() {
            if jobs > 0 {
                return jobs;
            }
        }
    }
    thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// A scoped thread pool of a fixed number of jobs.
///
/// The pool is a *policy*, not a set of live threads: each
/// [`ThreadPool::par_map`] call spawns its scoped workers and joins them
/// before returning (work items here are whole simulations, so per-call
/// spawn cost is noise). Cloning or sharing is therefore trivial, and a pool
/// can be used from any thread.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    jobs: usize,
}

impl ThreadPool {
    /// A pool running at most `jobs` work items concurrently (clamped to at
    /// least 1).
    pub fn new(jobs: usize) -> Self {
        ThreadPool { jobs: jobs.max(1) }
    }

    /// A pool sized by [`default_jobs`] (`CLIC_JOBS` or the machine's
    /// available parallelism).
    pub fn with_default_jobs() -> Self {
        ThreadPool::new(default_jobs())
    }

    /// The configured number of jobs.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items` on up to [`ThreadPool::jobs`] worker threads and
    /// returns the results **in input order**.
    ///
    /// `f` receives the item's index and a reference to the item. Results are
    /// deterministic and identical to `items.iter().enumerate().map(..)`
    /// provided `f` itself is a pure function of its arguments; the scheduling
    /// of items onto threads is the only nondeterministic part and is never
    /// observable in the return value. With one job (or at most one item) no
    /// thread is spawned and the serial loop runs inline.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the panicking worker is joined first).
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.jobs <= 1 || items.len() <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let workers = self.jobs.min(items.len());
        let cursor = AtomicUsize::new(0);
        // Each worker collects (index, result) pairs; the results are
        // scattered back into input order after the scope joins.
        let mut collected: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let f = &f;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let index = cursor.fetch_add(1, Ordering::Relaxed);
                            if index >= items.len() {
                                break;
                            }
                            local.push((index, f(index, &items[index])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("par_map worker panicked"))
                .collect()
        });
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (index, result) in collected.drain(..).flatten() {
            debug_assert!(slots[index].is_none(), "item {index} computed twice");
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every item is computed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let pool = ThreadPool::new(jobs);
            let got = pool.par_map(&items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(got, expected, "jobs = {jobs}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_singleton_inputs() {
        let pool = ThreadPool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert_eq!(pool.par_map(&empty, |_, &x| x), Vec::<u32>::new());
        assert_eq!(pool.par_map(&[7u32], |i, &x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn jobs_are_clamped_to_at_least_one() {
        assert_eq!(ThreadPool::new(0).jobs(), 1);
        assert_eq!(ThreadPool::new(5).jobs(), 5);
        assert!(ThreadPool::with_default_jobs().jobs() >= 1);
    }

    #[test]
    fn parallel_results_match_serial_results_exactly() {
        // A mildly stateful computation (per-item pseudo-random walk) to make
        // ordering bugs visible.
        let items: Vec<u64> = (0..64).map(|i| i * 2_654_435_761).collect();
        let work = |_: usize, &seed: &u64| -> u64 {
            let mut state = seed | 1;
            for _ in 0..1_000 {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
            }
            state
        };
        let serial = ThreadPool::new(1).par_map(&items, work);
        let parallel = ThreadPool::new(4).par_map(&items, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "par_map worker panicked")]
    fn worker_panics_propagate() {
        let pool = ThreadPool::new(2);
        let items: Vec<u32> = (0..8).collect();
        pool.par_map(&items, |_, &x| {
            if x == 5 {
                panic!("boom");
            }
            x
        });
    }
}
