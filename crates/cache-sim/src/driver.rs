//! The simulation driver: feeds a trace through a policy and collects stats.

use std::collections::BTreeMap;

use crate::policy::{AccessOutcome, CachePolicy, PolicyFactory};
use crate::request::{ClientId, Request};
use crate::stats::CacheStats;
use crate::trace::Trace;

/// The result of running one policy over one trace.
#[derive(Debug, Clone, Default)]
pub struct SimulationResult {
    /// Name of the policy that was simulated.
    pub policy: String,
    /// Cache capacity in pages.
    pub capacity: usize,
    /// Aggregate statistics over the whole trace.
    pub stats: CacheStats,
    /// Statistics broken down by the client that issued each request
    /// (used by the paper's multi-client experiment, Figure 11).
    pub per_client: BTreeMap<ClientId, CacheStats>,
}

impl SimulationResult {
    /// Read hit ratio over the whole trace.
    pub fn read_hit_ratio(&self) -> f64 {
        self.stats.read_hit_ratio()
    }

    /// Read hit ratio restricted to requests from one client, or 0.0 if that
    /// client issued no requests.
    pub fn client_read_hit_ratio(&self, client: ClientId) -> f64 {
        self.per_client
            .get(&client)
            .map(|s| s.read_hit_ratio())
            .unwrap_or(0.0)
    }

    /// Merges another result's counters into this one: aggregate statistics
    /// add up and per-client breakdowns combine client by client.
    ///
    /// This is the aggregation path for deployments that observe one request
    /// stream through several accountants — for example a sharded server
    /// summing its per-shard statistics, or a load harness combining the
    /// results of concurrent client threads. The policy name and capacity of
    /// `self` are kept.
    pub fn merge_from(&mut self, other: &SimulationResult) {
        self.stats += other.stats;
        for (client, stats) in &other.per_client {
            *self.per_client.entry(*client).or_default() += *stats;
        }
    }
}

/// Records one request's [`AccessOutcome`] into aggregate and per-client
/// statistics — the single hit/miss accounting rule shared by [`simulate`]
/// and live servers, so every driver measures policies identically.
pub fn record_outcome(
    stats: &mut CacheStats,
    per_client: &mut BTreeMap<ClientId, CacheStats>,
    req: &Request,
    outcome: AccessOutcome,
) {
    let client_stats = per_client.entry(req.client).or_default();
    if req.is_read() {
        stats.record_read(outcome.hit);
        client_stats.record_read(outcome.hit);
    } else {
        stats.record_write(outcome.hit);
        client_stats.record_write(outcome.hit);
    }
    stats.evictions += u64::from(outcome.evicted);
    client_stats.evictions += u64::from(outcome.evicted);
    if outcome.bypassed {
        stats.bypasses += 1;
        client_stats.bypasses += 1;
    }
}

/// One point of a cache-size sweep: the capacity and the simulation result.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Cache capacity in pages for this point.
    pub capacity: usize,
    /// The simulation result at this capacity.
    pub result: SimulationResult,
}

/// Runs `policy` over `trace` and returns aggregate and per-client statistics.
///
/// The driver — not the policy — is responsible for classifying hits and
/// misses, so every policy is measured identically: a request is a hit iff
/// the page was cached when the request arrived.
pub fn simulate(policy: &mut dyn CachePolicy, trace: &Trace) -> SimulationResult {
    simulate_with_callback(policy, trace, |_, _, _| {})
}

/// Number of requests replayed per [`CachePolicy::access_batch`] call by the
/// driver. Large enough to amortize per-batch dispatch and accounting setup,
/// small enough to keep the outcome scratch buffer in cache.
const REPLAY_CHUNK: usize = 256;

/// Like [`simulate`], but invokes `callback(seq, request, hit)` after every
/// request. Used by experiments that need time-resolved output (for example
/// warm-up exclusion or convergence plots).
///
/// The trace is replayed in chunks through [`CachePolicy::access_batch`]
/// (whose contract guarantees behaviour identical to per-request `access`
/// calls); the callback still observes every request, in trace order.
pub fn simulate_with_callback<F>(
    policy: &mut dyn CachePolicy,
    trace: &Trace,
    mut callback: F,
) -> SimulationResult
where
    F: FnMut(u64, &crate::Request, bool),
{
    let mut stats = CacheStats::new();
    let mut per_client: BTreeMap<ClientId, CacheStats> = BTreeMap::new();
    let mut outcomes = Vec::with_capacity(REPLAY_CHUNK);
    let mut first_seq = 0u64;
    for chunk in trace.requests.chunks(REPLAY_CHUNK) {
        outcomes.clear();
        policy.access_batch(chunk, first_seq, &mut outcomes);
        debug_assert_eq!(outcomes.len(), chunk.len());
        for (i, (req, outcome)) in chunk.iter().zip(&outcomes).enumerate() {
            record_outcome(&mut stats, &mut per_client, req, *outcome);
            callback(first_seq + i as u64, req, outcome.hit);
        }
        first_seq += chunk.len() as u64;
    }
    SimulationResult {
        policy: policy.name(),
        capacity: policy.capacity(),
        stats,
        per_client,
    }
}

/// Runs the same policy (via its factory) at several cache capacities over
/// the same trace — the cache-size sweeps of Figures 6-8.
pub fn sweep(factory: &dyn PolicyFactory, trace: &Trace, capacities: &[usize]) -> Vec<SweepPoint> {
    capacities
        .iter()
        .map(|&capacity| {
            let mut policy = factory.build(capacity);
            let result = simulate(policy.as_mut(), trace);
            SweepPoint { capacity, result }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::Lru;
    use crate::policy::BoxedPolicy;
    use crate::request::AccessKind;
    use crate::trace::TraceBuilder;

    fn cyclic_trace(pages: u64, repeats: usize) -> Trace {
        let mut b = TraceBuilder::new().with_name("cyclic");
        let c = b.add_client("t", &[("x", 1)]);
        let h = b.intern_hints(c, &[0]);
        for _ in 0..repeats {
            for p in 0..pages {
                b.push(c, p, AccessKind::Read, None, h);
            }
        }
        b.build()
    }

    #[test]
    fn lru_hits_everything_when_cache_fits_working_set() {
        let trace = cyclic_trace(4, 3);
        let mut lru = Lru::new(4);
        let res = simulate(&mut lru, &trace);
        // First pass misses, the remaining two passes hit.
        assert_eq!(res.stats.read_misses, 4);
        assert_eq!(res.stats.read_hits, 8);
        assert_eq!(res.capacity, 4);
        assert_eq!(res.policy, "LRU");
    }

    #[test]
    fn lru_thrashes_on_cyclic_scan_larger_than_cache() {
        let trace = cyclic_trace(5, 4);
        let mut lru = Lru::new(4);
        let res = simulate(&mut lru, &trace);
        assert_eq!(res.stats.read_hits, 0, "classic LRU cyclic-thrash case");
    }

    #[test]
    fn per_client_stats_are_split() {
        let mut b = TraceBuilder::new();
        let c1 = b.add_client("a", &[("x", 1)]);
        let c2 = b.add_client("b", &[("x", 1)]);
        let h1 = b.intern_hints(c1, &[0]);
        let h2 = b.intern_hints(c2, &[0]);
        // Client 1 re-reads its page; client 2 never does.
        b.push(c1, 1, AccessKind::Read, None, h1);
        b.push(c2, 100, AccessKind::Read, None, h2);
        b.push(c1, 1, AccessKind::Read, None, h1);
        b.push(c2, 101, AccessKind::Read, None, h2);
        let trace = b.build();
        let mut lru = Lru::new(8);
        let res = simulate(&mut lru, &trace);
        assert_eq!(res.client_read_hit_ratio(c1), 0.5);
        assert_eq!(res.client_read_hit_ratio(c2), 0.0);
        assert_eq!(res.client_read_hit_ratio(ClientId(9)), 0.0);
    }

    #[test]
    fn sweep_runs_every_capacity() {
        let trace = cyclic_trace(6, 3);
        let factory: (String, fn(usize) -> BoxedPolicy) = ("LRU".to_string(), |cap| {
            Box::new(Lru::new(cap)) as BoxedPolicy
        });
        let points = sweep(&factory, &trace, &[2, 4, 6, 8]);
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].capacity, 2);
        // Hit ratio is monotone in capacity for LRU on this trace family.
        assert!(points[3].result.read_hit_ratio() >= points[0].result.read_hit_ratio());
        // A cache that fits the whole loop hits after the first pass.
        assert!(points[2].result.stats.read_hits > 0);
    }

    #[test]
    fn merge_from_combines_aggregate_and_per_client_stats() {
        let mut b = TraceBuilder::new();
        let c1 = b.add_client("a", &[("x", 1)]);
        let c2 = b.add_client("b", &[("x", 1)]);
        let h1 = b.intern_hints(c1, &[0]);
        let h2 = b.intern_hints(c2, &[0]);
        b.push(c1, 1, AccessKind::Read, None, h1);
        b.push(c1, 1, AccessKind::Read, None, h1);
        b.push(c2, 2, AccessKind::Read, None, h2);
        let trace = b.build();

        // Simulate the same trace twice through independent caches and merge:
        // counters must be exactly double the single run, client by client.
        let single = simulate(&mut Lru::new(4), &trace);
        let mut merged = simulate(&mut Lru::new(4), &trace);
        merged.merge_from(&single);
        assert_eq!(merged.stats.requests(), 2 * single.stats.requests());
        assert_eq!(merged.stats.read_hits, 2 * single.stats.read_hits);
        for (client, stats) in &single.per_client {
            assert_eq!(
                merged.per_client.get(client).unwrap().requests(),
                2 * stats.requests()
            );
        }
        // Merging an empty result changes nothing.
        let before = merged.stats;
        merged.merge_from(&SimulationResult::default());
        assert_eq!(merged.stats, before);
    }

    #[test]
    fn callback_sees_every_request() {
        let trace = cyclic_trace(3, 2);
        let mut lru = Lru::new(3);
        let mut count = 0u64;
        simulate_with_callback(&mut lru, &trace, |seq, _req, _hit| {
            assert_eq!(seq, count);
            count += 1;
        });
        assert_eq!(count, 6);
    }
}
