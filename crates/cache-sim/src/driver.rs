//! The simulation driver: feeds a trace through a policy and collects stats.
//!
//! Besides the serial [`simulate`]/[`sweep`] pair, this module hosts the
//! parallel replay engine built on [`crate::par::ThreadPool`]:
//!
//! * [`compare_policies`] — the generic executor fanning independent
//!   simulation cells (one policy instance each) across worker threads while
//!   returning results in exact cell order,
//! * [`sweep_parallel`] — [`sweep`] on top of the executor,
//! * [`simulate_partitioned`] / [`simulate_partitioned_parallel`] — replay
//!   of disjoint page partitions (the [`crate::partitioned`]-by-pages analogue
//!   of a sharded server) merged via [`SimulationResult::merge_from`], with
//!   the parallel variant bit-identical to the serial one.

use std::collections::BTreeMap;

use crate::par::ThreadPool;
use crate::policy::{AccessOutcome, CachePolicy, PolicyFactory};
use crate::request::{ClientId, Request};
use crate::stats::CacheStats;
use crate::trace::Trace;

/// The result of running one policy over one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimulationResult {
    /// Name of the policy that was simulated.
    pub policy: String,
    /// Cache capacity in pages.
    pub capacity: usize,
    /// Aggregate statistics over the whole trace.
    pub stats: CacheStats,
    /// Statistics broken down by the client that issued each request
    /// (used by the paper's multi-client experiment, Figure 11).
    pub per_client: BTreeMap<ClientId, CacheStats>,
}

impl SimulationResult {
    /// Read hit ratio over the whole trace.
    pub fn read_hit_ratio(&self) -> f64 {
        self.stats.read_hit_ratio()
    }

    /// Read hit ratio restricted to requests from one client, or 0.0 if that
    /// client issued no requests.
    pub fn client_read_hit_ratio(&self, client: ClientId) -> f64 {
        self.per_client
            .get(&client)
            .map(|s| s.read_hit_ratio())
            .unwrap_or(0.0)
    }

    /// Merges another result's counters into this one: aggregate statistics
    /// add up and per-client breakdowns combine client by client.
    ///
    /// This is the aggregation path for deployments that observe one request
    /// stream through several accountants — for example a sharded server
    /// summing its per-shard statistics, or a load harness combining the
    /// results of concurrent client threads. The policy name and capacity of
    /// `self` are kept.
    pub fn merge_from(&mut self, other: &SimulationResult) {
        self.stats += other.stats;
        for (client, stats) in &other.per_client {
            *self.per_client.entry(*client).or_default() += *stats;
        }
    }
}

/// Records one request's [`AccessOutcome`] into aggregate and per-client
/// statistics — the single hit/miss accounting rule shared by [`simulate`]
/// and live servers, so every driver measures policies identically.
pub fn record_outcome(
    stats: &mut CacheStats,
    per_client: &mut BTreeMap<ClientId, CacheStats>,
    req: &Request,
    outcome: AccessOutcome,
) {
    let client_stats = per_client.entry(req.client).or_default();
    if req.is_read() {
        stats.record_read(outcome.hit);
        client_stats.record_read(outcome.hit);
    } else {
        stats.record_write(outcome.hit);
        client_stats.record_write(outcome.hit);
    }
    stats.evictions += u64::from(outcome.evicted);
    client_stats.evictions += u64::from(outcome.evicted);
    if outcome.bypassed {
        stats.bypasses += 1;
        client_stats.bypasses += 1;
    }
}

/// One point of a cache-size sweep: the capacity and the simulation result.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Cache capacity in pages for this point.
    pub capacity: usize,
    /// The simulation result at this capacity.
    pub result: SimulationResult,
}

/// Runs `policy` over `trace` and returns aggregate and per-client statistics.
///
/// The driver — not the policy — is responsible for classifying hits and
/// misses, so every policy is measured identically: a request is a hit iff
/// the page was cached when the request arrived.
pub fn simulate(policy: &mut dyn CachePolicy, trace: &Trace) -> SimulationResult {
    simulate_with_callback(policy, trace, |_, _, _| {})
}

/// Number of requests replayed per [`CachePolicy::access_batch`] call by the
/// drivers in this workspace. Large enough to amortize per-batch dispatch,
/// lock acquisition, and accounting setup; small enough to keep the outcome
/// scratch buffer (and a prefetch-batched policy's working set) in cache.
///
/// This is the *one* shared replay granularity: [`simulate`] chunks traces by
/// it, the `clic-server` shard workers split over-long sub-batches by it, and
/// the load harness defaults its client batch size to it — so batching
/// effects are comparable across the offline and online drivers instead of
/// each picking its own magic number.
pub const REPLAY_CHUNK: usize = 256;

/// Like [`simulate`], but invokes `callback(seq, request, hit)` after every
/// request. Used by experiments that need time-resolved output (for example
/// warm-up exclusion or convergence plots).
///
/// The trace is replayed in chunks through [`CachePolicy::access_batch`]
/// (whose contract guarantees behaviour identical to per-request `access`
/// calls); the callback still observes every request, in trace order.
pub fn simulate_with_callback<F>(
    policy: &mut dyn CachePolicy,
    trace: &Trace,
    mut callback: F,
) -> SimulationResult
where
    F: FnMut(u64, &crate::Request, bool),
{
    let mut stats = CacheStats::new();
    let mut per_client: BTreeMap<ClientId, CacheStats> = BTreeMap::new();
    let mut outcomes = Vec::with_capacity(REPLAY_CHUNK);
    let mut first_seq = 0u64;
    for chunk in trace.requests.chunks(REPLAY_CHUNK) {
        outcomes.clear();
        policy.access_batch(chunk, first_seq, &mut outcomes);
        // A policy violating the one-outcome-per-request contract must fail
        // loudly here, not silently truncate the statistics via `zip` below
        // (one compare per chunk is free next to the replay itself).
        assert_eq!(
            outcomes.len(),
            chunk.len(),
            "access_batch of {} broke its outcome-count contract",
            policy.name()
        );
        for (i, (req, outcome)) in chunk.iter().zip(&outcomes).enumerate() {
            record_outcome(&mut stats, &mut per_client, req, *outcome);
            callback(first_seq + i as u64, req, outcome.hit);
        }
        first_seq += chunk.len() as u64;
    }
    SimulationResult {
        policy: policy.name(),
        capacity: policy.capacity(),
        stats,
        per_client,
    }
}

/// Runs the same policy (via its factory) at several cache capacities over
/// the same trace — the cache-size sweeps of Figures 6-8.
pub fn sweep(factory: &dyn PolicyFactory, trace: &Trace, capacities: &[usize]) -> Vec<SweepPoint> {
    capacities
        .iter()
        .map(|&capacity| {
            let mut policy = factory.build(capacity);
            let result = simulate(policy.as_mut(), trace);
            SweepPoint { capacity, result }
        })
        .collect()
}

/// The parallel simulation executor: builds one policy per cell of `cells`
/// via `build`, runs [`simulate`] over `trace` for each on the pool's worker
/// threads, and returns the results **in cell order** — exactly what the
/// serial loop `cells.iter().map(|c| simulate(build(c), trace))` would
/// return, because each cell is an independent deterministic simulation and
/// [`ThreadPool::par_map`] preserves input order.
///
/// This is the fan-out primitive behind the benchmark harness's policy
/// comparisons and sweep grids: a cell is any description of a simulation
/// (policy name, capacity, configuration, ...) that `build` can turn into a
/// policy instance.
pub fn compare_policies<C, B>(
    pool: &ThreadPool,
    trace: &Trace,
    cells: &[C],
    build: B,
) -> Vec<SimulationResult>
where
    C: Sync,
    B: Fn(&C) -> Box<dyn CachePolicy> + Sync,
{
    pool.par_map(cells, |_, cell| {
        let mut policy = build(cell);
        simulate(policy.as_mut(), trace)
    })
}

/// [`sweep`] on the parallel executor: same capacities, same trace, same
/// results in the same order, with the independent capacities simulated
/// concurrently on the pool's workers.
pub fn sweep_parallel(
    pool: &ThreadPool,
    factory: &(dyn PolicyFactory + Sync),
    trace: &Trace,
    capacities: &[usize],
) -> Vec<SweepPoint> {
    let results = compare_policies(pool, trace, capacities, |&capacity| factory.build(capacity));
    capacities
        .iter()
        .zip(results)
        .map(|(&capacity, result)| SweepPoint { capacity, result })
        .collect()
}

/// Splits `trace` into `partitions` disjoint page partitions (the shared
/// [`crate::hash::page_partition`] rule, i.e. the same placement a sharded
/// server produces), replays each partition through its own policy instance
/// built by `factory` — sequence numbers stay the requests' *global* trace
/// positions, exactly as a sharded server's global sequencer would hand them
/// out — and merges the per-partition statistics in partition order via
/// [`SimulationResult::merge_from`].
///
/// `capacity` is the total cache size; it is split across partitions the way
/// a sharded deployment splits it (`capacity / partitions` each, the first
/// `capacity % partitions` partitions receiving one extra page).
///
/// This is **not** behaviourally identical to [`simulate`] on one
/// `capacity`-page policy instance — partitions learn and evict
/// independently, as real shards do — but it is deterministic, and
/// [`simulate_partitioned_parallel`] is bit-identical to it.
///
/// # Panics
///
/// Panics if `partitions` is zero or exceeds `capacity`.
pub fn simulate_partitioned(
    factory: &(dyn PolicyFactory + Sync),
    trace: &Trace,
    capacity: usize,
    partitions: usize,
) -> SimulationResult {
    let pool = ThreadPool::new(1);
    simulate_partitioned_parallel(&pool, factory, trace, capacity, partitions)
}

/// [`simulate_partitioned`] with the partitions replayed concurrently on the
/// pool's worker threads. Partitions are disjoint by construction and merged
/// in partition order, so the result is **bit-identical** to the serial
/// variant (and independent of the pool's job count).
///
/// # Panics
///
/// Panics if `partitions` is zero or exceeds `capacity`.
pub fn simulate_partitioned_parallel(
    pool: &ThreadPool,
    factory: &(dyn PolicyFactory + Sync),
    trace: &Trace,
    capacity: usize,
    partitions: usize,
) -> SimulationResult {
    assert!(partitions > 0, "at least one partition is required");
    assert!(
        capacity >= partitions,
        "capacity ({capacity}) must be at least one page per partition ({partitions})"
    );
    // Split the trace once: per partition, the requests plus their global
    // sequence numbers (partitions see gaps in the sequence, like shards of
    // a server drawing from one global sequencer).
    let mut split: Vec<Vec<(u64, Request)>> = vec![Vec::new(); partitions];
    for (seq, req) in trace.requests.iter().enumerate() {
        split[crate::hash::page_partition(req.page, partitions)].push((seq as u64, *req));
    }
    let base = capacity / partitions;
    let remainder = capacity % partitions;
    let indexed: Vec<(usize, Vec<(u64, Request)>)> = split.into_iter().enumerate().collect();
    let partials = pool.par_map(&indexed, |_, (index, requests)| {
        let partition_capacity = base + usize::from(*index < remainder);
        let mut policy = factory.build(partition_capacity);
        let mut stats = CacheStats::new();
        let mut per_client: BTreeMap<ClientId, CacheStats> = BTreeMap::new();
        for (seq, req) in requests {
            let outcome = policy.access(req, *seq);
            record_outcome(&mut stats, &mut per_client, req, outcome);
        }
        SimulationResult {
            policy: policy.name(),
            capacity: partition_capacity,
            stats,
            per_client,
        }
    });
    let mut result = SimulationResult {
        policy: format!("Partitioned<{}x{partitions}>", factory.name()),
        capacity,
        ..SimulationResult::default()
    };
    for partial in &partials {
        result.merge_from(partial);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::Lru;
    use crate::policy::BoxedPolicy;
    use crate::request::AccessKind;
    use crate::trace::TraceBuilder;

    fn cyclic_trace(pages: u64, repeats: usize) -> Trace {
        let mut b = TraceBuilder::new().with_name("cyclic");
        let c = b.add_client("t", &[("x", 1)]);
        let h = b.intern_hints(c, &[0]);
        for _ in 0..repeats {
            for p in 0..pages {
                b.push(c, p, AccessKind::Read, None, h);
            }
        }
        b.build()
    }

    #[test]
    fn lru_hits_everything_when_cache_fits_working_set() {
        let trace = cyclic_trace(4, 3);
        let mut lru = Lru::new(4);
        let res = simulate(&mut lru, &trace);
        // First pass misses, the remaining two passes hit.
        assert_eq!(res.stats.read_misses, 4);
        assert_eq!(res.stats.read_hits, 8);
        assert_eq!(res.capacity, 4);
        assert_eq!(res.policy, "LRU");
    }

    #[test]
    fn lru_thrashes_on_cyclic_scan_larger_than_cache() {
        let trace = cyclic_trace(5, 4);
        let mut lru = Lru::new(4);
        let res = simulate(&mut lru, &trace);
        assert_eq!(res.stats.read_hits, 0, "classic LRU cyclic-thrash case");
    }

    #[test]
    fn per_client_stats_are_split() {
        let mut b = TraceBuilder::new();
        let c1 = b.add_client("a", &[("x", 1)]);
        let c2 = b.add_client("b", &[("x", 1)]);
        let h1 = b.intern_hints(c1, &[0]);
        let h2 = b.intern_hints(c2, &[0]);
        // Client 1 re-reads its page; client 2 never does.
        b.push(c1, 1, AccessKind::Read, None, h1);
        b.push(c2, 100, AccessKind::Read, None, h2);
        b.push(c1, 1, AccessKind::Read, None, h1);
        b.push(c2, 101, AccessKind::Read, None, h2);
        let trace = b.build();
        let mut lru = Lru::new(8);
        let res = simulate(&mut lru, &trace);
        assert_eq!(res.client_read_hit_ratio(c1), 0.5);
        assert_eq!(res.client_read_hit_ratio(c2), 0.0);
        assert_eq!(res.client_read_hit_ratio(ClientId(9)), 0.0);
    }

    #[test]
    fn sweep_runs_every_capacity() {
        let trace = cyclic_trace(6, 3);
        let factory: (String, fn(usize) -> BoxedPolicy) = ("LRU".to_string(), |cap| {
            Box::new(Lru::new(cap)) as BoxedPolicy
        });
        let points = sweep(&factory, &trace, &[2, 4, 6, 8]);
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].capacity, 2);
        // Hit ratio is monotone in capacity for LRU on this trace family.
        assert!(points[3].result.read_hit_ratio() >= points[0].result.read_hit_ratio());
        // A cache that fits the whole loop hits after the first pass.
        assert!(points[2].result.stats.read_hits > 0);
    }

    #[test]
    fn merge_from_combines_aggregate_and_per_client_stats() {
        let mut b = TraceBuilder::new();
        let c1 = b.add_client("a", &[("x", 1)]);
        let c2 = b.add_client("b", &[("x", 1)]);
        let h1 = b.intern_hints(c1, &[0]);
        let h2 = b.intern_hints(c2, &[0]);
        b.push(c1, 1, AccessKind::Read, None, h1);
        b.push(c1, 1, AccessKind::Read, None, h1);
        b.push(c2, 2, AccessKind::Read, None, h2);
        let trace = b.build();

        // Simulate the same trace twice through independent caches and merge:
        // counters must be exactly double the single run, client by client.
        let single = simulate(&mut Lru::new(4), &trace);
        let mut merged = simulate(&mut Lru::new(4), &trace);
        merged.merge_from(&single);
        assert_eq!(merged.stats.requests(), 2 * single.stats.requests());
        assert_eq!(merged.stats.read_hits, 2 * single.stats.read_hits);
        for (client, stats) in &single.per_client {
            assert_eq!(
                merged.per_client.get(client).unwrap().requests(),
                2 * stats.requests()
            );
        }
        // Merging an empty result changes nothing.
        let before = merged.stats;
        merged.merge_from(&SimulationResult::default());
        assert_eq!(merged.stats, before);
    }

    #[test]
    fn sweep_parallel_is_bit_identical_to_sweep() {
        let trace = cyclic_trace(12, 5);
        let factory: (String, fn(usize) -> BoxedPolicy) = ("LRU".to_string(), |cap| {
            Box::new(Lru::new(cap)) as BoxedPolicy
        });
        let capacities = [2usize, 4, 6, 8, 12, 16];
        let serial = sweep(&factory, &trace, &capacities);
        for jobs in [1, 2, 4] {
            let pool = ThreadPool::new(jobs);
            let parallel = sweep_parallel(&pool, &factory, &trace, &capacities);
            assert_eq!(parallel.len(), serial.len());
            for (p, s) in parallel.iter().zip(&serial) {
                assert_eq!(p.capacity, s.capacity, "jobs = {jobs}");
                assert_eq!(p.result.stats, s.result.stats, "jobs = {jobs}");
                assert_eq!(p.result.per_client, s.result.per_client, "jobs = {jobs}");
                assert_eq!(p.result.policy, s.result.policy, "jobs = {jobs}");
            }
        }
    }

    #[test]
    fn compare_policies_returns_results_in_cell_order() {
        let trace = cyclic_trace(8, 4);
        let cells: Vec<usize> = vec![2, 8, 4, 16, 6];
        let pool = ThreadPool::new(3);
        let results = compare_policies(&pool, &trace, &cells, |&cap| {
            Box::new(Lru::new(cap)) as BoxedPolicy
        });
        assert_eq!(results.len(), cells.len());
        for (cell, result) in cells.iter().zip(&results) {
            assert_eq!(result.capacity, *cell, "cell order must be preserved");
            let mut reference = Lru::new(*cell);
            let expected = simulate(&mut reference, &trace);
            assert_eq!(result.stats, expected.stats);
        }
    }

    #[test]
    fn partitioned_parallel_matches_serial_partitioned_exactly() {
        // A trace wide enough that every partition sees traffic.
        let mut b = TraceBuilder::new().with_name("wide");
        let c = b.add_client("t", &[("x", 1)]);
        let h = b.intern_hints(c, &[0]);
        for round in 0..6u64 {
            for p in 0..200u64 {
                b.push(c, p * 31 + round, AccessKind::Read, None, h);
            }
        }
        let trace = b.build();
        let factory: (String, fn(usize) -> BoxedPolicy) = ("LRU".to_string(), |cap| {
            Box::new(Lru::new(cap)) as BoxedPolicy
        });
        for partitions in [1usize, 2, 3, 7] {
            let serial = simulate_partitioned(&factory, &trace, 64, partitions);
            assert_eq!(serial.stats.requests(), trace.len() as u64);
            for jobs in [1, 2, 4] {
                let pool = ThreadPool::new(jobs);
                let parallel =
                    simulate_partitioned_parallel(&pool, &factory, &trace, 64, partitions);
                assert_eq!(parallel.stats, serial.stats, "p={partitions} jobs={jobs}");
                assert_eq!(
                    parallel.per_client, serial.per_client,
                    "p={partitions} jobs={jobs}"
                );
                assert_eq!(parallel.policy, serial.policy);
                assert_eq!(parallel.capacity, 64);
            }
        }
    }

    #[test]
    fn single_partition_replay_matches_plain_simulate() {
        let trace = cyclic_trace(10, 4);
        let factory: (String, fn(usize) -> BoxedPolicy) = ("LRU".to_string(), |cap| {
            Box::new(Lru::new(cap)) as BoxedPolicy
        });
        let partitioned = simulate_partitioned(&factory, &trace, 8, 1);
        let expected = simulate(&mut Lru::new(8), &trace);
        assert_eq!(partitioned.stats, expected.stats);
        assert_eq!(partitioned.per_client, expected.per_client);
    }

    #[test]
    #[should_panic(expected = "at least one page per partition")]
    fn partitioned_rejects_more_partitions_than_pages() {
        let trace = cyclic_trace(4, 1);
        let factory: (String, fn(usize) -> BoxedPolicy) = ("LRU".to_string(), |cap| {
            Box::new(Lru::new(cap)) as BoxedPolicy
        });
        let _ = simulate_partitioned(&factory, &trace, 2, 3);
    }

    #[test]
    fn callback_sees_every_request() {
        let trace = cyclic_trace(3, 2);
        let mut lru = Lru::new(3);
        let mut count = 0u64;
        simulate_with_callback(&mut lru, &trace, |seq, _req, _hit| {
            assert_eq!(seq, count);
            count += 1;
        });
        assert_eq!(count, 6);
    }
}
