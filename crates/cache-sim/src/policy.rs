//! The replacement-policy abstraction implemented by every cache policy.

use std::fmt;

use crate::request::{PageId, Request};

/// What a policy did with a request, reported back to the simulation driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// `true` if the requested page was present in the cache *before* the
    /// request was applied (a hit).
    pub hit: bool,
    /// Number of pages the policy evicted while handling this request.
    pub evicted: u32,
    /// `true` if the policy declined to admit the (missing) page.
    pub bypassed: bool,
}

impl AccessOutcome {
    /// Outcome for a hit: the page was already cached.
    pub fn hit() -> Self {
        AccessOutcome {
            hit: true,
            evicted: 0,
            bypassed: false,
        }
    }

    /// Outcome for a miss where the page was admitted, evicting `evicted`
    /// pages to make room.
    pub fn miss(evicted: u32) -> Self {
        AccessOutcome {
            hit: false,
            evicted,
            bypassed: false,
        }
    }

    /// Outcome for a miss where the policy chose not to admit the page.
    pub fn bypass() -> Self {
        AccessOutcome {
            hit: false,
            evicted: 0,
            bypassed: true,
        }
    }
}

/// A storage-server cache replacement policy.
///
/// The simulation driver feeds the policy one request at a time together with
/// a monotonically increasing sequence number (the request's position in the
/// trace). The policy decides whether to admit the page and which page to
/// evict; the driver aggregates the returned [`AccessOutcome`]s into
/// [`crate::CacheStats`].
///
/// Policies are single-threaded by design: trace-driven cache simulation is
/// inherently sequential, and the paper's algorithms are described as
/// sequential data structures. Parallelism in the benchmark harness comes
/// from running independent simulations on separate threads.
pub trait CachePolicy {
    /// Short human-readable policy name, e.g. `"LRU"` or `"CLIC"`.
    fn name(&self) -> String;

    /// The maximum number of pages the cache may hold.
    fn capacity(&self) -> usize;

    /// Handles one request with the given trace sequence number.
    fn access(&mut self, req: &Request, seq: u64) -> AccessOutcome;

    /// Handles a batch of consecutive requests, appending one outcome per
    /// request to `outcomes`.
    ///
    /// Request `i` of the slice carries sequence number `first_seq + i`. The
    /// contract is strict: the observable behaviour (outcomes, cache
    /// contents, internal statistics) must be *identical* to calling
    /// [`CachePolicy::access`] once per request in order. The default
    /// implementation does exactly that; policies with a meaningful batch
    /// fast path (amortized lookups, fewer dynamic dispatches) override it.
    /// Drivers such as [`crate::simulate`] and live servers feed requests
    /// through this method in chunks so that per-request dispatch overhead is
    /// paid once per batch instead of once per request.
    fn access_batch(
        &mut self,
        reqs: &[Request],
        first_seq: u64,
        outcomes: &mut Vec<AccessOutcome>,
    ) {
        outcomes.reserve(reqs.len());
        for (i, req) in reqs.iter().enumerate() {
            outcomes.push(self.access(req, first_seq + i as u64));
        }
    }

    /// Asks the policy to record the *identity* of every page it evicts so a
    /// data plane can drop (and, if dirty, flush) the corresponding buffer
    /// frame. Returns `true` if the policy supports eviction logging.
    ///
    /// [`AccessOutcome`] deliberately reports only eviction *counts* — the
    /// common simulation path never needs identities, and forcing every
    /// policy to return them would put an allocation on the hot path.
    /// Policies backing a real store opt in: after enabling, every page
    /// evicted by `access`/`access_batch` is appended to an internal log that
    /// the caller drains with [`CachePolicy::drain_evictions`] (and must
    /// drain, or the log grows with the eviction count). The default
    /// implementation ignores the request and reports `false`, so drivers
    /// can detect policies that would silently leak frames.
    fn record_evictions(&mut self, _enabled: bool) -> bool {
        false
    }

    /// Drains the identities of pages evicted since the previous drain into
    /// `out` (appending, oldest first). A no-op unless the policy supports
    /// and has enabled [`CachePolicy::record_evictions`].
    fn drain_evictions(&mut self, _out: &mut Vec<PageId>) {}

    /// Returns `true` if the page is currently cached.
    fn contains(&self, page: PageId) -> bool;

    /// Number of pages currently cached.
    fn len(&self) -> usize;

    /// Returns `true` if the cache currently holds no pages.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for dyn CachePolicy + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CachePolicy({}, {}/{} pages)",
            self.name(),
            self.len(),
            self.capacity()
        )
    }
}

/// A heap-allocated policy trait object.
pub type BoxedPolicy = Box<dyn CachePolicy>;

/// A factory that builds a policy for a given cache capacity.
///
/// Used by [`crate::sweep`] to run the same policy at several cache sizes and
/// by the benchmark harness to enumerate policies by name.
pub trait PolicyFactory {
    /// Name of the policies produced by this factory.
    fn name(&self) -> String;

    /// Builds a fresh policy instance with the given capacity (in pages).
    fn build(&self, capacity: usize) -> BoxedPolicy;
}

impl<F> PolicyFactory for (String, F)
where
    F: Fn(usize) -> BoxedPolicy,
{
    fn name(&self) -> String {
        self.0.clone()
    }

    fn build(&self, capacity: usize) -> BoxedPolicy {
        (self.1)(capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::Lru;
    use crate::{ClientId, HintSetId};

    #[test]
    fn outcome_constructors() {
        assert!(AccessOutcome::hit().hit);
        assert!(!AccessOutcome::miss(1).hit);
        assert_eq!(AccessOutcome::miss(3).evicted, 3);
        assert!(AccessOutcome::bypass().bypassed);
    }

    #[test]
    fn factory_tuple_impl_builds_policies() {
        let factory: (String, fn(usize) -> BoxedPolicy) = ("LRU".to_string(), |cap| {
            Box::new(Lru::new(cap)) as BoxedPolicy
        });
        assert_eq!(factory.name(), "LRU");
        let p = factory.build(16);
        assert_eq!(p.capacity(), 16);
        assert!(p.is_empty());
    }

    #[test]
    fn debug_impl_for_trait_object() {
        let mut lru = Lru::new(2);
        let req = Request::read(ClientId(0), PageId(1), HintSetId(0));
        lru.access(&req, 0);
        let dyn_ref: &dyn CachePolicy = &lru;
        let dbg = format!("{dyn_ref:?}");
        assert!(dbg.contains("LRU"));
        assert!(dbg.contains("1/2"));
    }
}
