//! Storage-server cache simulation substrate for the CLIC reproduction.
//!
//! This crate models the *second tier* of a multi-tier block cache hierarchy:
//! a storage server that receives a stream of block I/O requests from one or
//! more storage clients (for example database systems), each request possibly
//! carrying an application-generated *hint set*.
//!
//! The crate provides:
//!
//! * the request model ([`Request`], [`PageId`], [`ClientId`], [`AccessKind`],
//!   [`WriteHint`]) and the hint catalog ([`HintCatalog`], [`HintSchema`],
//!   [`HintSetId`]) shared by every other crate in the workspace,
//! * the [`CachePolicy`] trait that every replacement policy implements,
//! * baseline replacement policies used by the paper's evaluation
//!   (OPT/Belady-MIN, LRU, ARC, TQ) plus a wider set of classical policies
//!   (FIFO, CLOCK, LFU, 2Q, MQ, CAR) useful for extended comparisons,
//! * the trace container ([`Trace`]) and the simulation driver
//!   ([`simulate`], [`sweep`]) that measure server-cache read hit ratios,
//! * the parallel replay engine: a dependency-free scoped thread pool
//!   ([`par::ThreadPool`]) with a deterministic ordered `par_map`, the
//!   [`compare_policies`] executor and [`sweep_parallel`] that fan
//!   independent simulation cells across cores in exact serial order, and
//!   the page-partitioned [`simulate_partitioned_parallel`] replay, and
//! * a [`PartitionedCache`] that statically partitions a cache
//!   among clients (the baseline of the paper's multi-client experiment).
//!
//! # Example
//!
//! ```
//! use cache_sim::{simulate, Trace, TraceBuilder, AccessKind, policies::Lru};
//!
//! // Build a tiny single-client trace by hand.
//! let mut b = TraceBuilder::new();
//! let client = b.add_client("example", &[("kind", 2)]);
//! let hint = b.intern_hints(client, &[0]);
//! for page in [1u64, 2, 3, 1, 2, 3, 1, 2, 3] {
//!     b.push(client, page, AccessKind::Read, None, hint);
//! }
//! let trace: Trace = b.build();
//!
//! let mut lru = Lru::new(2);
//! let result = simulate(&mut lru, &trace);
//! // A 2-page LRU cache sees no hits on a cyclic 3-page scan.
//! assert_eq!(result.stats.read_hits, 0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod driver;
pub mod hash;
pub mod hints;
pub mod oracle;
pub mod par;
pub mod partitioned;
pub mod policies;
pub mod policy;
pub mod request;
pub mod stats;
pub mod sync;
pub mod trace;

pub use driver::{
    compare_policies, record_outcome, simulate, simulate_partitioned,
    simulate_partitioned_parallel, simulate_with_callback, sweep, sweep_parallel, SimulationResult,
    SweepPoint, REPLAY_CHUNK,
};
pub use hash::{page_partition, FastBuildHasher, FastHashMap, FastHashSet};
pub use hints::{HintCatalog, HintSchema, HintSetId, HintTypeDescriptor, HintValue};
pub use oracle::NextUseOracle;
pub use par::{default_jobs, ThreadPool};
pub use partitioned::PartitionedCache;
pub use policy::{BoxedPolicy, CachePolicy, PolicyFactory};
pub use request::{AccessKind, ClientId, PageId, Request, WriteHint};
pub use stats::{CacheStats, IoStats};
pub use sync::{checked_lock, read_lock, recover_lock, write_lock, LockPoisoned};
pub use trace::{Trace, TraceBuilder, TraceSummary};
