//! Cache statistics collected by the simulation driver.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Counters describing the behaviour of a storage-server cache over a trace.
///
/// The paper's headline metric is the *read hit ratio*: the number of read
/// hits divided by the number of read requests. Writes are counted separately
/// because, in a second-tier cache, caching on writes is where most of the
/// benefit comes from, but write hits themselves do not save any disk I/O in
/// the simulated model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of read requests that found the page in the cache.
    pub read_hits: u64,
    /// Number of read requests that missed the cache.
    pub read_misses: u64,
    /// Number of write requests for pages already in the cache.
    pub write_hits: u64,
    /// Number of write requests for pages not in the cache.
    pub write_misses: u64,
    /// Number of pages evicted to make room for newly admitted pages.
    pub evictions: u64,
    /// Number of requests whose page the policy declined to admit.
    pub bypasses: u64,
}

impl CacheStats {
    /// Creates an all-zero statistics record.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Total number of read requests observed.
    pub fn reads(&self) -> u64 {
        self.read_hits + self.read_misses
    }

    /// Total number of write requests observed.
    pub fn writes(&self) -> u64 {
        self.write_hits + self.write_misses
    }

    /// Total number of requests observed.
    pub fn requests(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// The read hit ratio (read hits / reads), the paper's primary metric.
    ///
    /// Returns 0.0 when the trace contains no reads.
    pub fn read_hit_ratio(&self) -> f64 {
        let reads = self.reads();
        if reads == 0 {
            0.0
        } else {
            self.read_hits as f64 / reads as f64
        }
    }

    /// The overall hit ratio across reads and writes.
    ///
    /// Returns 0.0 when the trace is empty.
    pub fn overall_hit_ratio(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            0.0
        } else {
            (self.read_hits + self.write_hits) as f64 / total as f64
        }
    }

    /// Records a read outcome.
    pub fn record_read(&mut self, hit: bool) {
        if hit {
            self.read_hits += 1;
        } else {
            self.read_misses += 1;
        }
    }

    /// Records a write outcome.
    pub fn record_write(&mut self, hit: bool) {
        if hit {
            self.write_hits += 1;
        } else {
            self.write_misses += 1;
        }
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(mut self, rhs: Self) -> Self::Output {
        self += rhs;
        self
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.read_hits += rhs.read_hits;
        self.read_misses += rhs.read_misses;
        self.write_hits += rhs.write_hits;
        self.write_misses += rhs.write_misses;
        self.evictions += rhs.evictions;
        self.bypasses += rhs.bypasses;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads {} (hit {:.2}%), writes {}, evictions {}, bypasses {}",
            self.reads(),
            self.read_hit_ratio() * 100.0,
            self.writes(),
            self.evictions,
            self.bypasses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_traces() {
        let s = CacheStats::new();
        assert_eq!(s.read_hit_ratio(), 0.0);
        assert_eq!(s.overall_hit_ratio(), 0.0);
        assert_eq!(s.requests(), 0);
    }

    #[test]
    fn read_hit_ratio_ignores_writes() {
        let mut s = CacheStats::new();
        s.record_read(true);
        s.record_read(false);
        s.record_read(false);
        s.record_write(true);
        s.record_write(false);
        assert!((s.read_hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.reads(), 3);
        assert_eq!(s.writes(), 2);
        assert!((s.overall_hit_ratio() - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn add_assign_sums_fields() {
        let mut a = CacheStats {
            read_hits: 1,
            read_misses: 2,
            write_hits: 3,
            write_misses: 4,
            evictions: 5,
            bypasses: 6,
        };
        let b = a;
        a += b;
        assert_eq!(a.read_hits, 2);
        assert_eq!(a.read_misses, 4);
        assert_eq!(a.write_hits, 6);
        assert_eq!(a.write_misses, 8);
        assert_eq!(a.evictions, 10);
        assert_eq!(a.bypasses, 12);
    }

    #[test]
    fn display_contains_hit_ratio() {
        let mut s = CacheStats::new();
        s.record_read(true);
        let text = s.to_string();
        assert!(text.contains("100.00%"));
    }
}
