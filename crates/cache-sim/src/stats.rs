//! Cache statistics collected by the simulation driver.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Counters describing the behaviour of a storage-server cache over a trace.
///
/// The paper's headline metric is the *read hit ratio*: the number of read
/// hits divided by the number of read requests. Writes are counted separately
/// because, in a second-tier cache, caching on writes is where most of the
/// benefit comes from, but write hits themselves do not save any disk I/O in
/// the simulated model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of read requests that found the page in the cache.
    pub read_hits: u64,
    /// Number of read requests that missed the cache.
    pub read_misses: u64,
    /// Number of write requests for pages already in the cache.
    pub write_hits: u64,
    /// Number of write requests for pages not in the cache.
    pub write_misses: u64,
    /// Number of pages evicted to make room for newly admitted pages.
    pub evictions: u64,
    /// Number of requests whose page the policy declined to admit.
    pub bypasses: u64,
}

impl CacheStats {
    /// Creates an all-zero statistics record.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Total number of read requests observed.
    pub fn reads(&self) -> u64 {
        self.read_hits + self.read_misses
    }

    /// Total number of write requests observed.
    pub fn writes(&self) -> u64 {
        self.write_hits + self.write_misses
    }

    /// Total number of requests observed.
    pub fn requests(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// The read hit ratio (read hits / reads), the paper's primary metric.
    ///
    /// Returns 0.0 when the trace contains no reads.
    pub fn read_hit_ratio(&self) -> f64 {
        let reads = self.reads();
        if reads == 0 {
            0.0
        } else {
            self.read_hits as f64 / reads as f64
        }
    }

    /// The overall hit ratio across reads and writes.
    ///
    /// Returns 0.0 when the trace is empty.
    pub fn overall_hit_ratio(&self) -> f64 {
        let total = self.requests();
        if total == 0 {
            0.0
        } else {
            (self.read_hits + self.write_hits) as f64 / total as f64
        }
    }

    /// Records a read outcome.
    pub fn record_read(&mut self, hit: bool) {
        if hit {
            self.read_hits += 1;
        } else {
            self.read_misses += 1;
        }
    }

    /// Records a write outcome.
    pub fn record_write(&mut self, hit: bool) {
        if hit {
            self.write_hits += 1;
        } else {
            self.write_misses += 1;
        }
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(mut self, rhs: Self) -> Self::Output {
        self += rhs;
        self
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: Self) {
        self.read_hits += rhs.read_hits;
        self.read_misses += rhs.read_misses;
        self.write_hits += rhs.write_hits;
        self.write_misses += rhs.write_misses;
        self.evictions += rhs.evictions;
        self.bypasses += rhs.bypasses;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads {} (hit {:.2}%), writes {}, evictions {}, bypasses {}",
            self.reads(),
            self.read_hit_ratio() * 100.0,
            self.writes(),
            self.evictions,
            self.bypasses
        )
    }
}

/// Byte-level I/O counters for a cache with a real data plane.
///
/// Where [`CacheStats`] counts policy decisions (hits, misses, evictions),
/// `IoStats` counts the bytes those decisions move: payload traffic between
/// clients and the store, frame-sized transfers against the backing disk,
/// buffer-pool hits, write-back flushes, and write-ahead-log appends. The
/// `clic-store` crate produces these counters and the server/bench layers
/// aggregate and report them; they live here so every layer shares one
/// definition, exactly like `CacheStats`.
///
/// The headline derived metric is [`IoStats::buffer_hit_ratio`]; the headline
/// raw metric is [`IoStats::disk_reads`] — the disk accesses a better
/// admission policy avoids, which is CLIC's value proposition in the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Payload bytes returned to clients by read operations.
    pub bytes_read: u64,
    /// Payload bytes accepted from clients by write operations.
    pub bytes_written: u64,
    /// Read operations served entirely from a resident buffer frame.
    pub buffer_hits: u64,
    /// Read operations that had to go to the disk tier.
    pub buffer_misses: u64,
    /// Frame-sized reads issued against the backing disk (includes reads of
    /// pages the backing file has never stored, which a real server would
    /// fetch from the underlying device all the same).
    pub disk_reads: u64,
    /// Frame-sized writes issued against the backing disk.
    pub disk_writes: u64,
    /// Frame-sized bytes transferred from the backing disk.
    pub disk_bytes_read: u64,
    /// Frame-sized bytes transferred to the backing disk.
    pub disk_bytes_written: u64,
    /// Dirty frames written back by flushes (background, threshold, or
    /// eviction-forced).
    pub pages_flushed: u64,
    /// Dirty frames whose write-back was forced by an eviction.
    pub eviction_flushes: u64,
    /// Records appended to the write-ahead log.
    pub wal_records: u64,
    /// Bytes appended to the write-ahead log (including record framing).
    pub wal_bytes: u64,
    /// `fsync` calls issued against the page file (checkpoints and
    /// recovery-time write-back).
    pub data_syncs: u64,
    /// `fsync` calls issued against the write-ahead log.
    pub wal_syncs: u64,
    /// WAL syncs that covered more than one pending append — the group
    /// commits that amortized durability across concurrent writers.
    pub group_commits: u64,
}

impl IoStats {
    /// Creates an all-zero I/O record.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Total read operations against the data plane.
    pub fn reads(&self) -> u64 {
        self.buffer_hits + self.buffer_misses
    }

    /// Fraction of read operations served from a resident buffer frame
    /// without touching the disk tier (0.0 when no reads were observed).
    pub fn buffer_hit_ratio(&self) -> f64 {
        let reads = self.reads();
        if reads == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / reads as f64
        }
    }

    /// Total payload bytes moved between clients and the store.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Total `fsync` calls across the page file and the WAL — the raw
    /// durability cost that group commit amortizes.
    pub fn fsyncs(&self) -> u64 {
        self.data_syncs + self.wal_syncs
    }
}

impl Add for IoStats {
    type Output = IoStats;

    fn add(mut self, rhs: Self) -> Self::Output {
        self += rhs;
        self
    }
}

impl AddAssign for IoStats {
    fn add_assign(&mut self, rhs: Self) {
        self.bytes_read += rhs.bytes_read;
        self.bytes_written += rhs.bytes_written;
        self.buffer_hits += rhs.buffer_hits;
        self.buffer_misses += rhs.buffer_misses;
        self.disk_reads += rhs.disk_reads;
        self.disk_writes += rhs.disk_writes;
        self.disk_bytes_read += rhs.disk_bytes_read;
        self.disk_bytes_written += rhs.disk_bytes_written;
        self.pages_flushed += rhs.pages_flushed;
        self.eviction_flushes += rhs.eviction_flushes;
        self.wal_records += rhs.wal_records;
        self.wal_bytes += rhs.wal_bytes;
        self.data_syncs += rhs.data_syncs;
        self.wal_syncs += rhs.wal_syncs;
        self.group_commits += rhs.group_commits;
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reads {} (buffer hit {:.2}%), disk reads {}, disk writes {}, \
             flushed {}, wal {} records / {} bytes",
            self.reads(),
            self.buffer_hit_ratio() * 100.0,
            self.disk_reads,
            self.disk_writes,
            self.pages_flushed,
            self.wal_records,
            self.wal_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_traces() {
        let s = CacheStats::new();
        assert_eq!(s.read_hit_ratio(), 0.0);
        assert_eq!(s.overall_hit_ratio(), 0.0);
        assert_eq!(s.requests(), 0);
    }

    #[test]
    fn read_hit_ratio_ignores_writes() {
        let mut s = CacheStats::new();
        s.record_read(true);
        s.record_read(false);
        s.record_read(false);
        s.record_write(true);
        s.record_write(false);
        assert!((s.read_hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.reads(), 3);
        assert_eq!(s.writes(), 2);
        assert!((s.overall_hit_ratio() - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn add_assign_sums_fields() {
        let mut a = CacheStats {
            read_hits: 1,
            read_misses: 2,
            write_hits: 3,
            write_misses: 4,
            evictions: 5,
            bypasses: 6,
        };
        let b = a;
        a += b;
        assert_eq!(a.read_hits, 2);
        assert_eq!(a.read_misses, 4);
        assert_eq!(a.write_hits, 6);
        assert_eq!(a.write_misses, 8);
        assert_eq!(a.evictions, 10);
        assert_eq!(a.bypasses, 12);
    }

    #[test]
    fn display_contains_hit_ratio() {
        let mut s = CacheStats::new();
        s.record_read(true);
        let text = s.to_string();
        assert!(text.contains("100.00%"));
    }

    #[test]
    fn io_stats_ratios_and_sums() {
        let empty = IoStats::new();
        assert_eq!(empty.buffer_hit_ratio(), 0.0);
        assert_eq!(empty.bytes_moved(), 0);
        let mut a = IoStats {
            bytes_read: 8192,
            bytes_written: 4096,
            buffer_hits: 3,
            buffer_misses: 1,
            disk_reads: 1,
            disk_writes: 2,
            disk_bytes_read: 4096,
            disk_bytes_written: 8192,
            pages_flushed: 2,
            eviction_flushes: 1,
            wal_records: 1,
            wal_bytes: 4113,
            data_syncs: 2,
            wal_syncs: 3,
            group_commits: 1,
        };
        assert!((a.buffer_hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(a.reads(), 4);
        assert_eq!(a.bytes_moved(), 12_288);
        assert_eq!(a.fsyncs(), 5);
        let b = a;
        a += b;
        assert_eq!(a.buffer_hits, 6);
        assert_eq!(a.wal_bytes, 8226);
        assert_eq!(a.fsyncs(), 10);
        assert_eq!(a.group_commits, 2);
        assert_eq!((b + b).disk_writes, 4);
        let text = a.to_string();
        assert!(text.contains("75.00%"));
    }
}
