//! CLOCK (second-chance) replacement.

use std::collections::HashMap;

use crate::policy::{AccessOutcome, CachePolicy};
use crate::request::{PageId, Request};

/// CLOCK approximates LRU with a circular buffer and per-page reference bits:
/// on a hit the page's bit is set; on a miss the clock hand sweeps forward,
/// clearing set bits, and replaces the first page whose bit is clear.
#[derive(Debug, Clone)]
pub struct Clock {
    capacity: usize,
    // One slot per frame; `None` until the cache fills up.
    frames: Vec<Option<(PageId, bool)>>,
    index: HashMap<PageId, usize>,
    hand: usize,
}

impl Clock {
    /// Creates a CLOCK cache holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Clock {
            capacity,
            frames: vec![None; capacity],
            index: HashMap::with_capacity(capacity),
            hand: 0,
        }
    }

    fn advance_to_victim(&mut self) -> usize {
        loop {
            let slot = self.hand;
            match &mut self.frames[slot] {
                Some((_, referenced)) if *referenced => {
                    *referenced = false;
                    self.hand = (self.hand + 1) % self.capacity;
                }
                _ => return slot,
            }
        }
    }
}

impl CachePolicy for Clock {
    fn name(&self) -> String {
        "CLOCK".to_string()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, req: &Request, _seq: u64) -> AccessOutcome {
        if let Some(&slot) = self.index.get(&req.page) {
            if let Some((_, referenced)) = &mut self.frames[slot] {
                *referenced = true;
            }
            return AccessOutcome::hit();
        }
        let slot = self.advance_to_victim();
        let mut evicted = 0;
        if let Some((old, _)) = self.frames[slot].take() {
            self.index.remove(&old);
            evicted = 1;
        }
        self.frames[slot] = Some((req.page, false));
        self.index.insert(req.page, slot);
        self.hand = (slot + 1) % self.capacity;
        AccessOutcome::miss(evicted)
    }

    fn contains(&self, page: PageId) -> bool {
        self.index.contains_key(&page)
    }

    fn len(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ClientId;
    use crate::HintSetId;

    fn read(page: u64) -> Request {
        Request::read(ClientId(0), PageId(page), HintSetId(0))
    }

    #[test]
    fn referenced_pages_get_a_second_chance() {
        let mut clock = Clock::new(2);
        clock.access(&read(1), 0);
        clock.access(&read(2), 1);
        // Reference page 1 so its bit is set.
        assert!(clock.access(&read(1), 2).hit);
        // Miss on page 3: hand is at slot 0 (page 1, referenced) so page 1 is
        // spared, its bit cleared, and page 2 (unreferenced) is evicted.
        clock.access(&read(3), 3);
        assert!(clock.contains(PageId(1)));
        assert!(!clock.contains(PageId(2)));
        assert!(clock.contains(PageId(3)));
    }

    #[test]
    fn fills_before_evicting() {
        let mut clock = Clock::new(3);
        for p in 0..3 {
            let out = clock.access(&read(p), p);
            assert_eq!(out.evicted, 0);
        }
        assert_eq!(clock.len(), 3);
        let out = clock.access(&read(10), 4);
        assert_eq!(out.evicted, 1);
        assert_eq!(clock.len(), 3);
    }

    #[test]
    fn all_referenced_degenerates_to_fifo_sweep() {
        let mut clock = Clock::new(2);
        clock.access(&read(1), 0);
        clock.access(&read(2), 1);
        clock.access(&read(1), 2);
        clock.access(&read(2), 3);
        // Both referenced: the hand clears both bits and evicts the first.
        clock.access(&read(3), 4);
        assert_eq!(clock.len(), 2);
        assert!(clock.contains(PageId(3)));
    }
}
