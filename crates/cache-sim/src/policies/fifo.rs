//! First-in first-out replacement.

use crate::policies::util::OrderedPageSet;
use crate::policy::{AccessOutcome, CachePolicy};
use crate::request::{PageId, Request};

/// FIFO replacement: pages are evicted in admission order, irrespective of
/// how recently or frequently they were used. Included as the simplest
/// possible baseline and as a building block for sanity checks.
#[derive(Debug, Clone)]
pub struct Fifo {
    capacity: usize,
    pages: OrderedPageSet,
}

impl Fifo {
    /// Creates a FIFO cache holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Fifo {
            capacity,
            pages: OrderedPageSet::with_capacity(capacity),
        }
    }
}

impl CachePolicy for Fifo {
    fn name(&self) -> String {
        "FIFO".to_string()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, req: &Request, _seq: u64) -> AccessOutcome {
        if self.pages.contains(req.page) {
            return AccessOutcome::hit();
        }
        let mut evicted = 0;
        if self.pages.len() >= self.capacity {
            self.pages.pop_front();
            evicted = 1;
        }
        self.pages.push_back(req.page);
        AccessOutcome::miss(evicted)
    }

    fn contains(&self, page: PageId) -> bool {
        self.pages.contains(page)
    }

    fn len(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ClientId;
    use crate::HintSetId;

    fn read(page: u64) -> Request {
        Request::read(ClientId(0), PageId(page), HintSetId(0))
    }

    #[test]
    fn evicts_in_admission_order_even_if_reused() {
        let mut fifo = Fifo::new(2);
        fifo.access(&read(1), 0);
        fifo.access(&read(2), 1);
        // Re-reading page 1 does not protect it under FIFO.
        assert!(fifo.access(&read(1), 2).hit);
        fifo.access(&read(3), 3);
        assert!(!fifo.contains(PageId(1)));
        assert!(fifo.contains(PageId(2)));
        assert!(fifo.contains(PageId(3)));
    }

    #[test]
    fn capacity_is_respected() {
        let mut fifo = Fifo::new(3);
        for p in 0..10 {
            fifo.access(&read(p), p);
        }
        assert_eq!(fifo.len(), 3);
    }
}
