//! Least-frequently-used replacement.

use std::collections::{BTreeSet, HashMap};

use crate::policy::{AccessOutcome, CachePolicy};
use crate::request::{PageId, Request};

/// In-cache LFU: evicts the page with the fewest accesses since it was
/// admitted, breaking ties by least-recent use. Frequency counts are dropped
/// on eviction (no "perfect LFU" history), which is the common in-memory
/// variant.
#[derive(Debug, Clone, Default)]
pub struct Lfu {
    capacity: usize,
    // page -> (frequency, last access seq)
    meta: HashMap<PageId, (u64, u64)>,
    // ordered by (frequency, last access seq, page): the minimum is the victim.
    order: BTreeSet<(u64, u64, PageId)>,
}

impl Lfu {
    /// Creates an LFU cache holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Lfu {
            capacity,
            meta: HashMap::with_capacity(capacity),
            order: BTreeSet::new(),
        }
    }
}

impl CachePolicy for Lfu {
    fn name(&self) -> String {
        "LFU".to_string()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, req: &Request, seq: u64) -> AccessOutcome {
        if let Some(&(freq, last)) = self.meta.get(&req.page) {
            self.order.remove(&(freq, last, req.page));
            let updated = (freq + 1, seq);
            self.meta.insert(req.page, updated);
            self.order.insert((updated.0, updated.1, req.page));
            return AccessOutcome::hit();
        }
        let mut evicted = 0;
        if self.meta.len() >= self.capacity {
            if let Some(&victim) = self.order.iter().next() {
                self.order.remove(&victim);
                self.meta.remove(&victim.2);
                evicted = 1;
            }
        }
        self.meta.insert(req.page, (1, seq));
        self.order.insert((1, seq, req.page));
        AccessOutcome::miss(evicted)
    }

    fn contains(&self, page: PageId) -> bool {
        self.meta.contains_key(&page)
    }

    fn len(&self) -> usize {
        self.meta.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ClientId;
    use crate::HintSetId;

    fn read(page: u64) -> Request {
        Request::read(ClientId(0), PageId(page), HintSetId(0))
    }

    #[test]
    fn evicts_least_frequent() {
        let mut lfu = Lfu::new(2);
        lfu.access(&read(1), 0);
        lfu.access(&read(1), 1);
        lfu.access(&read(1), 2);
        lfu.access(&read(2), 3);
        // Page 2 has frequency 1, page 1 frequency 3 -> 2 is evicted.
        lfu.access(&read(3), 4);
        assert!(lfu.contains(PageId(1)));
        assert!(!lfu.contains(PageId(2)));
        assert!(lfu.contains(PageId(3)));
    }

    #[test]
    fn ties_broken_by_recency() {
        let mut lfu = Lfu::new(2);
        lfu.access(&read(1), 0);
        lfu.access(&read(2), 1);
        // Both have frequency 1; page 1 was used longer ago -> it is evicted.
        lfu.access(&read(3), 2);
        assert!(!lfu.contains(PageId(1)));
        assert!(lfu.contains(PageId(2)));
    }

    #[test]
    fn metadata_stays_consistent() {
        let mut lfu = Lfu::new(4);
        for i in 0..100u64 {
            lfu.access(&read(i % 7), i);
            assert_eq!(lfu.meta.len(), lfu.order.len());
            assert!(lfu.len() <= 4);
        }
    }
}
