//! 2Q replacement (Johnson & Shasha, VLDB '94).

use crate::policies::util::OrderedPageSet;
use crate::policy::{AccessOutcome, CachePolicy};
use crate::request::{PageId, Request};

/// The full 2Q algorithm: newly admitted pages enter a small FIFO probation
/// queue `A1in`; pages evicted from `A1in` are remembered (by id only) in the
/// ghost queue `A1out`; a page that is requested again while in `A1out` is
/// judged to have long-term value and is promoted into the main LRU queue
/// `Am`.
///
/// The standard tuning from the paper is used: `Kin = capacity / 4` and
/// `Kout = capacity / 2`.
#[derive(Debug, Clone)]
pub struct TwoQ {
    capacity: usize,
    kin: usize,
    kout: usize,
    a1in: OrderedPageSet,
    a1out: OrderedPageSet,
    am: OrderedPageSet,
}

impl TwoQ {
    /// Creates a 2Q cache holding at most `capacity` pages, with the standard
    /// `Kin = capacity/4`, `Kout = capacity/2` tuning.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        TwoQ {
            capacity,
            kin: (capacity / 4).max(1),
            kout: (capacity / 2).max(1),
            a1in: OrderedPageSet::new(),
            a1out: OrderedPageSet::new(),
            am: OrderedPageSet::new(),
        }
    }

    /// Creates a 2Q cache with explicit probation (`kin`) and ghost (`kout`)
    /// queue sizes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `kin` is zero.
    pub fn with_tuning(capacity: usize, kin: usize, kout: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(kin > 0, "kin must be positive");
        TwoQ {
            capacity,
            kin,
            kout: kout.max(1),
            a1in: OrderedPageSet::new(),
            a1out: OrderedPageSet::new(),
            am: OrderedPageSet::new(),
        }
    }

    /// Frees one page slot if the cache is full. Returns the number of pages
    /// evicted (0 or 1).
    fn reclaim(&mut self) -> u32 {
        if self.a1in.len() + self.am.len() < self.capacity {
            return 0;
        }
        if self.a1in.len() > self.kin {
            if let Some(victim) = self.a1in.pop_front() {
                self.a1out.push_back(victim);
                if self.a1out.len() > self.kout {
                    self.a1out.pop_front();
                }
                return 1;
            }
        }
        if self.am.pop_front().is_some() {
            return 1;
        }
        // Am empty: fall back to evicting from A1in even if it is small.
        if let Some(victim) = self.a1in.pop_front() {
            self.a1out.push_back(victim);
            if self.a1out.len() > self.kout {
                self.a1out.pop_front();
            }
            return 1;
        }
        0
    }
}

impl CachePolicy for TwoQ {
    fn name(&self) -> String {
        "2Q".to_string()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, req: &Request, _seq: u64) -> AccessOutcome {
        let x = req.page;
        if self.am.touch(x) {
            return AccessOutcome::hit();
        }
        if self.a1in.contains(x) {
            // 2Q deliberately does not reorder A1in on a hit.
            return AccessOutcome::hit();
        }
        let evicted;
        if self.a1out.contains(x) {
            evicted = self.reclaim();
            self.a1out.remove(x);
            self.am.push_back(x);
        } else {
            evicted = self.reclaim();
            self.a1in.push_back(x);
        }
        AccessOutcome {
            hit: false,
            evicted,
            bypassed: false,
        }
    }

    fn contains(&self, page: PageId) -> bool {
        self.a1in.contains(page) || self.am.contains(page)
    }

    fn len(&self) -> usize {
        self.a1in.len() + self.am.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ClientId;
    use crate::HintSetId;

    fn read(page: u64) -> Request {
        Request::read(ClientId(0), PageId(page), HintSetId(0))
    }

    #[test]
    fn second_reference_after_probation_promotes_to_am() {
        let mut q = TwoQ::with_tuning(4, 1, 4);
        q.access(&read(1), 0);
        // Fill past Kin so page 1 falls out of A1in into A1out.
        q.access(&read(2), 1);
        q.access(&read(3), 2);
        q.access(&read(4), 3);
        q.access(&read(5), 4);
        assert!(q.a1out.contains(PageId(1)) || q.a1in.contains(PageId(1)));
        if q.a1out.contains(PageId(1)) {
            q.access(&read(1), 5);
            assert!(q.am.contains(PageId(1)), "ghost hit must promote into Am");
        }
    }

    #[test]
    fn one_shot_scan_does_not_pollute_am() {
        let mut q = TwoQ::new(8);
        // Establish a hot page in Am.
        q.access(&read(1), 0);
        for p in 10..18u64 {
            q.access(&read(p), p);
        }
        q.access(&read(1), 100); // ghost or probation hit promotes eventually
        q.access(&read(1), 101);
        // Long one-shot scan.
        for p in 1000..1100u64 {
            q.access(&read(p), p);
        }
        assert!(q.len() <= 8);
        // Scanned pages never reach Am (they are seen only once).
        for p in 1000..1100u64 {
            assert!(!q.am.contains(PageId(p)));
        }
    }

    #[test]
    fn capacity_respected() {
        let mut q = TwoQ::new(4);
        for i in 0..200u64 {
            q.access(&read(i % 13), i);
            assert!(q.len() <= 4);
            assert!(q.a1out.len() <= 2);
        }
    }

    #[test]
    #[should_panic(expected = "kin")]
    fn zero_kin_rejected() {
        let _ = TwoQ::with_tuning(4, 0, 2);
    }
}
