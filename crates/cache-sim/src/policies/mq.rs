//! MQ: the Multi-Queue second-tier replacement policy (Zhou, Chen & Li).

use std::collections::HashMap;

use crate::policies::util::OrderedPageSet;
use crate::policy::{AccessOutcome, CachePolicy};
use crate::request::{PageId, Request};

/// Number of frequency-tiered queues used by MQ (the published default).
const NUM_QUEUES: usize = 8;

/// MQ was designed specifically for second-tier caches: it maintains several
/// LRU queues tiered by access frequency, promotes pages to higher queues as
/// their frequency grows, demotes pages whose *lifetime* expires without a
/// new access, and remembers evicted pages' frequencies in a ghost buffer so
/// that a returning page resumes its old frequency.
///
/// The paper cites MQ as the prior state of the art among hint-oblivious
/// second-tier policies (TQ was shown to beat it when write hints exist);
/// it is included here for extended comparisons.
#[derive(Debug, Clone)]
pub struct Mq {
    capacity: usize,
    life_time: u64,
    queues: Vec<OrderedPageSet>,
    // page -> (frequency, expiration time, queue index)
    meta: HashMap<PageId, PageMeta>,
    // ghost buffer: page -> remembered frequency, plus FIFO order for bounding.
    ghost_freq: HashMap<PageId, u64>,
    ghost_order: OrderedPageSet,
    ghost_capacity: usize,
    current_time: u64,
}

#[derive(Debug, Clone, Copy)]
struct PageMeta {
    frequency: u64,
    expires_at: u64,
    queue: usize,
}

impl Mq {
    /// Creates an MQ cache holding at most `capacity` pages, with the
    /// lifetime parameter defaulting to `4 * capacity` requests and a ghost
    /// buffer of `4 * capacity` page ids.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::with_lifetime(capacity, (capacity as u64) * 4)
    }

    /// Creates an MQ cache with an explicit lifetime parameter (the number of
    /// requests a page may stay in its queue without being re-referenced
    /// before it is demoted one level).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_lifetime(capacity: usize, life_time: u64) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Mq {
            capacity,
            life_time: life_time.max(1),
            queues: (0..NUM_QUEUES).map(|_| OrderedPageSet::new()).collect(),
            meta: HashMap::with_capacity(capacity),
            ghost_freq: HashMap::new(),
            ghost_order: OrderedPageSet::new(),
            ghost_capacity: capacity * 4,
            current_time: 0,
        }
    }

    fn queue_for_frequency(frequency: u64) -> usize {
        let level = 64 - frequency.max(1).leading_zeros() as usize - 1; // floor(log2)
        level.min(NUM_QUEUES - 1)
    }

    /// Demotes expired pages at the head of each non-bottom queue. Only a
    /// constant amount of work is done per call, as in the published
    /// algorithm.
    fn adjust(&mut self) {
        for q in (1..NUM_QUEUES).rev() {
            let Some(head) = self.queues[q].front() else {
                continue;
            };
            let meta = self.meta.get_mut(&head).expect("queued page has metadata");
            if meta.expires_at < self.current_time {
                self.queues[q].remove(head);
                meta.queue = q - 1;
                meta.expires_at = self.current_time + self.life_time;
                self.queues[q - 1].push_back(head);
                // One demotion per adjust() keeps the per-request cost O(1).
                return;
            }
        }
    }

    fn evict_one(&mut self) -> bool {
        for q in 0..NUM_QUEUES {
            if let Some(victim) = self.queues[q].pop_front() {
                let meta = self.meta.remove(&victim).expect("victim has metadata");
                // Remember its frequency in the ghost buffer.
                if self.ghost_capacity > 0 {
                    if self.ghost_order.len() >= self.ghost_capacity {
                        if let Some(expired) = self.ghost_order.pop_front() {
                            self.ghost_freq.remove(&expired);
                        }
                    }
                    self.ghost_order.push_back(victim);
                    self.ghost_freq.insert(victim, meta.frequency);
                }
                return true;
            }
        }
        false
    }

    fn insert(&mut self, page: PageId, frequency: u64) {
        let queue = Self::queue_for_frequency(frequency);
        self.meta.insert(
            page,
            PageMeta {
                frequency,
                expires_at: self.current_time + self.life_time,
                queue,
            },
        );
        self.queues[queue].push_back(page);
    }
}

impl CachePolicy for Mq {
    fn name(&self) -> String {
        "MQ".to_string()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, req: &Request, _seq: u64) -> AccessOutcome {
        self.current_time += 1;
        self.adjust();
        let x = req.page;
        if let Some(meta) = self.meta.get(&x).copied() {
            // Hit: bump frequency, possibly promote, refresh expiration.
            self.queues[meta.queue].remove(x);
            let frequency = meta.frequency + 1;
            self.insert(x, frequency);
            return AccessOutcome::hit();
        }
        let mut evicted = 0;
        if self.meta.len() >= self.capacity && self.evict_one() {
            evicted = 1;
        }
        let remembered = self.ghost_freq.get(&x).copied().unwrap_or(0);
        if remembered > 0 {
            self.ghost_freq.remove(&x);
            self.ghost_order.remove(x);
        }
        self.insert(x, remembered + 1);
        AccessOutcome {
            hit: false,
            evicted,
            bypassed: false,
        }
    }

    fn contains(&self, page: PageId) -> bool {
        self.meta.contains_key(&page)
    }

    fn len(&self) -> usize {
        self.meta.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ClientId;
    use crate::HintSetId;

    fn read(page: u64) -> Request {
        Request::read(ClientId(0), PageId(page), HintSetId(0))
    }

    #[test]
    fn queue_index_is_log2_of_frequency() {
        assert_eq!(Mq::queue_for_frequency(1), 0);
        assert_eq!(Mq::queue_for_frequency(2), 1);
        assert_eq!(Mq::queue_for_frequency(3), 1);
        assert_eq!(Mq::queue_for_frequency(4), 2);
        assert_eq!(Mq::queue_for_frequency(255), 7);
        assert_eq!(Mq::queue_for_frequency(1 << 30), NUM_QUEUES - 1);
    }

    #[test]
    fn frequent_pages_outlive_infrequent_ones() {
        let mut mq = Mq::new(4);
        // Page 1 accessed many times -> high queue.
        for i in 0..8u64 {
            mq.access(&read(1), i);
        }
        // Fill with one-shot pages; page 1 should survive because victims are
        // taken from the lowest queue first.
        for p in 10..20u64 {
            mq.access(&read(p), 100 + p);
        }
        assert!(mq.contains(PageId(1)));
        assert_eq!(mq.len(), 4);
    }

    #[test]
    fn ghost_buffer_restores_frequency() {
        let mut mq = Mq::new(1);
        for i in 0..6u64 {
            mq.access(&read(1), i);
        }
        // The single-slot cache must evict page 1 (frequency 6) to admit page 2.
        mq.access(&read(2), 10);
        assert!(!mq.contains(PageId(1)));
        // Bring page 1 back: its remembered frequency is restored from the
        // ghost buffer rather than restarting at 1.
        mq.access(&read(1), 13);
        let meta = mq.meta.get(&PageId(1)).unwrap();
        assert!(meta.frequency > 1, "ghost frequency was not restored");
        assert!(
            meta.queue >= 2,
            "restored frequency should map to a high queue"
        );
    }

    #[test]
    fn expired_pages_are_demoted() {
        let mut mq = Mq::with_lifetime(4, 2);
        for i in 0..4u64 {
            mq.access(&read(1), i);
        }
        let q_before = mq.meta.get(&PageId(1)).unwrap().queue;
        assert!(q_before >= 1);
        // Touch other pages so page 1 expires and adjust() demotes it.
        for i in 0..20u64 {
            mq.access(&read(100 + i % 3), 10 + i);
        }
        let q_after = mq.meta.get(&PageId(1)).map(|m| m.queue);
        if let Some(q_after) = q_after {
            assert!(
                q_after < q_before,
                "expected demotion from {q_before} to below"
            );
        }
    }

    #[test]
    fn capacity_and_ghost_bounds_hold() {
        let mut mq = Mq::new(8);
        for i in 0..2000u64 {
            mq.access(&read(i % 37), i);
            assert!(mq.len() <= 8);
            assert!(mq.ghost_order.len() <= 32);
            assert_eq!(mq.ghost_freq.len(), mq.ghost_order.len());
        }
    }
}
