//! Baseline replacement policies.
//!
//! The policies the paper evaluates against CLIC:
//!
//! * [`Opt`] — the offline optimal MIN algorithm of Belady (upper bound),
//! * [`Lru`] — least recently used,
//! * [`Arc`] — adaptive replacement cache (Megiddo & Modha, FAST '03),
//! * [`Tq`] — the write-hint-aware second-tier policy of Li et al. (FAST '05).
//!
//! Additional classical policies provided for broader comparisons and for the
//! related-work ablations: [`Fifo`], [`Clock`], [`Lfu`], [`TwoQ`] (Johnson &
//! Shasha, VLDB '94), [`Mq`] (Zhou et al., second-tier multi-queue), and
//! [`Car`] (Bansal & Modha, FAST '04).

mod arc;
mod car;
mod clock;
mod fifo;
mod lfu;
mod lru;
mod mq;
mod opt;
mod tq;
mod two_q;
pub mod util;

pub use arc::Arc;
pub use car::Car;
pub use clock::Clock;
pub use fifo::Fifo;
pub use lfu::Lfu;
pub use lru::Lru;
pub use mq::Mq;
pub use opt::Opt;
pub use tq::Tq;
pub use two_q::TwoQ;

use crate::policy::{BoxedPolicy, PolicyFactory};

/// Factory for the named baseline policies, convenient for sweeps and for the
/// benchmark harness.
///
/// `OPT` cannot be built through this factory because it needs the trace's
/// [`crate::NextUseOracle`]; construct it explicitly with [`Opt::from_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselinePolicy {
    /// Least recently used.
    Lru,
    /// First in, first out.
    Fifo,
    /// CLOCK (second chance).
    Clock,
    /// Least frequently used.
    Lfu,
    /// 2Q (Johnson & Shasha).
    TwoQ,
    /// Multi-queue (Zhou, Chen & Li).
    Mq,
    /// Adaptive replacement cache.
    Arc,
    /// Clock with adaptive replacement.
    Car,
    /// Write-hint-aware TQ.
    Tq,
}

impl BaselinePolicy {
    /// All baseline policies, in a stable order.
    pub const ALL: [BaselinePolicy; 9] = [
        BaselinePolicy::Lru,
        BaselinePolicy::Fifo,
        BaselinePolicy::Clock,
        BaselinePolicy::Lfu,
        BaselinePolicy::TwoQ,
        BaselinePolicy::Mq,
        BaselinePolicy::Arc,
        BaselinePolicy::Car,
        BaselinePolicy::Tq,
    ];

    /// The policy's display name.
    pub fn name(self) -> &'static str {
        match self {
            BaselinePolicy::Lru => "LRU",
            BaselinePolicy::Fifo => "FIFO",
            BaselinePolicy::Clock => "CLOCK",
            BaselinePolicy::Lfu => "LFU",
            BaselinePolicy::TwoQ => "2Q",
            BaselinePolicy::Mq => "MQ",
            BaselinePolicy::Arc => "ARC",
            BaselinePolicy::Car => "CAR",
            BaselinePolicy::Tq => "TQ",
        }
    }

    /// Parses a policy from its display name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        let upper = name.to_ascii_uppercase();
        Self::ALL.iter().copied().find(|p| p.name() == upper)
    }

    /// Builds an instance of the policy with the given capacity.
    pub fn build(self, capacity: usize) -> BoxedPolicy {
        match self {
            BaselinePolicy::Lru => Box::new(Lru::new(capacity)),
            BaselinePolicy::Fifo => Box::new(Fifo::new(capacity)),
            BaselinePolicy::Clock => Box::new(Clock::new(capacity)),
            BaselinePolicy::Lfu => Box::new(Lfu::new(capacity)),
            BaselinePolicy::TwoQ => Box::new(TwoQ::new(capacity)),
            BaselinePolicy::Mq => Box::new(Mq::new(capacity)),
            BaselinePolicy::Arc => Box::new(Arc::new(capacity)),
            BaselinePolicy::Car => Box::new(Car::new(capacity)),
            BaselinePolicy::Tq => Box::new(Tq::new(capacity)),
        }
    }
}

impl PolicyFactory for BaselinePolicy {
    fn name(&self) -> String {
        BaselinePolicy::name(*self).to_string()
    }

    fn build(&self, capacity: usize) -> BoxedPolicy {
        BaselinePolicy::build(*self, capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{AccessKind, ClientId, PageId, Request, WriteHint};
    use crate::trace::{Trace, TraceBuilder};
    use crate::{simulate, HintSetId};

    /// Every baseline policy must respect its capacity and behave sanely on a
    /// common workload; these tests run the whole enum to catch regressions
    /// in any one policy.
    fn mixed_trace(pages: u64, requests: usize, seed: u64) -> Trace {
        // Small deterministic LCG so we do not need the `rand` crate here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut b = TraceBuilder::new().with_name("mixed");
        let c = b.add_client("t", &[("kind", 4)]);
        let hints: Vec<HintSetId> = (0..4).map(|v| b.intern_hints(c, &[v])).collect();
        for _ in 0..requests {
            let r = next();
            // Zipf-ish skew: half the requests hit the first 10% of pages.
            let page = if r % 2 == 0 {
                r % (pages / 10).max(1)
            } else {
                r % pages
            };
            let kind = if next() % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let wh = if kind == AccessKind::Write {
                Some(match next() % 3 {
                    0 => WriteHint::Replacement,
                    1 => WriteHint::Recovery,
                    _ => WriteHint::Synchronous,
                })
            } else {
                None
            };
            b.push(c, page, kind, wh, hints[(next() % 4) as usize]);
        }
        b.build()
    }

    #[test]
    fn all_policies_respect_capacity() {
        let trace = mixed_trace(500, 4000, 42);
        for kind in BaselinePolicy::ALL {
            let mut policy = kind.build(64);
            for (seq, req) in trace.iter() {
                policy.access(req, seq);
                assert!(
                    policy.len() <= policy.capacity(),
                    "{} exceeded capacity: {} > {}",
                    policy.name(),
                    policy.len(),
                    policy.capacity()
                );
            }
        }
    }

    #[test]
    fn all_policies_report_hits_consistently_with_contains() {
        let trace = mixed_trace(200, 2000, 7);
        for kind in BaselinePolicy::ALL {
            let mut policy = kind.build(32);
            for (seq, req) in trace.iter() {
                let was_cached = policy.contains(req.page);
                let outcome = policy.access(req, seq);
                assert_eq!(
                    outcome.hit,
                    was_cached,
                    "{}: hit flag must equal pre-access membership at seq {}",
                    policy.name(),
                    seq
                );
            }
        }
    }

    #[test]
    fn all_policies_get_hits_on_skewed_workload() {
        let trace = mixed_trace(400, 6000, 1);
        for kind in BaselinePolicy::ALL {
            let mut policy = kind.build(128);
            let res = simulate(policy.as_mut(), &trace);
            assert!(
                res.stats.read_hits > 0,
                "{} produced no hits on a skewed workload",
                kind.name()
            );
        }
    }

    #[test]
    fn single_page_cache_works_for_every_policy() {
        for kind in BaselinePolicy::ALL {
            let mut policy = kind.build(1);
            let h = HintSetId(0);
            let a = Request::read(ClientId(0), PageId(1), h);
            let b = Request::read(ClientId(0), PageId(2), h);
            policy.access(&a, 0);
            policy.access(&b, 1);
            let out = policy.access(&a, 2);
            assert!(policy.len() <= 1, "{}", kind.name());
            // With a one-page cache and alternating pages, the second access
            // to `a` cannot be a hit unless the policy bypassed `b`.
            if out.hit {
                assert!(policy.contains(PageId(1)));
            }
        }
    }

    #[test]
    fn from_name_roundtrip() {
        for kind in BaselinePolicy::ALL {
            assert_eq!(BaselinePolicy::from_name(kind.name()), Some(kind));
            assert_eq!(
                BaselinePolicy::from_name(&kind.name().to_ascii_lowercase()),
                Some(kind)
            );
        }
        assert_eq!(BaselinePolicy::from_name("nope"), None);
    }
}
