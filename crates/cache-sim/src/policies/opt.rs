//! OPT: Belady's offline MIN algorithm (upper bound).

use std::collections::{BTreeSet, HashMap};

use crate::oracle::{NextUseOracle, NEVER};
use crate::policy::{AccessOutcome, CachePolicy};
use crate::request::{PageId, Request};
use crate::trace::Trace;

/// The offline optimal replacement policy: on every request it knows (via a
/// precomputed [`NextUseOracle`]) when each page will next be *read*, evicts
/// the cached page whose next read is farthest in the future, and declines to
/// cache pages that will be read later than everything already cached
/// (bypass). Its read hit ratio upper-bounds every realizable policy, which
/// is exactly how the paper uses it.
///
/// `Opt` can only be constructed for a specific trace (it needs the future);
/// use [`Opt::from_trace`] or [`Opt::with_oracle`].
#[derive(Debug)]
pub struct Opt {
    capacity: usize,
    // page -> next read position
    cached: HashMap<PageId, u64>,
    // (next read position, page) ordered so the max is the eviction victim
    order: BTreeSet<(u64, PageId)>,
    oracle: NextUseOracle,
}

impl Opt {
    /// Builds OPT for `trace`, constructing the next-use oracle internally.
    pub fn from_trace(trace: &Trace, capacity: usize) -> Self {
        Self::with_oracle(NextUseOracle::build(trace), capacity)
    }

    /// Builds OPT from an already-computed oracle (useful when simulating the
    /// same trace at several cache sizes).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_oracle(oracle: NextUseOracle, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Opt {
            capacity,
            cached: HashMap::with_capacity(capacity),
            order: BTreeSet::new(),
            oracle,
        }
    }
}

impl CachePolicy for Opt {
    fn name(&self) -> String {
        "OPT".to_string()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, req: &Request, seq: u64) -> AccessOutcome {
        let x = req.page;
        let next = self.oracle.next_read(seq);

        if let Some(&old_next) = self.cached.get(&x) {
            // Hit (or write to a cached page): update its next-read key.
            self.order.remove(&(old_next, x));
            if next == NEVER {
                // The page will never be read again; there is no reason to
                // keep it. Dropping it frees a slot for useful pages.
                self.cached.remove(&x);
            } else {
                self.cached.insert(x, next);
                self.order.insert((next, x));
            }
            return AccessOutcome::hit();
        }

        // Miss. A page that will never be read again is never worth caching.
        if next == NEVER {
            return AccessOutcome::bypass();
        }

        if self.cached.len() >= self.capacity {
            // Compare against the cached page with the farthest next read.
            let &(far_next, far_page) = self
                .order
                .iter()
                .next_back()
                .expect("cache is full so order is non-empty");
            if far_next <= next {
                // Everything cached is read sooner than the new page: bypass.
                return AccessOutcome::bypass();
            }
            self.order.remove(&(far_next, far_page));
            self.cached.remove(&far_page);
            self.cached.insert(x, next);
            self.order.insert((next, x));
            return AccessOutcome::miss(1);
        }

        self.cached.insert(x, next);
        self.order.insert((next, x));
        AccessOutcome::miss(0)
    }

    fn contains(&self, page: PageId) -> bool {
        self.cached.contains_key(&page)
    }

    fn len(&self) -> usize {
        self.cached.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{Arc, Lru};
    use crate::request::AccessKind;
    use crate::simulate;
    use crate::trace::TraceBuilder;

    fn trace_from_pages(pages: &[u64]) -> Trace {
        let mut b = TraceBuilder::new();
        let c = b.add_client("t", &[("x", 1)]);
        let h = b.intern_hints(c, &[0]);
        for &p in pages {
            b.push(c, p, AccessKind::Read, None, h);
        }
        b.build()
    }

    #[test]
    fn belady_beats_lru_on_cyclic_scan() {
        // The classic case: cyclic scan of N+1 pages with an N-page cache.
        let pattern: Vec<u64> = (0..5u64).cycle().take(50).collect();
        let trace = trace_from_pages(&pattern);
        let mut opt = Opt::from_trace(&trace, 4);
        let mut lru = Lru::new(4);
        let opt_res = simulate(&mut opt, &trace);
        let lru_res = simulate(&mut lru, &trace);
        assert_eq!(lru_res.stats.read_hits, 0);
        assert!(
            opt_res.stats.read_hits > 30,
            "OPT should hit most of the scan"
        );
    }

    #[test]
    fn opt_upper_bounds_online_policies() {
        // Pseudo-random workload; OPT must dominate LRU and ARC.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % 200
        };
        let pages: Vec<u64> = (0..5000).map(|_| next()).collect();
        let trace = trace_from_pages(&pages);
        for cap in [8usize, 32, 64] {
            let mut opt = Opt::from_trace(&trace, cap);
            let mut lru = Lru::new(cap);
            let mut arc = Arc::new(cap);
            let opt_hits = simulate(&mut opt, &trace).stats.read_hits;
            let lru_hits = simulate(&mut lru, &trace).stats.read_hits;
            let arc_hits = simulate(&mut arc, &trace).stats.read_hits;
            assert!(
                opt_hits >= lru_hits,
                "cap {cap}: OPT {opt_hits} < LRU {lru_hits}"
            );
            assert!(
                opt_hits >= arc_hits,
                "cap {cap}: OPT {opt_hits} < ARC {arc_hits}"
            );
        }
    }

    #[test]
    fn never_read_pages_are_bypassed() {
        let trace = trace_from_pages(&[1, 2, 1, 2, 3]);
        let mut opt = Opt::from_trace(&trace, 1);
        let res = simulate(&mut opt, &trace);
        // Page 3 (and the final reads of 1 and 2) are never read again, so
        // bypasses must be recorded.
        assert!(res.stats.bypasses > 0);
        assert!(opt.len() <= 1);
    }

    #[test]
    fn writes_do_not_count_as_future_reuse() {
        let mut b = TraceBuilder::new();
        let c = b.add_client("t", &[("x", 1)]);
        let h = b.intern_hints(c, &[0]);
        b.push(c, 1, AccessKind::Read, None, h);
        b.push(c, 2, AccessKind::Read, None, h);
        // Page 1 is only *written* later; page 2 is *read* later.
        b.push(c, 1, AccessKind::Write, None, h);
        b.push(c, 2, AccessKind::Read, None, h);
        let trace = b.build();
        let mut opt = Opt::from_trace(&trace, 1);
        let res = simulate(&mut opt, &trace);
        // The single cache slot must be used for page 2, producing one read hit.
        assert_eq!(res.stats.read_hits, 1);
    }
}
