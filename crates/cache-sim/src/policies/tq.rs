//! TQ: the write-hint-aware second-tier policy of Li et al. (FAST '05).
//!
//! TQ is the paper's representative of the *ad hoc* hint-based state of the
//! art: it understands exactly one kind of hint — the write hint attached to
//! write requests by a database system — and hard-codes its response to it.
//!
//! This module reimplements TQ from its published description (the original
//! implementation is not available). The essential hard-coded behaviour is:
//!
//! * **Replacement writes** signal pages that are being evicted from the
//!   client's buffer pool and are therefore likely to be read again from the
//!   server — they are the best caching candidates and are kept longest.
//! * **Synchronous writes** are replacement writes issued under buffer-pool
//!   pressure; they are also good candidates, slightly behind asynchronous
//!   replacement writes because the client may re-read them sooner than the
//!   server can benefit.
//! * **Recovery writes** are issued for checkpointing while the page stays
//!   hot in the client's cache; the server will not see a read for them soon,
//!   so they are not worth caching.
//! * **Read misses** are cached with low priority: the client caches the page
//!   it just read, so an immediate server re-read is unlikely (exclusivity).
//!
//! Eviction takes the least recently used page of the lowest-value class.
//! After a server read hit the page is demoted to the read class, since the
//! client now holds it and the copy's residual value is low.

use crate::policies::util::OrderedPageSet;
use crate::policy::{AccessOutcome, CachePolicy};
use crate::request::{AccessKind, PageId, Request, WriteHint};

/// Caching-value classes, from least valuable (first victim) to most.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Class {
    /// Pages whose last server access was a recovery write.
    Recovery = 0,
    /// Pages whose last server access was a read miss (or hit).
    Read = 1,
    /// Pages last written by a synchronous replacement write.
    Synchronous = 2,
    /// Pages last written by an asynchronous replacement write.
    Replacement = 3,
}

const CLASS_COUNT: usize = 4;

/// The TQ policy. See the module documentation for the hard-coded hint
/// semantics. Requests that carry no typed write hint are treated as reads
/// (the lowest useful class), which is how TQ degrades when its required hint
/// type is absent from the request stream.
#[derive(Debug, Clone)]
pub struct Tq {
    capacity: usize,
    queues: [OrderedPageSet; CLASS_COUNT],
}

impl Tq {
    /// Creates a TQ cache holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Tq {
            capacity,
            queues: [
                OrderedPageSet::new(),
                OrderedPageSet::new(),
                OrderedPageSet::new(),
                OrderedPageSet::new(),
            ],
        }
    }

    fn class_of_request(req: &Request) -> Class {
        match req.kind {
            AccessKind::Read => Class::Read,
            AccessKind::Write => match req.write_hint {
                Some(WriteHint::Replacement) => Class::Replacement,
                Some(WriteHint::Synchronous) => Class::Synchronous,
                Some(WriteHint::Recovery) => Class::Recovery,
                // Untyped writes: no hint to exploit, treat like reads.
                None => Class::Read,
            },
        }
    }

    fn find(&self, page: PageId) -> Option<usize> {
        (0..CLASS_COUNT).find(|&i| self.queues[i].contains(page))
    }

    fn total(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

impl CachePolicy for Tq {
    fn name(&self) -> String {
        "TQ".to_string()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, req: &Request, _seq: u64) -> AccessOutcome {
        let x = req.page;
        let class = Self::class_of_request(req);

        if let Some(current) = self.find(x) {
            // The page is cached: this is a hit.
            self.queues[current].remove(x);
            let target = match req.kind {
                // After a server read hit the first tier holds the page again;
                // its residual value at the server drops to the read class.
                AccessKind::Read => Class::Read,
                // A write re-classifies the page according to its hint.
                AccessKind::Write => class,
            };
            self.queues[target as usize].push_back(x);
            return AccessOutcome::hit();
        }

        // Miss. Recovery writes are not worth caching at all.
        if class == Class::Recovery {
            return AccessOutcome::bypass();
        }

        let mut evicted = 0;
        if self.total() >= self.capacity {
            // Do not evict a more valuable page to admit a less valuable one:
            // if every cached page is in a class above the new request's
            // class, bypass instead.
            let lowest_occupied = (0..CLASS_COUNT).find(|&i| !self.queues[i].is_empty());
            match lowest_occupied {
                Some(lowest) if lowest <= class as usize => {
                    self.queues[lowest].pop_front();
                    evicted = 1;
                }
                _ => return AccessOutcome::bypass(),
            }
        }
        self.queues[class as usize].push_back(x);
        AccessOutcome {
            hit: false,
            evicted,
            bypassed: false,
        }
    }

    fn contains(&self, page: PageId) -> bool {
        self.find(page).is_some()
    }

    fn len(&self) -> usize {
        self.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ClientId;
    use crate::HintSetId;

    fn read(page: u64) -> Request {
        Request::read(ClientId(0), PageId(page), HintSetId(0))
    }

    fn write(page: u64, hint: WriteHint) -> Request {
        Request::write(ClientId(0), PageId(page), Some(hint), HintSetId(0))
    }

    #[test]
    fn recovery_writes_are_not_cached() {
        let mut tq = Tq::new(4);
        let out = tq.access(&write(1, WriteHint::Recovery), 0);
        assert!(out.bypassed);
        assert!(!tq.contains(PageId(1)));
    }

    #[test]
    fn replacement_writes_outrank_reads() {
        let mut tq = Tq::new(2);
        tq.access(&write(1, WriteHint::Replacement), 0);
        tq.access(&read(2), 1);
        // Cache full; a new replacement write evicts the read-class page.
        tq.access(&write(3, WriteHint::Replacement), 2);
        assert!(tq.contains(PageId(1)));
        assert!(!tq.contains(PageId(2)));
        assert!(tq.contains(PageId(3)));
    }

    #[test]
    fn read_misses_do_not_displace_replacement_pages() {
        let mut tq = Tq::new(2);
        tq.access(&write(1, WriteHint::Replacement), 0);
        tq.access(&write(2, WriteHint::Synchronous), 1);
        // Cache full of write-hinted pages; a read miss is bypassed rather
        // than displacing them.
        let out = tq.access(&read(3), 2);
        assert!(out.bypassed);
        assert!(tq.contains(PageId(1)));
        assert!(tq.contains(PageId(2)));
    }

    #[test]
    fn read_hit_demotes_page() {
        let mut tq = Tq::new(2);
        tq.access(&write(1, WriteHint::Replacement), 0);
        assert!(tq.access(&read(1), 1).hit);
        // Page 1 is now in the read class; a new replacement write displaces it.
        tq.access(&write(2, WriteHint::Replacement), 2);
        tq.access(&write(3, WriteHint::Replacement), 3);
        assert!(!tq.contains(PageId(1)));
    }

    #[test]
    fn exploits_write_hints_to_beat_lru() {
        use crate::policies::Lru;
        use crate::simulate;
        use crate::trace::TraceBuilder;
        use crate::AccessKind;

        // Synthetic second-tier pattern: replacement-written pages are
        // re-read a few "rounds" later (far enough apart that a small LRU
        // cache has already evicted them); recovery-written pages never are;
        // plain read misses are never re-read (the client caches them).
        let mut b = TraceBuilder::new();
        let c = b.add_client("db", &[("kind", 3)]);
        let h = b.intern_hints(c, &[0]);
        let mut pending: std::collections::VecDeque<Vec<u64>> = std::collections::VecDeque::new();
        let mut page = 0u64;
        for round in 0..300u64 {
            // A burst of recovery writes (checkpoint noise LRU would cache).
            for i in 0..4u64 {
                b.push(
                    c,
                    10_000 + (round * 4 + i) % 64,
                    AccessKind::Write,
                    Some(WriteHint::Recovery),
                    h,
                );
            }
            // Replacement writes of 4 fresh pages; they will be re-read three
            // rounds from now.
            let batch: Vec<u64> = (0..4).map(|i| 100 + page + i).collect();
            for &p in &batch {
                b.push(c, p, AccessKind::Write, Some(WriteHint::Replacement), h);
            }
            pending.push_back(batch);
            page += 4;
            // Unrelated cold read misses.
            for i in 0..4u64 {
                b.push(c, 1_000_000 + round * 4 + i, AccessKind::Read, None, h);
            }
            // Re-read the batch written three rounds ago.
            if pending.len() > 3 {
                for p in pending.pop_front().unwrap() {
                    b.push(c, p, AccessKind::Read, None, h);
                }
            }
        }
        let trace = b.build();
        let mut tq = Tq::new(32);
        let mut lru = Lru::new(32);
        let tq_hr = simulate(&mut tq, &trace).read_hit_ratio();
        let lru_hr = simulate(&mut lru, &trace).read_hit_ratio();
        assert!(
            tq_hr > lru_hr,
            "TQ ({tq_hr:.3}) should beat LRU ({lru_hr:.3}) when write hints are informative"
        );
    }

    #[test]
    fn untyped_writes_fall_back_to_read_class() {
        let mut tq = Tq::new(2);
        let w = Request::write(ClientId(0), PageId(7), None, HintSetId(0));
        let out = tq.access(&w, 0);
        assert!(!out.bypassed);
        assert!(tq.contains(PageId(7)));
    }
}
