//! Least-recently-used replacement.

use crate::policies::util::OrderedPageSet;
use crate::policy::{AccessOutcome, CachePolicy};
use crate::request::{PageId, Request};

/// The classical LRU policy: on a miss the least recently used page is
/// evicted. Both reads and writes count as uses and both admit the page.
///
/// The paper uses LRU as the canonical hint-oblivious, recency-based policy;
/// it performs poorly at the second tier because the first-tier cache absorbs
/// most temporal locality.
#[derive(Debug, Clone)]
pub struct Lru {
    capacity: usize,
    pages: OrderedPageSet,
    /// Eviction-identity log for data-plane drivers; `None` until enabled
    /// via [`CachePolicy::record_evictions`].
    evicted_log: Option<Vec<PageId>>,
}

impl Lru {
    /// Creates an LRU cache holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Lru {
            capacity,
            pages: OrderedPageSet::with_capacity(capacity),
            evicted_log: None,
        }
    }

    /// The current eviction candidate (least recently used page), if any.
    pub fn victim(&self) -> Option<PageId> {
        self.pages.front()
    }
}

impl CachePolicy for Lru {
    fn name(&self) -> String {
        "LRU".to_string()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, req: &Request, _seq: u64) -> AccessOutcome {
        if self.pages.touch(req.page) {
            return AccessOutcome::hit();
        }
        let mut evicted = 0;
        if self.pages.len() >= self.capacity {
            let victim = self.pages.pop_front();
            if let (Some(log), Some(page)) = (self.evicted_log.as_mut(), victim) {
                log.push(page);
            }
            evicted = 1;
        }
        self.pages.push_back(req.page);
        AccessOutcome::miss(evicted)
    }

    fn record_evictions(&mut self, enabled: bool) -> bool {
        if enabled {
            self.evicted_log.get_or_insert_with(Vec::new);
        } else {
            self.evicted_log = None;
        }
        true
    }

    fn drain_evictions(&mut self, out: &mut Vec<PageId>) {
        if let Some(log) = self.evicted_log.as_mut() {
            out.append(log);
        }
    }

    fn contains(&self, page: PageId) -> bool {
        self.pages.contains(page)
    }

    fn len(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ClientId;
    use crate::HintSetId;

    fn read(page: u64) -> Request {
        Request::read(ClientId(0), PageId(page), HintSetId(0))
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        lru.access(&read(1), 0);
        lru.access(&read(2), 1);
        lru.access(&read(1), 2); // touch 1, making 2 the LRU page
        let out = lru.access(&read(3), 3);
        assert_eq!(out.evicted, 1);
        assert!(lru.contains(PageId(1)));
        assert!(!lru.contains(PageId(2)));
        assert!(lru.contains(PageId(3)));
        assert_eq!(lru.victim(), Some(PageId(1)));
    }

    #[test]
    fn hit_does_not_evict() {
        let mut lru = Lru::new(2);
        lru.access(&read(1), 0);
        lru.access(&read(2), 1);
        let out = lru.access(&read(2), 2);
        assert!(out.hit);
        assert_eq!(out.evicted, 0);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn writes_admit_pages_too() {
        let mut lru = Lru::new(2);
        let w = Request::write(ClientId(0), PageId(5), None, HintSetId(0));
        let out = lru.access(&w, 0);
        assert!(!out.hit);
        assert!(lru.contains(PageId(5)));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = Lru::new(0);
    }

    #[test]
    fn eviction_log_reports_victims_in_order() {
        let mut lru = Lru::new(2);
        assert!(lru.record_evictions(true));
        lru.access(&read(1), 0);
        lru.access(&read(2), 1);
        lru.access(&read(3), 2); // evicts 1
        lru.access(&read(4), 3); // evicts 2
        let mut evicted = Vec::new();
        lru.drain_evictions(&mut evicted);
        assert_eq!(evicted, vec![PageId(1), PageId(2)]);
        // A drain empties the log.
        evicted.clear();
        lru.drain_evictions(&mut evicted);
        assert!(evicted.is_empty());
        // Disabling stops the recording.
        lru.record_evictions(false);
        lru.access(&read(5), 4);
        lru.drain_evictions(&mut evicted);
        assert!(evicted.is_empty());
    }
}
