//! ARC: Adaptive Replacement Cache (Megiddo & Modha, FAST '03).

use crate::policies::util::OrderedPageSet;
use crate::policy::{AccessOutcome, CachePolicy};
use crate::request::{PageId, Request};

/// ARC balances recency and frequency by splitting the cache into a
/// recency list `T1` and a frequency list `T2`, with ghost lists `B1` and
/// `B2` recording recently evicted pages. The adaptation parameter `p` is the
/// target size of `T1`, and is nudged toward whichever ghost list is being
/// hit.
///
/// This is a faithful implementation of the published pseudocode. Note the
/// paper's remark that ARC's ghost lists give it a small space advantage over
/// CLIC in their comparison (ghost entries are not charged against the
/// cache); we reproduce that accounting.
#[derive(Debug, Clone)]
pub struct Arc {
    capacity: usize,
    p: usize,
    t1: OrderedPageSet,
    t2: OrderedPageSet,
    b1: OrderedPageSet,
    b2: OrderedPageSet,
}

impl Arc {
    /// Creates an ARC cache holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Arc {
            capacity,
            p: 0,
            t1: OrderedPageSet::with_capacity(capacity),
            t2: OrderedPageSet::with_capacity(capacity),
            b1: OrderedPageSet::new(),
            b2: OrderedPageSet::new(),
        }
    }

    /// Current value of the adaptation parameter `p` (target size of `T1`).
    pub fn adaptation(&self) -> usize {
        self.p
    }

    /// Moves a page out of the cache into the appropriate ghost list.
    /// Returns 1 if a page was evicted (always, unless both lists are empty).
    fn replace(&mut self, requested_in_b2: bool) -> u32 {
        let t1_len = self.t1.len();
        if t1_len >= 1 && (t1_len > self.p || (requested_in_b2 && t1_len == self.p)) {
            if let Some(victim) = self.t1.pop_front() {
                self.b1.push_back(victim);
                return 1;
            }
        }
        if let Some(victim) = self.t2.pop_front() {
            self.b2.push_back(victim);
            return 1;
        }
        // Fall back to T1 if T2 was empty.
        if let Some(victim) = self.t1.pop_front() {
            self.b1.push_back(victim);
            return 1;
        }
        0
    }
}

impl CachePolicy for Arc {
    fn name(&self) -> String {
        "ARC".to_string()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, req: &Request, _seq: u64) -> AccessOutcome {
        let x = req.page;
        let c = self.capacity;

        // Case I: hit in T1 or T2 -> promote to MRU of T2.
        if self.t1.remove(x) {
            self.t2.push_back(x);
            return AccessOutcome::hit();
        }
        if self.t2.touch(x) {
            return AccessOutcome::hit();
        }

        // Case II: hit in ghost list B1 -> grow p, bring into T2.
        if self.b1.contains(x) {
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(c);
            let evicted = self.replace(false);
            self.b1.remove(x);
            self.t2.push_back(x);
            return AccessOutcome {
                hit: false,
                evicted,
                bypassed: false,
            };
        }

        // Case III: hit in ghost list B2 -> shrink p, bring into T2.
        if self.b2.contains(x) {
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
            let evicted = self.replace(true);
            self.b2.remove(x);
            self.t2.push_back(x);
            return AccessOutcome {
                hit: false,
                evicted,
                bypassed: false,
            };
        }

        // Case IV: complete miss.
        let mut evicted = 0;
        let l1 = self.t1.len() + self.b1.len();
        if l1 == c {
            if self.t1.len() < c {
                self.b1.pop_front();
                evicted += self.replace(false);
            } else {
                // B1 is empty and T1 is full: evict the LRU page of T1 outright.
                if self.t1.pop_front().is_some() {
                    evicted += 1;
                }
            }
        } else {
            let total = self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len();
            if total >= c {
                if total == 2 * c {
                    self.b2.pop_front();
                }
                if self.t1.len() + self.t2.len() >= c {
                    evicted += self.replace(false);
                }
            }
        }
        self.t1.push_back(x);
        AccessOutcome {
            hit: false,
            evicted,
            bypassed: false,
        }
    }

    fn contains(&self, page: PageId) -> bool {
        self.t1.contains(page) || self.t2.contains(page)
    }

    fn len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ClientId;
    use crate::HintSetId;

    fn read(page: u64) -> Request {
        Request::read(ClientId(0), PageId(page), HintSetId(0))
    }

    #[test]
    fn repeated_access_promotes_to_frequency_list() {
        let mut arc = Arc::new(4);
        arc.access(&read(1), 0);
        assert_eq!(arc.t1.len(), 1);
        assert!(arc.access(&read(1), 1).hit);
        assert_eq!(arc.t1.len(), 0);
        assert_eq!(arc.t2.len(), 1);
    }

    #[test]
    fn cache_never_exceeds_capacity() {
        let mut arc = Arc::new(8);
        // Mixed pattern: a hot set of 4 pages plus a long scan.
        for i in 0..1000u64 {
            arc.access(&read(i % 4), i * 2);
            arc.access(&read(100 + i), i * 2 + 1);
            assert!(arc.len() <= 8, "len {} at step {}", arc.len(), i);
            assert!(arc.b1.len() + arc.b2.len() <= 2 * 8 + 2);
        }
        // The hot set should survive the scan (that is ARC's whole point).
        assert!(arc.contains(PageId(0)));
        assert!(arc.contains(PageId(3)));
    }

    #[test]
    fn ghost_hit_adapts_p() {
        let mut arc = Arc::new(2);
        arc.access(&read(1), 0);
        arc.access(&read(2), 1);
        arc.access(&read(3), 2); // evicts 1 into B1
        assert!(!arc.contains(PageId(1)));
        let p_before = arc.adaptation();
        arc.access(&read(1), 3); // ghost hit in B1
        assert!(arc.adaptation() >= p_before);
        assert!(arc.contains(PageId(1)));
    }

    #[test]
    fn scan_resistance_beats_lru() {
        use crate::policies::Lru;
        use crate::simulate;
        use crate::trace::TraceBuilder;
        use crate::AccessKind;

        // Workload: a small hot loop (touched twice per round so its pages
        // earn frequency status) interleaved with a long one-shot scan that
        // flushes an LRU cache every round.
        let mut b = TraceBuilder::new();
        let c = b.add_client("t", &[("x", 1)]);
        let h = b.intern_hints(c, &[0]);
        for round in 0..200u64 {
            for _rep in 0..2 {
                for hot in 0..8u64 {
                    b.push(c, hot, AccessKind::Read, None, h);
                }
            }
            for cold in 0..24u64 {
                b.push(c, 1000 + round * 24 + cold, AccessKind::Read, None, h);
            }
        }
        let trace = b.build();
        let mut arc = Arc::new(16);
        let mut lru = Lru::new(16);
        let arc_res = simulate(&mut arc, &trace);
        let lru_res = simulate(&mut lru, &trace);
        assert!(
            arc_res.read_hit_ratio() > lru_res.read_hit_ratio(),
            "ARC {:.3} should beat LRU {:.3} on scan-polluted workload",
            arc_res.read_hit_ratio(),
            lru_res.read_hit_ratio()
        );
    }
}
