//! CAR: Clock with Adaptive Replacement (Bansal & Modha, FAST '04).

use std::collections::HashMap;

use crate::policies::util::OrderedPageSet;
use crate::policy::{AccessOutcome, CachePolicy};
use crate::request::{PageId, Request};

/// CAR combines ARC's adaptive split between a recency pool and a frequency
/// pool with CLOCK's constant-time, reference-bit based approximation of LRU
/// within each pool. Listed in the paper's related work as one of the
/// hint-oblivious improvements over LRU.
///
/// `T1`/`T2` are circular clocks of cached pages with reference bits;
/// `B1`/`B2` are plain LRU ghost lists of evicted page ids; `p` is the
/// adaptive target size of `T1`.
#[derive(Debug, Clone)]
pub struct Car {
    capacity: usize,
    p: usize,
    t1: ClockList,
    t2: ClockList,
    b1: OrderedPageSet,
    b2: OrderedPageSet,
}

/// A circular list of pages with per-page reference bits and a hash index,
/// used as one of CAR's two clocks. The "head" is the next candidate the
/// clock hand will examine. Reference bits live in the hash index so that
/// setting them on a hit is a constant-time operation.
#[derive(Debug, Clone, Default)]
struct ClockList {
    ring: std::collections::VecDeque<PageId>,
    // page -> reference bit
    index: HashMap<PageId, bool>,
}

impl ClockList {
    fn len(&self) -> usize {
        self.index.len()
    }

    fn contains(&self, page: PageId) -> bool {
        self.index.contains_key(&page)
    }

    fn push_tail(&mut self, page: PageId) {
        self.ring.push_back(page);
        self.index.insert(page, false);
    }

    fn set_reference(&mut self, page: PageId) -> bool {
        match self.index.get_mut(&page) {
            Some(bit) => {
                *bit = true;
                true
            }
            None => false,
        }
    }

    fn pop_head(&mut self) -> Option<(PageId, bool)> {
        // Skip ring entries whose page has already been removed from the
        // index (lazy deletion is not used today, but keep this robust).
        while let Some(page) = self.ring.pop_front() {
            if let Some(bit) = self.index.remove(&page) {
                return Some((page, bit));
            }
        }
        None
    }

    fn rotate(&mut self, page: PageId, referenced: bool) {
        self.ring.push_back(page);
        self.index.insert(page, referenced);
    }
}

impl Car {
    /// Creates a CAR cache holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Car {
            capacity,
            p: 0,
            t1: ClockList::default(),
            t2: ClockList::default(),
            b1: OrderedPageSet::new(),
            b2: OrderedPageSet::new(),
        }
    }

    /// Current value of the adaptation parameter `p`.
    pub fn adaptation(&self) -> usize {
        self.p
    }

    /// Evicts one page from `T1` or `T2`, moving its id into the matching
    /// ghost list. Recently referenced pages are given a second chance
    /// (T1 pages with the bit set are promoted into T2).
    fn replace(&mut self) -> u32 {
        loop {
            if self.t1.len() >= self.p.max(1) {
                match self.t1.pop_head() {
                    Some((page, false)) => {
                        self.b1.push_back(page);
                        return 1;
                    }
                    Some((page, true)) => {
                        // Second chance: promote into T2 with the bit cleared.
                        self.t2.push_tail(page);
                    }
                    None => {
                        // T1 empty; fall through to T2 below on next loop.
                        if self.t2.len() == 0 {
                            return 0;
                        }
                    }
                }
            } else {
                match self.t2.pop_head() {
                    Some((page, false)) => {
                        self.b2.push_back(page);
                        return 1;
                    }
                    Some((page, true)) => {
                        self.t2.rotate(page, false);
                    }
                    None => {
                        if self.t1.len() == 0 {
                            return 0;
                        }
                        // T2 empty: force an eviction from T1.
                        if let Some((page, _)) = self.t1.pop_head() {
                            self.b1.push_back(page);
                            return 1;
                        }
                    }
                }
            }
        }
    }
}

impl CachePolicy for Car {
    fn name(&self) -> String {
        "CAR".to_string()
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, req: &Request, _seq: u64) -> AccessOutcome {
        let x = req.page;
        let c = self.capacity;

        // Hit: just set the reference bit (constant-time in spirit; our
        // ClockList::set_reference is linear in the ring but bounded by the
        // cache size and only used for simulation).
        if self.t1.set_reference(x) || self.t2.set_reference(x) {
            return AccessOutcome::hit();
        }

        let in_b1 = self.b1.contains(x);
        let in_b2 = self.b2.contains(x);
        let mut evicted = 0;

        if self.t1.len() + self.t2.len() == c {
            evicted += self.replace();
            // Directory replacement: keep |T1|+|B1| <= c and total <= 2c.
            if !in_b1 && !in_b2 {
                if self.t1.len() + self.b1.len() >= c {
                    self.b1.pop_front();
                } else if self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len() >= 2 * c {
                    self.b2.pop_front();
                }
            }
        }

        if !in_b1 && !in_b2 {
            self.t1.push_tail(x);
        } else if in_b1 {
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(c);
            self.b1.remove(x);
            self.t2.push_tail(x);
        } else {
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
            self.b2.remove(x);
            self.t2.push_tail(x);
        }

        AccessOutcome {
            hit: false,
            evicted,
            bypassed: false,
        }
    }

    fn contains(&self, page: PageId) -> bool {
        self.t1.contains(page) || self.t2.contains(page)
    }

    fn len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ClientId;
    use crate::HintSetId;

    fn read(page: u64) -> Request {
        Request::read(ClientId(0), PageId(page), HintSetId(0))
    }

    #[test]
    fn basic_hit_and_miss() {
        let mut car = Car::new(2);
        assert!(!car.access(&read(1), 0).hit);
        assert!(car.access(&read(1), 1).hit);
        assert!(!car.access(&read(2), 2).hit);
        assert_eq!(car.len(), 2);
    }

    #[test]
    fn capacity_respected_under_churn() {
        let mut car = Car::new(16);
        for i in 0..5000u64 {
            car.access(&read(i % 4), 3 * i);
            car.access(&read(1000 + i), 3 * i + 1);
            car.access(&read(i % 64), 3 * i + 2);
            assert!(car.len() <= 16, "len {} at {}", car.len(), i);
        }
    }

    #[test]
    fn ghost_hit_moves_page_to_frequency_clock() {
        let mut car = Car::new(4);
        // Pages 1 and 2 are referenced twice so replace() promotes them into
        // T2 instead of evicting them.
        for rep in 0..2u64 {
            for p in 1..=2u64 {
                car.access(&read(p), rep * 2 + p);
            }
        }
        // Cold misses fill the cache and push unreferenced T1 pages into B1.
        for (i, p) in (10..16u64).enumerate() {
            car.access(&read(p), 100 + i as u64);
        }
        let ghosted = car
            .b1
            .front()
            .expect("a cold page should have been ghosted");
        let p_before = car.adaptation();
        car.access(&read(ghosted.0), 200);
        assert!(car.t2.contains(ghosted), "ghost hit must re-enter via T2");
        assert!(car.contains(ghosted));
        assert!(car.adaptation() >= p_before, "a B1 hit grows the T1 target");
    }

    #[test]
    fn referenced_pages_survive_a_scan() {
        let mut car = Car::new(8);
        // Establish a referenced hot set.
        for rep in 0..3u64 {
            for hot in 0..4u64 {
                car.access(&read(hot), rep * 4 + hot);
            }
        }
        // Scan many cold pages.
        for (i, cold) in (100..140u64).enumerate() {
            car.access(&read(cold), 100 + i as u64);
        }
        let survivors = (0..4u64).filter(|p| car.contains(PageId(*p))).count();
        assert!(
            survivors >= 2,
            "expected most of the hot set to survive, got {survivors}"
        );
    }
}
