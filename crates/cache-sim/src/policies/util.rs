//! Shared building blocks for replacement policies.
//!
//! Most classical policies need an "ordered set of pages" supporting O(1)
//! membership tests, O(1) removal, and O(1) insertion at the recency end.
//! [`OrderedPageSet`] provides exactly that: a doubly-linked list of pages
//! backed by a slab, plus a hash index. LRU queues, FIFO queues, ghost lists,
//! and the segments of 2Q/MQ/ARC/TQ are all instances of it.

use std::collections::HashMap;

use crate::request::PageId;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    page: PageId,
    prev: usize,
    next: usize,
}

/// A linked hash set of pages ordered from *front* (oldest / next victim) to
/// *back* (most recently inserted or touched).
#[derive(Debug, Clone, Default)]
pub struct OrderedPageSet {
    nodes: Vec<Node>,
    free: Vec<usize>,
    index: HashMap<PageId, usize>,
    head: Option<usize>,
    tail: Option<usize>,
}

impl OrderedPageSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        OrderedPageSet::default()
    }

    /// Creates an empty set with room for `capacity` pages preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        OrderedPageSet {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            index: HashMap::with_capacity(capacity),
            head: None,
            tail: None,
        }
    }

    /// Number of pages in the set.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` if the set contains no pages.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Returns `true` if `page` is in the set.
    pub fn contains(&self, page: PageId) -> bool {
        self.index.contains_key(&page)
    }

    /// The page at the front (oldest), if any.
    pub fn front(&self) -> Option<PageId> {
        self.head.map(|i| self.nodes[i].page)
    }

    /// The page at the back (most recent), if any.
    pub fn back(&self) -> Option<PageId> {
        self.tail.map(|i| self.nodes[i].page)
    }

    /// Inserts `page` at the back. Returns `false` (and does nothing) if the
    /// page was already present.
    pub fn push_back(&mut self, page: PageId) -> bool {
        if self.index.contains_key(&page) {
            return false;
        }
        let idx = self.alloc(page);
        self.link_back(idx);
        self.index.insert(page, idx);
        true
    }

    /// Inserts `page` at the front. Returns `false` if already present.
    pub fn push_front(&mut self, page: PageId) -> bool {
        if self.index.contains_key(&page) {
            return false;
        }
        let idx = self.alloc(page);
        self.link_front(idx);
        self.index.insert(page, idx);
        true
    }

    /// Removes and returns the front (oldest) page.
    pub fn pop_front(&mut self) -> Option<PageId> {
        let idx = self.head?;
        let page = self.nodes[idx].page;
        self.unlink(idx);
        self.index.remove(&page);
        self.free.push(idx);
        Some(page)
    }

    /// Removes `page` from the set. Returns `true` if it was present.
    pub fn remove(&mut self, page: PageId) -> bool {
        match self.index.remove(&page) {
            Some(idx) => {
                self.unlink(idx);
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Moves an existing `page` to the back (most-recent position). Returns
    /// `false` if the page is not present.
    pub fn touch(&mut self, page: PageId) -> bool {
        match self.index.get(&page).copied() {
            Some(idx) => {
                self.unlink(idx);
                self.link_back(idx);
                true
            }
            None => false,
        }
    }

    /// Iterates pages from front (oldest) to back (newest).
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            cursor: self.head,
        }
    }

    fn alloc(&mut self, page: PageId) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node {
                page,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            self.nodes.push(Node {
                page,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        }
    }

    fn link_back(&mut self, idx: usize) {
        self.nodes[idx].prev = self.tail.unwrap_or(NIL);
        self.nodes[idx].next = NIL;
        if let Some(t) = self.tail {
            self.nodes[t].next = idx;
        } else {
            self.head = Some(idx);
        }
        self.tail = Some(idx);
    }

    fn link_front(&mut self, idx: usize) {
        self.nodes[idx].next = self.head.unwrap_or(NIL);
        self.nodes[idx].prev = NIL;
        if let Some(h) = self.head {
            self.nodes[h].prev = idx;
        } else {
            self.tail = Some(idx);
        }
        self.head = Some(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = if next != NIL { Some(next) } else { None };
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = if prev != NIL { Some(prev) } else { None };
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }
}

/// Iterator over an [`OrderedPageSet`] from front to back.
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a OrderedPageSet,
    cursor: Option<usize>,
}

impl Iterator for Iter<'_> {
    type Item = PageId;

    fn next(&mut self) -> Option<PageId> {
        let idx = self.cursor?;
        let node = &self.set.nodes[idx];
        self.cursor = if node.next == NIL {
            None
        } else {
            Some(node.next)
        };
        Some(node.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_order_is_fifo() {
        let mut s = OrderedPageSet::new();
        assert!(s.push_back(PageId(1)));
        assert!(s.push_back(PageId(2)));
        assert!(s.push_back(PageId(3)));
        assert!(!s.push_back(PageId(2)), "duplicate insert is a no-op");
        assert_eq!(s.len(), 3);
        assert_eq!(s.pop_front(), Some(PageId(1)));
        assert_eq!(s.pop_front(), Some(PageId(2)));
        assert_eq!(s.pop_front(), Some(PageId(3)));
        assert_eq!(s.pop_front(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn touch_moves_to_back() {
        let mut s = OrderedPageSet::new();
        for p in 1..=3 {
            s.push_back(PageId(p));
        }
        assert!(s.touch(PageId(1)));
        assert_eq!(s.front(), Some(PageId(2)));
        assert_eq!(s.back(), Some(PageId(1)));
        assert!(!s.touch(PageId(99)));
        let order: Vec<u64> = s.iter().map(|p| p.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn remove_middle_and_reuse_slab_slot() {
        let mut s = OrderedPageSet::new();
        for p in 1..=4 {
            s.push_back(PageId(p));
        }
        assert!(s.remove(PageId(2)));
        assert!(!s.remove(PageId(2)));
        assert!(!s.contains(PageId(2)));
        // The freed slot gets reused without corrupting order.
        s.push_back(PageId(5));
        let order: Vec<u64> = s.iter().map(|p| p.0).collect();
        assert_eq!(order, vec![1, 3, 4, 5]);
    }

    #[test]
    fn push_front_makes_page_next_victim() {
        let mut s = OrderedPageSet::new();
        s.push_back(PageId(1));
        s.push_front(PageId(2));
        assert_eq!(s.front(), Some(PageId(2)));
        assert_eq!(s.pop_front(), Some(PageId(2)));
        assert_eq!(s.pop_front(), Some(PageId(1)));
    }

    #[test]
    fn single_element_edge_cases() {
        let mut s = OrderedPageSet::with_capacity(4);
        s.push_back(PageId(7));
        assert_eq!(s.front(), s.back());
        assert!(s.touch(PageId(7)));
        assert_eq!(s.front(), Some(PageId(7)));
        assert!(s.remove(PageId(7)));
        assert_eq!(s.front(), None);
        assert_eq!(s.back(), None);
    }
}
