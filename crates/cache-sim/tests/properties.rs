//! Property-based tests for the cache-simulation substrate.
//!
//! These check structural invariants over arbitrary request streams:
//! capacity bounds, hit/membership consistency, LRU equivalence against a
//! reference model, OPT dominance, and the ordered-set utility against a
//! naive model.

use proptest::collection::vec;
use proptest::prelude::*;

use cache_sim::policies::util::OrderedPageSet;
use cache_sim::policies::{BaselinePolicy, Lru, Opt};
use cache_sim::{
    simulate, AccessKind, CachePolicy, ClientId, HintSetId, PageId, Request, Trace, TraceBuilder,
    WriteHint,
};

/// A compact description of one generated request.
#[derive(Debug, Clone, Copy)]
struct GenReq {
    page: u64,
    write: bool,
    hint: u8,
    write_hint: u8,
}

fn gen_request() -> impl Strategy<Value = GenReq> {
    (0u64..60, any::<bool>(), 0u8..4, 0u8..3).prop_map(|(page, write, hint, write_hint)| GenReq {
        page,
        write,
        hint,
        write_hint,
    })
}

fn trace_from(reqs: &[GenReq]) -> Trace {
    let mut b = TraceBuilder::new().with_name("prop");
    let c = b.add_client("prop", &[("h", 4)]);
    let hints: Vec<HintSetId> = (0..4).map(|v| b.intern_hints(c, &[v])).collect();
    for r in reqs {
        let kind = if r.write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let wh = if r.write {
            Some(match r.write_hint {
                0 => WriteHint::Replacement,
                1 => WriteHint::Recovery,
                _ => WriteHint::Synchronous,
            })
        } else {
            None
        };
        b.push(c, r.page, kind, wh, hints[r.hint as usize]);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every policy respects its capacity and reports hits consistently with
    /// pre-access membership, on arbitrary request streams and capacities.
    #[test]
    fn policies_respect_capacity_and_hit_semantics(
        reqs in vec(gen_request(), 1..400),
        capacity in 1usize..24,
    ) {
        let trace = trace_from(&reqs);
        for kind in BaselinePolicy::ALL {
            let mut policy = kind.build(capacity);
            for (seq, req) in trace.iter() {
                let cached_before = policy.contains(req.page);
                let outcome = policy.access(req, seq);
                prop_assert_eq!(
                    outcome.hit, cached_before,
                    "{}: hit flag inconsistent at seq {}", policy.name(), seq
                );
                prop_assert!(
                    policy.len() <= capacity,
                    "{}: capacity exceeded ({} > {})", policy.name(), policy.len(), capacity
                );
                // A bypass must leave the page uncached; an admission must cache it.
                if !outcome.hit {
                    prop_assert_eq!(policy.contains(req.page), !outcome.bypassed);
                }
            }
        }
    }

    /// LRU matches a straightforward reference implementation exactly.
    #[test]
    fn lru_matches_reference_model(
        reqs in vec(gen_request(), 1..400),
        capacity in 1usize..16,
    ) {
        let trace = trace_from(&reqs);
        let mut lru = Lru::new(capacity);
        let mut model: Vec<u64> = Vec::new(); // front = LRU, back = MRU
        for (seq, req) in trace.iter() {
            let model_hit = model.contains(&req.page.0);
            let outcome = lru.access(req, seq);
            prop_assert_eq!(outcome.hit, model_hit);
            if model_hit {
                model.retain(|&p| p != req.page.0);
            } else if model.len() >= capacity {
                model.remove(0);
            }
            model.push(req.page.0);
            prop_assert_eq!(lru.len(), model.len());
            for &p in &model {
                prop_assert!(lru.contains(PageId(p)));
            }
        }
    }

    /// Belady's algorithm never loses to LRU or ARC in read hit ratio.
    #[test]
    fn opt_dominates_online_policies(
        reqs in vec(gen_request(), 10..400),
        capacity in 1usize..16,
    ) {
        let trace = trace_from(&reqs);
        let opt_hits = {
            let mut opt = Opt::from_trace(&trace, capacity);
            simulate(&mut opt, &trace).stats.read_hits
        };
        for kind in [BaselinePolicy::Lru, BaselinePolicy::Arc, BaselinePolicy::Tq] {
            let mut policy = kind.build(capacity);
            let hits = simulate(policy.as_mut(), &trace).stats.read_hits;
            prop_assert!(
                opt_hits >= hits,
                "OPT ({}) lost to {} ({})", opt_hits, kind.name(), hits
            );
        }
    }

    /// The driver's aggregate statistics always account for every request,
    /// and the per-client breakdown sums to the total.
    #[test]
    fn driver_accounting_is_complete(
        reqs in vec(gen_request(), 1..300),
        capacity in 1usize..16,
    ) {
        let trace = trace_from(&reqs);
        let mut lru = Lru::new(capacity);
        let result = simulate(&mut lru, &trace);
        prop_assert_eq!(result.stats.requests(), trace.len() as u64);
        let per_client_total: u64 = result.per_client.values().map(|s| s.requests()).sum();
        prop_assert_eq!(per_client_total, trace.len() as u64);
    }

    /// The ordered page set behaves exactly like a vector-based model under
    /// an arbitrary sequence of operations.
    #[test]
    fn ordered_page_set_matches_model(ops in vec((0u8..5, 0u64..20), 1..300)) {
        let mut set = OrderedPageSet::new();
        let mut model: Vec<u64> = Vec::new();
        for (op, page) in ops {
            match op {
                0 => {
                    let inserted = set.push_back(PageId(page));
                    let model_inserted = !model.contains(&page);
                    if model_inserted {
                        model.push(page);
                    }
                    prop_assert_eq!(inserted, model_inserted);
                }
                1 => {
                    let removed = set.remove(PageId(page));
                    let model_removed = model.contains(&page);
                    model.retain(|&p| p != page);
                    prop_assert_eq!(removed, model_removed);
                }
                2 => {
                    let touched = set.touch(PageId(page));
                    let model_touched = model.contains(&page);
                    if model_touched {
                        model.retain(|&p| p != page);
                        model.push(page);
                    }
                    prop_assert_eq!(touched, model_touched);
                }
                3 => {
                    let popped = set.pop_front();
                    let model_popped = if model.is_empty() { None } else { Some(model.remove(0)) };
                    prop_assert_eq!(popped.map(|p| p.0), model_popped);
                }
                _ => {
                    prop_assert_eq!(set.contains(PageId(page)), model.contains(&page));
                }
            }
            prop_assert_eq!(set.len(), model.len());
            prop_assert_eq!(set.front().map(|p| p.0), model.first().copied());
            prop_assert_eq!(set.back().map(|p| p.0), model.last().copied());
            let order: Vec<u64> = set.iter().map(|p| p.0).collect();
            prop_assert_eq!(order, model.clone());
        }
    }

    /// Traces survive the binary round trip for arbitrary request content.
    #[test]
    fn trace_binary_roundtrip(reqs in vec(gen_request(), 0..200)) {
        let trace = trace_from(&reqs);
        let mut buffer = Vec::new();
        trace.write_to(&mut buffer).unwrap();
        let back = Trace::read_from(&mut buffer.as_slice()).unwrap();
        prop_assert_eq!(back.requests, trace.requests);
        prop_assert_eq!(back.catalog.hint_set_count(), trace.catalog.hint_set_count());
    }
}

/// Non-proptest regression: an empty trace is handled by every policy.
#[test]
fn empty_trace_is_fine() {
    let trace = trace_from(&[]);
    for kind in BaselinePolicy::ALL {
        let mut policy = kind.build(4);
        let result = simulate(policy.as_mut(), &trace);
        assert_eq!(result.stats.requests(), 0);
    }
    let _ = Request::read(ClientId(0), PageId(0), HintSetId(0));
}
