//! Property-based tests for the wire codec.
//!
//! Two families of properties:
//!
//! * **Round-trip**: any batch of requests (or responses) encodes to one
//!   byte stream that decodes back to exactly the same messages in order,
//!   with the same correlation ids — and keeps doing so when the stream is
//!   delivered in arbitrary fragments, the way TCP actually hands bytes
//!   over.
//! * **Robustness**: arbitrary byte garbage, truncations of valid frames,
//!   and bit-flipped prefixes never panic the decoder; they produce either
//!   "need more bytes" or a typed [`WireError`].

use proptest::collection::vec;
use proptest::prelude::*;

use cache_sim::{ClientId, HintSetId, PageId, WriteHint};
use clic_server::wire::{
    self, decode_request, decode_response, encode_request, encode_response, take_frame, WireError,
};
use clic_server::{ErrorCode, ServerRequest, ServerResponse};

/// Compact generator-side description of one request.
#[derive(Debug, Clone)]
struct GenOp {
    kind: u8,
    client: u16,
    page: u64,
    hint: u32,
    flag: bool,
    write_hint: u8,
    data: Option<Vec<u8>>,
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    (
        0u8..4,
        any::<u16>(),
        any::<u64>(),
        any::<u32>(),
        any::<bool>(),
        0u8..4,
        proptest::option::of(vec(any::<u8>(), 0..64)),
    )
        .prop_map(|(kind, client, page, hint, flag, write_hint, data)| GenOp {
            kind,
            client,
            page,
            hint,
            flag,
            write_hint,
            data,
        })
}

fn request_from(op: &GenOp) -> ServerRequest {
    match op.kind {
        0 => ServerRequest::Get {
            client: ClientId(op.client),
            page: PageId(op.page),
            hint: HintSetId(op.hint),
            prefetch: op.flag,
        },
        1 => ServerRequest::Put {
            client: ClientId(op.client),
            page: PageId(op.page),
            hint: HintSetId(op.hint),
            write_hint: match op.write_hint {
                0 => None,
                1 => Some(WriteHint::Replacement),
                2 => Some(WriteHint::Recovery),
                _ => Some(WriteHint::Synchronous),
            },
            data: op.data.clone(),
        },
        2 => ServerRequest::Delete {
            page: PageId(op.page),
        },
        _ => ServerRequest::Stats,
    }
}

fn response_from(op: &GenOp) -> ServerResponse {
    match op.kind {
        0 => ServerResponse::Get {
            hit: op.flag,
            data: op.data.clone(),
        },
        1 => ServerResponse::Put { hit: op.flag },
        2 => ServerResponse::Delete { existed: op.flag },
        // Mix typed error frames into every response batch: the error
        // path rides the same framer and must round-trip beside data.
        _ => ServerResponse::Error {
            code: [
                ErrorCode::Io,
                ErrorCode::Corrupt,
                ErrorCode::Busy,
                ErrorCode::Shutdown,
                ErrorCode::Internal,
            ][(op.page as usize) % 5],
        },
    }
}

/// Asserts two responses are structurally equal (the type has accessors,
/// not `PartialEq`, because stats snapshots carry histograms).
fn assert_response_eq(a: &ServerResponse, b: &ServerResponse) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.hit(), b.hit());
    prop_assert_eq!(a.data(), b.data());
    prop_assert_eq!(a.existed(), b.existed());
    prop_assert_eq!(a.error_code(), b.error_code());
    prop_assert_eq!(a.stats().is_some(), b.stats().is_some());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any request batch round-trips through one contiguous byte stream.
    #[test]
    fn request_batches_round_trip(ops in vec(gen_op(), 1..40)) {
        let requests: Vec<ServerRequest> = ops.iter().map(request_from).collect();
        let mut stream = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            encode_request(i as u64 ^ 0x5a5a, request, &mut stream);
        }
        let mut at = 0usize;
        for (i, request) in requests.iter().enumerate() {
            let (consumed, payload) = take_frame(&stream[at..])
                .expect("valid stream")
                .expect("complete frame");
            let (seq, decoded) = decode_request(payload).expect("valid frame");
            prop_assert_eq!(seq, i as u64 ^ 0x5a5a);
            prop_assert_eq!(&decoded, request);
            at += consumed;
        }
        prop_assert_eq!(at, stream.len());
    }

    /// Round-trips survive arbitrary fragmentation: feeding the stream to
    /// the framer in random-sized chunks yields the same messages.
    #[test]
    fn request_streams_survive_fragmentation(
        ops in vec(gen_op(), 1..20),
        cuts in vec(1usize..64, 1..64),
    ) {
        let requests: Vec<ServerRequest> = ops.iter().map(request_from).collect();
        let mut stream = Vec::new();
        for (i, request) in requests.iter().enumerate() {
            encode_request(i as u64, request, &mut stream);
        }
        // Re-deliver the stream in the generated chunk sizes (cycled).
        let mut buf: Vec<u8> = Vec::new();
        let mut decoded: Vec<(u64, ServerRequest)> = Vec::new();
        let mut fed = 0usize;
        let mut cut_idx = 0usize;
        while fed < stream.len() || !buf.is_empty() {
            if fed < stream.len() {
                let take = cuts[cut_idx % cuts.len()].min(stream.len() - fed);
                cut_idx += 1;
                buf.extend_from_slice(&stream[fed..fed + take]);
                fed += take;
            }
            while let Some((consumed, payload)) = take_frame(&buf).expect("valid stream") {
                decoded.push(decode_request(payload).expect("valid frame"));
                buf.drain(..consumed);
            }
            if fed == stream.len() && take_frame(&buf).expect("valid stream").is_none() {
                break;
            }
        }
        prop_assert_eq!(decoded.len(), requests.len());
        for (i, (seq, request)) in decoded.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64);
            prop_assert_eq!(request, &requests[i]);
        }
    }

    /// Any data-response batch round-trips.
    #[test]
    fn response_batches_round_trip(ops in vec(gen_op(), 1..40)) {
        let responses: Vec<ServerResponse> = ops.iter().map(response_from).collect();
        let mut stream = Vec::new();
        for (i, response) in responses.iter().enumerate() {
            encode_response(i as u64, response, &mut stream);
        }
        let mut at = 0usize;
        for (i, response) in responses.iter().enumerate() {
            let (consumed, payload) = take_frame(&stream[at..])
                .expect("valid stream")
                .expect("complete frame");
            let (seq, decoded) = decode_response(payload).expect("valid frame");
            prop_assert_eq!(seq, i as u64);
            assert_response_eq(&decoded, response)?;
            at += consumed;
        }
        prop_assert_eq!(at, stream.len());
    }

    /// `OP_ERR` frames round-trip every defined code under any seq, and a
    /// patched-in unknown code byte fails closed as a malformed frame
    /// rather than decoding to some other error.
    #[test]
    fn error_frames_round_trip_and_unknown_codes_fail_closed(
        seq in any::<u64>(),
        pick in 0usize..5,
        bad_code in 6u8..=u8::MAX,
    ) {
        let code = [
            ErrorCode::Io,
            ErrorCode::Corrupt,
            ErrorCode::Busy,
            ErrorCode::Shutdown,
            ErrorCode::Internal,
        ][pick];
        let mut frame = Vec::new();
        encode_response(seq, &ServerResponse::Error { code }, &mut frame);
        let (consumed, payload) = take_frame(&frame)
            .expect("valid stream")
            .expect("complete frame");
        prop_assert_eq!(consumed, frame.len());
        let (decoded_seq, decoded) = decode_response(payload).expect("valid frame");
        prop_assert_eq!(decoded_seq, seq);
        prop_assert_eq!(decoded.error_code(), Some(code));
        // The code byte is the last body byte; replace it with an
        // out-of-range value (0 is also undefined) and decode must reject.
        for bad in [0u8, bad_code] {
            let mut patched = frame.clone();
            let last = patched.len() - 1;
            patched[last] = bad;
            let (_, payload) = take_frame(&patched)
                .expect("valid stream")
                .expect("complete frame");
            prop_assert!(
                matches!(decode_response(payload), Err(WireError::Malformed(_))),
                "unknown code {bad} must fail closed"
            );
        }
    }

    /// Arbitrary garbage never panics the framer or the decoders: every
    /// outcome is `None` (incomplete) or a typed error.
    #[test]
    fn garbage_never_panics(bytes in vec(any::<u8>(), 0..256)) {
        match take_frame(&bytes) {
            Ok(Some((consumed, payload))) => {
                prop_assert!(consumed <= bytes.len());
                // Whatever these bytes decode to, it must not panic.
                let _ = decode_request(payload);
                let _ = decode_response(payload);
            }
            Ok(None) => {}
            Err(WireError::Oversized(len)) => prop_assert!(len > wire::MAX_FRAME_LEN),
            Err(WireError::Malformed(_)) | Err(WireError::BadOpcode(_)) => {}
        }
    }

    /// Every strict prefix of a valid frame asks for more bytes; every
    /// truncation of its *payload* (with a fixed-up length prefix) decodes
    /// to an error, never a bogus message or a panic.
    #[test]
    fn truncations_fail_closed(op in gen_op(), cut_permille in 0usize..1000) {
        let request = request_from(&op);
        let mut frame = Vec::new();
        encode_request(7, &request, &mut frame);
        // Prefixes are just incomplete.
        let cut = frame.len() * cut_permille / 1000;
        prop_assert!(take_frame(&frame[..cut]).expect("prefix is incomplete").is_none());
        // Truncated payload with a corrected length prefix: must error
        // (except cutting nothing, which stays valid).
        if cut > 4 && cut < frame.len() {
            let mut short = frame[..cut].to_vec();
            let len = (cut - 4) as u32;
            short[..4].copy_from_slice(&len.to_le_bytes());
            match take_frame(&short) {
                Ok(Some((_, payload))) => prop_assert!(decode_request(payload).is_err()),
                Ok(None) => prop_assert!(false, "frame was complete by construction"),
                Err(_) => {} // shorter than the 9-byte header: also fine
            }
        }
    }
}
