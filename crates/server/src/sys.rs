//! Minimal readiness-notification layer for the network front-end.
//!
//! On Linux this wraps `epoll` directly through `extern "C"` declarations —
//! the symbols are in libc, which std already links, so no new crate is
//! needed. Everywhere else a portable fallback reports every registered
//! token as ready each poll (with a short sleep to avoid spinning), which
//! degrades the event loop to a readiness *scan* over nonblocking sockets:
//! slower, but behaviorally identical because every socket operation the
//! loop performs already tolerates `WouldBlock`.
//!
//! The surface is the intersection the event loop actually needs: register
//! a file descriptor with a `u64` token and a read/write interest mask,
//! re-arm it, drop it, and wait. Edge cases like `EPOLLERR`/`EPOLLHUP` are
//! folded into "readable" so the loop discovers closures through a zero
//! read, the same path as an orderly shutdown.

/// Interest in readability (mapped to `EPOLLIN`).
pub const READABLE: u32 = 0x001;
/// Interest in writability (mapped to `EPOLLOUT`).
pub const WRITABLE: u32 = 0x004;

/// One readiness notification: the token the fd was registered with plus
/// the [`READABLE`]/[`WRITABLE`] bits that fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token supplied at registration.
    pub token: u64,
    /// The readiness bits ([`READABLE`] | [`WRITABLE`]).
    pub ready: u32,
}

impl Event {
    /// `true` if the fd is readable (or errored/hung up, which reads
    /// report too).
    pub fn readable(&self) -> bool {
        self.ready & READABLE != 0
    }

    /// `true` if the fd is writable.
    pub fn writable(&self) -> bool {
        self.ready & WRITABLE != 0
    }
}

/// Extracts the raw fd on Unix; returns `-1` elsewhere so call sites
/// compile unconditionally (the fallback poller ignores fds entirely).
#[cfg(unix)]
pub fn raw_fd<T: std::os::unix::io::AsRawFd>(io: &T) -> i32 {
    io.as_raw_fd()
}

/// Extracts the raw fd on Unix; returns `-1` elsewhere so call sites
/// compile unconditionally (the fallback poller ignores fds entirely).
#[cfg(not(unix))]
pub fn raw_fd<T>(_io: &T) -> i32 {
    -1
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{Event, READABLE, WRITABLE};
    use std::io;
    use std::time::Duration;

    // epoll's event struct is packed on x86-64 (a 12-byte layout the
    // kernel ABI fixes); other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0x80000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    /// Readiness poller backed by a real `epoll` instance.
    pub struct Poller {
        epfd: i32,
    }

    // The epoll fd is used from the event-loop thread only, but owning it
    // across a thread spawn requires Send.
    unsafe impl Send for Poller {}

    impl Poller {
        /// Creates the epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes no pointers; a negative return
            // is reported through errno.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: i32, interest: u32, token: u64) -> io::Result<()> {
            let mut event = EpollEvent {
                events: (if interest & READABLE != 0 { EPOLLIN } else { 0 })
                    | (if interest & WRITABLE != 0 {
                        EPOLLOUT
                    } else {
                        0
                    }),
                data: token,
            };
            let event_ptr = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut event as *mut EpollEvent
            };
            // SAFETY: `event` outlives the call (the kernel copies it);
            // DEL passes null as the man page allows on kernels >= 2.6.9.
            if unsafe { epoll_ctl(self.epfd, op, fd, event_ptr) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Registers `fd` under `token` with the given interest mask.
        pub fn register(&mut self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest, token)
        }

        /// Replaces the interest mask of an already registered `fd`.
        pub fn rearm(&mut self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest, token)
        }

        /// Removes `fd` from the poller. Errors are swallowed: the fd may
        /// already be closed, which deregisters implicitly.
        pub fn deregister(&mut self, fd: i32, _token: u64) {
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
        }

        /// Blocks until an event fires or `timeout` elapses, appending
        /// notifications to `events` (cleared first).
        pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            events.clear();
            const CAP: usize = 256;
            let mut raw = [EpollEvent { events: 0, data: 0 }; CAP];
            let millis = timeout.as_millis().min(i32::MAX as u128) as i32;
            // SAFETY: `raw` is a valid writable buffer of CAP entries for
            // the duration of the call.
            let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as i32, millis) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for entry in raw.iter().take(n as usize) {
                let bits = entry.events;
                let mut ready = 0u32;
                if bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0 {
                    ready |= READABLE;
                }
                if bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0 {
                    ready |= WRITABLE;
                }
                events.push(Event {
                    token: entry.data,
                    ready,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd was returned by epoll_create1 and is closed
            // exactly once.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::Event;
    use std::io;
    use std::time::Duration;

    /// Portable fallback: reports every registered token ready with its
    /// full interest mask each poll, after a short sleep so the scan loop
    /// does not spin. Correct (the loop's socket ops are nonblocking and
    /// tolerate `WouldBlock`), just not event-driven.
    pub struct Poller {
        registered: Vec<(u64, u32)>,
    }

    impl Poller {
        /// Creates the fallback poller.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Vec::new(),
            })
        }

        /// Registers `token` with the given interest mask.
        pub fn register(&mut self, _fd: i32, token: u64, interest: u32) -> io::Result<()> {
            self.registered.retain(|&(t, _)| t != token);
            self.registered.push((token, interest));
            Ok(())
        }

        /// Replaces the interest mask of `token`.
        pub fn rearm(&mut self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        /// Removes `token`.
        pub fn deregister(&mut self, _fd: i32, token: u64) {
            self.registered.retain(|&(t, _)| t != token);
        }

        /// Reports every registered token as ready after a short sleep.
        pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            events.clear();
            std::thread::sleep(timeout.min(Duration::from_millis(1)));
            for &(token, interest) in &self.registered {
                events.push(Event {
                    token,
                    ready: interest,
                });
            }
            Ok(())
        }
    }
}

pub use imp::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn poller_sees_a_readable_listener() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(raw_fd(&listener), 7, READABLE).unwrap();
        let mut events = Vec::new();
        // Nothing pending: a short wait stays (epoll) or reports only the
        // registered interest (fallback) — either way no spurious tokens.
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.iter().all(|e| e.token == 7));

        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"x").unwrap();
        // The pending connection must surface as readable within a few
        // polls on every backend.
        let mut saw = false;
        for _ in 0..100 {
            poller.wait(&mut events, Duration::from_millis(20)).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable()) {
                saw = true;
                break;
            }
        }
        assert!(saw, "listener never became readable");
        poller.deregister(raw_fd(&listener), 7);
    }
}
