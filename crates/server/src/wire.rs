//! The length-prefixed binary wire codec spoken by the network front-end.
//!
//! Every message — request or response — travels as one *frame*:
//!
//! ```text
//! [len: u32 LE][opcode: u8][seq: u64 LE][body: len - 9 bytes]
//! ```
//!
//! `len` counts everything after itself (opcode + seq + body) and is
//! bounded by [`MAX_FRAME_LEN`]; a larger prefix is a protocol violation
//! and the connection is dropped, never buffered. `seq` is a
//! client-chosen correlation id echoed verbatim on the response — the
//! server may answer a connection's frames out of order across shards, and
//! the open-loop generator also uses `seq` to index its scheduled-send-time
//! table. All integers are little-endian; strings are a `u32` byte length
//! followed by UTF-8.
//!
//! See the crate docs for the full per-opcode byte layout table. Decoding
//! is strict: unknown opcodes, truncated bodies, trailing bytes, and
//! invalid enum encodings all surface as [`WireError`] — a malformed peer
//! cannot panic the server or leak a partially decoded frame.

use cache_sim::{CacheStats, ClientId, HintSetId, PageId, SimulationResult, WriteHint};
use clic_obs::{GaugeSnapshot, HistogramSnapshot, MetricsSnapshot};

use crate::protocol::{ErrorCode, ServerRequest, ServerResponse, StatsSnapshot};

/// Upper bound on `len` (the bytes after the length prefix). Generous —
/// a stats snapshot with thousands of metrics and a page payload both fit
/// with orders of magnitude to spare — but small enough that a garbage
/// length prefix cannot make the server buffer gigabytes.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Bytes of payload header (opcode + seq) before the body.
pub const PAYLOAD_HEADER: usize = 9;

/// Request opcode: [`ServerRequest::Get`].
pub const OP_GET: u8 = 0x01;
/// Request opcode: [`ServerRequest::Put`].
pub const OP_PUT: u8 = 0x02;
/// Request opcode: [`ServerRequest::Delete`].
pub const OP_DELETE: u8 = 0x03;
/// Request opcode: [`ServerRequest::Stats`].
pub const OP_STATS: u8 = 0x04;
/// Response opcode: [`ServerResponse::Get`].
pub const OP_GET_RESP: u8 = 0x81;
/// Response opcode: [`ServerResponse::Put`].
pub const OP_PUT_RESP: u8 = 0x82;
/// Response opcode: [`ServerResponse::Delete`].
pub const OP_DELETE_RESP: u8 = 0x83;
/// Response opcode: [`ServerResponse::Stats`].
pub const OP_STATS_RESP: u8 = 0x84;
/// Response opcode: [`ServerResponse::Error`] — a typed failure answer to
/// any request. Body is one [`ErrorCode`] byte.
pub const OP_ERR: u8 = 0x85;

/// Why a frame (or stream) was rejected. Any of these is fatal for the
/// connection that produced it: framing state is unrecoverable once the
/// stream desynchronizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized(usize),
    /// The opcode byte matches no known message.
    BadOpcode(u8),
    /// The payload is structurally invalid (truncated field, trailing
    /// bytes, out-of-range enum encoding, non-UTF-8 string).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized(len) => {
                write!(
                    f,
                    "frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound"
                )
            }
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for std::io::Error {
    fn from(err: WireError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, err)
    }
}

/// Attempts to split one frame off the front of `buf`. Returns
/// `Ok(None)` when the buffer does not yet hold a complete frame (read
/// more), or `Ok(Some((consumed, payload)))` where `payload` starts at the
/// opcode byte and `consumed` is the total frame size to drain from the
/// buffer. A length prefix beyond [`MAX_FRAME_LEN`] or below
/// [`PAYLOAD_HEADER`] is rejected immediately, *before* waiting for the
/// bytes it claims.
// invariant: the `try_into` converts a length-checked 4-byte slice.
#[cfg_attr(not(test), allow(clippy::unwrap_used))]
pub fn take_frame(buf: &[u8]) -> Result<Option<(usize, &[u8])>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len));
    }
    if len < PAYLOAD_HEADER {
        return Err(WireError::Malformed("frame shorter than its header"));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some((4 + len, &buf[4..4 + len])))
}

// ----- encoding ---------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn put_cache_stats(out: &mut Vec<u8>, stats: &CacheStats) {
    for value in [
        stats.read_hits,
        stats.read_misses,
        stats.write_hits,
        stats.write_misses,
        stats.evictions,
        stats.bypasses,
    ] {
        out.extend_from_slice(&value.to_le_bytes());
    }
}

fn put_metrics(out: &mut Vec<u8>, metrics: &MetricsSnapshot) {
    out.extend_from_slice(&(metrics.counters.len() as u32).to_le_bytes());
    for (name, &value) in &metrics.counters {
        put_str(out, name);
        out.extend_from_slice(&value.to_le_bytes());
    }
    out.extend_from_slice(&(metrics.gauges.len() as u32).to_le_bytes());
    for (name, gauge) in &metrics.gauges {
        put_str(out, name);
        out.extend_from_slice(&gauge.value.to_le_bytes());
        out.extend_from_slice(&gauge.peak.to_le_bytes());
    }
    out.extend_from_slice(&(metrics.histograms.len() as u32).to_le_bytes());
    for (name, hist) in &metrics.histograms {
        put_str(out, name);
        out.extend_from_slice(&hist.count().to_le_bytes());
        out.extend_from_slice(&hist.sum().to_le_bytes());
        out.extend_from_slice(&hist.max().to_le_bytes());
        // Sparse buckets: latency histograms are wide (1920 buckets) and
        // mostly empty, so (index, count) pairs beat the dense vector.
        let pairs: Vec<(u32, u64)> = hist
            .buckets()
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u32, n))
            .collect();
        out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
        for (index, count) in pairs {
            out.extend_from_slice(&index.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
        }
    }
}

fn put_stats_snapshot(out: &mut Vec<u8>, snapshot: &StatsSnapshot) {
    put_str(out, &snapshot.result.policy);
    out.extend_from_slice(&(snapshot.result.capacity as u64).to_le_bytes());
    put_cache_stats(out, &snapshot.result.stats);
    out.extend_from_slice(&(snapshot.result.per_client.len() as u32).to_le_bytes());
    for (client, stats) in &snapshot.result.per_client {
        out.extend_from_slice(&client.0.to_le_bytes());
        put_cache_stats(out, stats);
    }
    put_metrics(out, &snapshot.metrics);
}

/// Appends one encoded frame to `out`: the length prefix, `opcode`, `seq`,
/// and the body the closure writes.
fn frame(out: &mut Vec<u8>, opcode: u8, seq: u64, body: impl FnOnce(&mut Vec<u8>)) {
    let len_at = out.len();
    out.extend_from_slice(&[0u8; 4]); // length patched below
    out.push(opcode);
    out.extend_from_slice(&seq.to_le_bytes());
    body(out);
    let len = out.len() - len_at - 4;
    debug_assert!(len <= MAX_FRAME_LEN, "encoded frame exceeds MAX_FRAME_LEN");
    out[len_at..len_at + 4].copy_from_slice(&(len as u32).to_le_bytes());
}

fn write_hint_byte(hint: Option<WriteHint>) -> u8 {
    match hint {
        None => 0,
        Some(WriteHint::Replacement) => 1,
        Some(WriteHint::Recovery) => 2,
        Some(WriteHint::Synchronous) => 3,
    }
}

/// Appends the encoded frame for `(seq, op)` to `out`.
pub fn encode_request(seq: u64, op: &ServerRequest, out: &mut Vec<u8>) {
    match op {
        ServerRequest::Get {
            client,
            page,
            hint,
            prefetch,
        } => frame(out, OP_GET, seq, |body| {
            body.extend_from_slice(&client.0.to_le_bytes());
            body.extend_from_slice(&page.0.to_le_bytes());
            body.extend_from_slice(&hint.0.to_le_bytes());
            body.push(u8::from(*prefetch));
        }),
        ServerRequest::Put {
            client,
            page,
            hint,
            write_hint,
            data,
        } => frame(out, OP_PUT, seq, |body| {
            body.extend_from_slice(&client.0.to_le_bytes());
            body.extend_from_slice(&page.0.to_le_bytes());
            body.extend_from_slice(&hint.0.to_le_bytes());
            body.push(write_hint_byte(*write_hint));
            match data {
                Some(bytes) => {
                    body.push(1);
                    put_bytes(body, bytes);
                }
                None => body.push(0),
            }
        }),
        ServerRequest::Delete { page } => frame(out, OP_DELETE, seq, |body| {
            body.extend_from_slice(&page.0.to_le_bytes());
        }),
        ServerRequest::Stats => frame(out, OP_STATS, seq, |_| {}),
    }
}

/// Appends the encoded frame for `(seq, response)` to `out`.
pub fn encode_response(seq: u64, response: &ServerResponse, out: &mut Vec<u8>) {
    match response {
        ServerResponse::Get { hit, data } => frame(out, OP_GET_RESP, seq, |body| {
            body.push(u8::from(*hit) | (u8::from(data.is_some()) << 1));
            if let Some(bytes) = data {
                put_bytes(body, bytes);
            }
        }),
        ServerResponse::Put { hit } => frame(out, OP_PUT_RESP, seq, |body| {
            body.push(u8::from(*hit));
        }),
        ServerResponse::Delete { existed } => frame(out, OP_DELETE_RESP, seq, |body| {
            body.push(u8::from(*existed));
        }),
        ServerResponse::Stats(snapshot) => frame(out, OP_STATS_RESP, seq, |body| {
            put_stats_snapshot(body, snapshot);
        }),
        ServerResponse::Error { code } => frame(out, OP_ERR, seq, |body| {
            body.push(*code as u8);
        }),
    }
}

// ----- decoding ---------------------------------------------------------

/// A bounds-checked little-endian reader over one frame payload.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

// invariant: every `try_into().unwrap()` below converts a slice whose
// length `take` just checked against the requested width.
#[cfg_attr(not(test), allow(clippy::unwrap_used))]
impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.at < n {
            return Err(WireError::Malformed("truncated field"));
        }
        let slice = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, WireError> {
        String::from_utf8(self.bytes()?).map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }

    /// Reads a collection length and sanity-bounds it against the bytes
    /// remaining (each element needs at least `min_element` bytes), so a
    /// garbage count cannot drive a huge allocation.
    fn len(&mut self, min_element: usize) -> Result<usize, WireError> {
        let len = self.u32()? as usize;
        if len.saturating_mul(min_element.max(1)) > self.buf.len() - self.at {
            return Err(WireError::Malformed("collection longer than its frame"));
        }
        Ok(len)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after the message"))
        }
    }

    fn cache_stats(&mut self) -> Result<CacheStats, WireError> {
        Ok(CacheStats {
            read_hits: self.u64()?,
            read_misses: self.u64()?,
            write_hits: self.u64()?,
            write_misses: self.u64()?,
            evictions: self.u64()?,
            bypasses: self.u64()?,
        })
    }

    fn metrics(&mut self) -> Result<MetricsSnapshot, WireError> {
        let mut metrics = MetricsSnapshot::default();
        for _ in 0..self.len(12)? {
            let name = self.string()?;
            let value = self.u64()?;
            metrics.counters.insert(name, value);
        }
        for _ in 0..self.len(20)? {
            let name = self.string()?;
            let value = self.i64()?;
            let peak = self.i64()?;
            metrics.gauges.insert(name, GaugeSnapshot { value, peak });
        }
        for _ in 0..self.len(32)? {
            let name = self.string()?;
            let count = self.u64()?;
            let sum = self.u64()?;
            let max = self.u64()?;
            let mut buckets = Vec::new();
            for _ in 0..self.len(12)? {
                let index = self.u32()? as usize;
                let bucket_count = self.u64()?;
                if index >= clic_obs::hist::BUCKET_COUNT {
                    return Err(WireError::Malformed("histogram bucket out of range"));
                }
                if buckets.len() <= index {
                    buckets.resize(index + 1, 0);
                }
                buckets[index] = bucket_count;
            }
            metrics.histograms.insert(
                name,
                HistogramSnapshot::from_parts(buckets, count, sum, max),
            );
        }
        Ok(metrics)
    }

    fn stats_snapshot(&mut self) -> Result<StatsSnapshot, WireError> {
        let policy = self.string()?;
        let capacity = self.u64()? as usize;
        let stats = self.cache_stats()?;
        let mut per_client = std::collections::BTreeMap::new();
        for _ in 0..self.len(50)? {
            let client = ClientId(self.u16()?);
            per_client.insert(client, self.cache_stats()?);
        }
        let metrics = self.metrics()?;
        Ok(StatsSnapshot {
            result: SimulationResult {
                policy,
                capacity,
                stats,
                per_client,
            },
            metrics,
        })
    }
}

fn write_hint_from(byte: u8) -> Result<Option<WriteHint>, WireError> {
    match byte {
        0 => Ok(None),
        1 => Ok(Some(WriteHint::Replacement)),
        2 => Ok(Some(WriteHint::Recovery)),
        3 => Ok(Some(WriteHint::Synchronous)),
        _ => Err(WireError::Malformed("invalid write-hint encoding")),
    }
}

/// Decodes one request frame payload (as returned by [`take_frame`]) into
/// its correlation id and operation.
pub fn decode_request(payload: &[u8]) -> Result<(u64, ServerRequest), WireError> {
    let mut r = Reader::new(payload);
    let opcode = r.u8()?;
    let seq = r.u64()?;
    let op = match opcode {
        OP_GET => {
            let client = ClientId(r.u16()?);
            let page = PageId(r.u64()?);
            let hint = HintSetId(r.u32()?);
            let flags = r.u8()?;
            if flags > 1 {
                return Err(WireError::Malformed("invalid get flags"));
            }
            ServerRequest::Get {
                client,
                page,
                hint,
                prefetch: flags == 1,
            }
        }
        OP_PUT => {
            let client = ClientId(r.u16()?);
            let page = PageId(r.u64()?);
            let hint = HintSetId(r.u32()?);
            let write_hint = write_hint_from(r.u8()?)?;
            let data = match r.u8()? {
                0 => None,
                1 => Some(r.bytes()?),
                _ => return Err(WireError::Malformed("invalid put payload marker")),
            };
            ServerRequest::Put {
                client,
                page,
                hint,
                write_hint,
                data,
            }
        }
        OP_DELETE => ServerRequest::Delete {
            page: PageId(r.u64()?),
        },
        OP_STATS => ServerRequest::Stats,
        other => return Err(WireError::BadOpcode(other)),
    };
    r.finish()?;
    Ok((seq, op))
}

/// Decodes one response frame payload (as returned by [`take_frame`]) into
/// its correlation id and response.
pub fn decode_response(payload: &[u8]) -> Result<(u64, ServerResponse), WireError> {
    let mut r = Reader::new(payload);
    let opcode = r.u8()?;
    let seq = r.u64()?;
    let response = match opcode {
        OP_GET_RESP => {
            let flags = r.u8()?;
            if flags > 3 {
                return Err(WireError::Malformed("invalid get-response flags"));
            }
            let data = if flags & 2 != 0 {
                Some(r.bytes()?)
            } else {
                None
            };
            ServerResponse::Get {
                hit: flags & 1 != 0,
                data,
            }
        }
        OP_PUT_RESP => ServerResponse::Put {
            hit: match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("invalid hit flag")),
            },
        },
        OP_DELETE_RESP => ServerResponse::Delete {
            existed: match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("invalid existed flag")),
            },
        },
        OP_STATS_RESP => ServerResponse::Stats(Box::new(r.stats_snapshot()?)),
        OP_ERR => ServerResponse::Error {
            code: ErrorCode::from_u8(r.u8()?).ok_or(WireError::Malformed("unknown error code"))?,
        },
        other => return Err(WireError::BadOpcode(other)),
    };
    r.finish()?;
    Ok((seq, response))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_frame(op: &ServerRequest, seq: u64) -> Vec<u8> {
        let mut out = Vec::new();
        encode_request(seq, op, &mut out);
        out
    }

    #[test]
    fn requests_round_trip() {
        let ops = [
            ServerRequest::Get {
                client: ClientId(3),
                page: PageId(0xdead_beef),
                hint: HintSetId(17),
                prefetch: true,
            },
            ServerRequest::Put {
                client: ClientId(9),
                page: PageId(42),
                hint: HintSetId(0),
                write_hint: Some(WriteHint::Recovery),
                data: Some(vec![0xab; 512]),
            },
            ServerRequest::Put {
                client: ClientId(0),
                page: PageId(7),
                hint: HintSetId(1),
                write_hint: None,
                data: None,
            },
            ServerRequest::Delete { page: PageId(5) },
            ServerRequest::Stats,
        ];
        let mut stream = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            encode_request(i as u64 * 11, op, &mut stream);
        }
        let mut at = 0usize;
        for (i, op) in ops.iter().enumerate() {
            let (consumed, payload) = take_frame(&stream[at..]).unwrap().expect("complete frame");
            let (seq, decoded) = decode_request(payload).unwrap();
            assert_eq!(seq, i as u64 * 11);
            assert_eq!(&decoded, op);
            at += consumed;
        }
        assert_eq!(at, stream.len());
    }

    #[test]
    fn incomplete_frames_ask_for_more_bytes() {
        let full = request_frame(&ServerRequest::Stats, 1);
        for cut in 0..full.len() {
            assert_eq!(take_frame(&full[..cut]).unwrap(), None, "cut at {cut}");
        }
        assert!(take_frame(&full).unwrap().is_some());
    }

    #[test]
    fn oversized_and_undersized_prefixes_are_rejected_immediately() {
        let mut buf = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0; 16]);
        assert_eq!(
            take_frame(&buf),
            Err(WireError::Oversized(MAX_FRAME_LEN + 1))
        );
        let buf = 4u32.to_le_bytes().to_vec();
        assert!(matches!(take_frame(&buf), Err(WireError::Malformed(_))));
    }

    #[test]
    fn garbage_opcodes_and_truncated_bodies_do_not_panic() {
        let mut frame = request_frame(&ServerRequest::Stats, 7);
        frame[4] = 0x7f; // unknown opcode
        let (_, payload) = take_frame(&frame).unwrap().unwrap();
        assert_eq!(decode_request(payload), Err(WireError::BadOpcode(0x7f)));

        // A Get frame whose body is cut short inside the page id.
        let full = request_frame(
            &ServerRequest::Get {
                client: ClientId(1),
                page: PageId(2),
                hint: HintSetId(3),
                prefetch: false,
            },
            1,
        );
        let mut cut = full[..full.len() - 3].to_vec();
        let len = (cut.len() - 4) as u32;
        cut[..4].copy_from_slice(&len.to_le_bytes());
        let (_, payload) = take_frame(&cut).unwrap().unwrap();
        assert!(matches!(
            decode_request(payload),
            Err(WireError::Malformed(_))
        ));

        // Trailing bytes after a well-formed body are rejected too.
        let mut padded = full.clone();
        padded.push(0);
        let len = (padded.len() - 4) as u32;
        padded[..4].copy_from_slice(&len.to_le_bytes());
        let (_, payload) = take_frame(&padded).unwrap().unwrap();
        assert_eq!(
            decode_request(payload),
            Err(WireError::Malformed("trailing bytes after the message"))
        );
    }

    #[test]
    fn stats_snapshot_round_trips_with_histograms() {
        use clic_obs::{LatencyHistogram, MetricsRegistry};
        let registry = MetricsRegistry::new();
        registry.counter("store.disk_reads").add(41);
        let gauge = registry.gauge("server.queue_depth");
        gauge.add(5);
        gauge.add(-2);
        let hist = LatencyHistogram::new();
        for v in [1u64, 1, 63, 64, 100_000, 9_999_999] {
            hist.record(v);
        }
        registry
            .histogram("server.batch_service_us")
            .merge_from(&hist);
        let mut per_client = std::collections::BTreeMap::new();
        per_client.insert(
            ClientId(2),
            CacheStats {
                read_hits: 1,
                read_misses: 2,
                write_hits: 3,
                write_misses: 4,
                evictions: 5,
                bypasses: 6,
            },
        );
        let snapshot = StatsSnapshot {
            result: SimulationResult {
                policy: "clic".to_string(),
                capacity: 4096,
                stats: CacheStats {
                    read_hits: 10,
                    ..CacheStats::default()
                },
                per_client,
            },
            metrics: registry.snapshot(),
        };
        let mut out = Vec::new();
        encode_response(
            99,
            &ServerResponse::Stats(Box::new(snapshot.clone())),
            &mut out,
        );
        let (consumed, payload) = take_frame(&out).unwrap().unwrap();
        assert_eq!(consumed, out.len());
        let (seq, decoded) = decode_response(payload).unwrap();
        assert_eq!(seq, 99);
        let decoded = match decoded {
            ServerResponse::Stats(s) => s,
            other => panic!("expected stats, got {other:?}"),
        };
        assert_eq!(decoded.result, snapshot.result);
        assert_eq!(decoded.metrics.counter("store.disk_reads"), 41);
        assert_eq!(decoded.metrics.gauge("server.queue_depth").peak, 5);
        let h = decoded.metrics.histogram("server.batch_service_us");
        let original = snapshot.metrics.histogram("server.batch_service_us");
        assert_eq!(h.count(), original.count());
        assert_eq!(h.sum(), original.sum());
        assert_eq!(h.max(), original.max());
        assert_eq!(h.p50(), original.p50());
        assert_eq!(h.p999(), original.p999());
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            ServerResponse::Get {
                hit: true,
                data: Some(vec![7; 64]),
            },
            ServerResponse::Get {
                hit: false,
                data: None,
            },
            ServerResponse::Put { hit: true },
            ServerResponse::Delete { existed: false },
            ServerResponse::Error {
                code: ErrorCode::Busy,
            },
            ServerResponse::Error {
                code: ErrorCode::Corrupt,
            },
        ];
        for (i, response) in responses.iter().enumerate() {
            let mut out = Vec::new();
            encode_response(i as u64, response, &mut out);
            let (_, payload) = take_frame(&out).unwrap().unwrap();
            let (seq, decoded) = decode_response(payload).unwrap();
            assert_eq!(seq, i as u64);
            assert_eq!(decoded.hit(), response.hit());
            assert_eq!(decoded.data(), response.data());
            assert_eq!(decoded.existed(), response.existed());
            assert_eq!(decoded.error_code(), response.error_code());
        }
    }

    #[test]
    fn unknown_error_codes_are_rejected() {
        let mut out = Vec::new();
        encode_response(
            5,
            &ServerResponse::Error {
                code: ErrorCode::Io,
            },
            &mut out,
        );
        let code_at = out.len() - 1;
        for bad in [0u8, 6, 0xff] {
            out[code_at] = bad;
            let (_, payload) = take_frame(&out).unwrap().unwrap();
            assert!(matches!(
                decode_response(payload),
                Err(WireError::Malformed("unknown error code"))
            ));
        }
    }
}
