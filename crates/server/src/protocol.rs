//! The small request/response protocol spoken by [`crate::Server`].
//!
//! Requests carry exactly the information the paper's storage-server
//! interface exposes: the page, the issuing client, and the opaque hint set
//! ([`HintSetId`]) attached by the client. The server never interprets hint
//! values — CLIC learns their worth from observed re-references — so the
//! protocol stays generic across client applications, exactly as in the
//! paper.

use cache_sim::{AccessKind, ClientId, HintSetId, PageId, Request, SimulationResult, WriteHint};

/// One operation inside a batch submitted to a [`crate::Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerRequest {
    /// Read `page`; the response reports whether the server cache held it.
    Get {
        /// The storage client issuing the read.
        client: ClientId,
        /// The page being read.
        page: PageId,
        /// The opaque hint set attached to the request.
        hint: HintSetId,
        /// `true` if the read was issued by the client's prefetcher.
        prefetch: bool,
    },
    /// Write `page` back to the server.
    Put {
        /// The storage client issuing the write.
        client: ClientId,
        /// The page being written.
        page: PageId,
        /// The opaque hint set attached to the request.
        hint: HintSetId,
        /// The typed write hint, when the client exposes one.
        write_hint: Option<WriteHint>,
    },
    /// Ask for a point-in-time statistics snapshot of the whole server.
    Stats,
}

impl ServerRequest {
    /// Converts a simulator [`Request`] into the protocol representation.
    pub fn from_request(req: &Request) -> Self {
        match req.kind {
            AccessKind::Read => ServerRequest::Get {
                client: req.client,
                page: req.page,
                hint: req.hint,
                prefetch: req.prefetch,
            },
            AccessKind::Write => ServerRequest::Put {
                client: req.client,
                page: req.page,
                hint: req.hint,
                write_hint: req.write_hint,
            },
        }
    }

    /// The simulator [`Request`] this operation corresponds to, or `None`
    /// for [`ServerRequest::Stats`], which does not touch any page.
    pub fn to_request(&self) -> Option<Request> {
        match *self {
            ServerRequest::Get {
                client,
                page,
                hint,
                prefetch,
            } => Some(Request {
                prefetch,
                ..Request::read(client, page, hint)
            }),
            ServerRequest::Put {
                client,
                page,
                hint,
                write_hint,
            } => Some(Request::write(client, page, write_hint, hint)),
            ServerRequest::Stats => None,
        }
    }
}

/// The server's answer to one [`ServerRequest`], in batch order.
#[derive(Debug, Clone)]
pub enum ServerResponse {
    /// Answer to a [`ServerRequest::Get`].
    Get {
        /// `true` if the page was cached when the request was served.
        hit: bool,
    },
    /// Answer to a [`ServerRequest::Put`].
    Put {
        /// `true` if the page was cached when the request was served.
        hit: bool,
    },
    /// Answer to a [`ServerRequest::Stats`]: statistics over every request
    /// whose response had been delivered when the snapshot was taken.
    Stats(Box<SimulationResult>),
}

impl ServerResponse {
    /// The hit flag of a data response (`None` for [`ServerResponse::Stats`]).
    pub fn hit(&self) -> Option<bool> {
        match self {
            ServerResponse::Get { hit } | ServerResponse::Put { hit } => Some(*hit),
            ServerResponse::Stats(_) => None,
        }
    }

    /// The snapshot of a stats response (`None` for data responses).
    pub fn stats(&self) -> Option<&SimulationResult> {
        match self {
            ServerResponse::Stats(result) => Some(result),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_the_protocol() {
        let read = Request::read(ClientId(1), PageId(7), HintSetId(3));
        let prefetch = Request::prefetch(ClientId(1), PageId(8), HintSetId(3));
        let write = Request::write(
            ClientId(2),
            PageId(9),
            Some(WriteHint::Replacement),
            HintSetId(4),
        );
        for req in [read, prefetch, write] {
            let round_tripped = ServerRequest::from_request(&req)
                .to_request()
                .expect("data request");
            assert_eq!(round_tripped, req);
        }
        assert_eq!(ServerRequest::Stats.to_request(), None);
    }

    #[test]
    fn response_accessors_discriminate_variants() {
        assert_eq!(ServerResponse::Get { hit: true }.hit(), Some(true));
        assert_eq!(ServerResponse::Put { hit: false }.hit(), Some(false));
        let stats = ServerResponse::Stats(Box::default());
        assert_eq!(stats.hit(), None);
        assert!(stats.stats().is_some());
        assert!(ServerResponse::Get { hit: true }.stats().is_none());
    }
}
