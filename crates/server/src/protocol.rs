//! The small request/response protocol spoken by [`crate::Server`].
//!
//! Requests carry exactly the information the paper's storage-server
//! interface exposes: the page, the issuing client, and the opaque hint set
//! ([`HintSetId`]) attached by the client. The server never interprets hint
//! values — CLIC learns their worth from observed re-references — so the
//! protocol stays generic across client applications, exactly as in the
//! paper.

use cache_sim::{AccessKind, ClientId, HintSetId, PageId, Request, SimulationResult, WriteHint};
use clic_obs::MetricsSnapshot;

/// The payload of a [`ServerResponse::Stats`]: the policy-level statistics
/// snapshot plus the full metrics snapshot of the observability layer —
/// every `store.*` I/O counter across the shard stores and, when the server
/// runs with an enabled [`clic_obs::Recorder`], the `server.*` gauges and
/// latency histograms. `metrics` is empty (not absent) on a server without
/// a store and without a recorder, so clients can always merge it.
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// Statistics over every request whose response had been delivered when
    /// the snapshot was taken, in the shape of a simulation result.
    pub result: SimulationResult,
    /// The merged metrics snapshot (server registry + per-shard stores).
    pub metrics: MetricsSnapshot,
}

/// One operation inside a batch submitted to a [`crate::Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerRequest {
    /// Read `page`; the response reports whether the server cache held it
    /// (and, on a store-backed server, carries the page's bytes).
    Get {
        /// The storage client issuing the read.
        client: ClientId,
        /// The page being read.
        page: PageId,
        /// The opaque hint set attached to the request.
        hint: HintSetId,
        /// `true` if the read was issued by the client's prefetcher.
        prefetch: bool,
    },
    /// Write `page` back to the server.
    Put {
        /// The storage client issuing the write.
        client: ClientId,
        /// The page being written.
        page: PageId,
        /// The opaque hint set attached to the request.
        hint: HintSetId,
        /// The typed write hint, when the client exposes one.
        write_hint: Option<WriteHint>,
        /// The page bytes, on a store-backed server (zero-padded to the
        /// store's page size if shorter). `None` lets the server synthesize
        /// a deterministic payload — the policy-only server ignores payloads
        /// entirely.
        data: Option<Vec<u8>>,
    },
    /// Drop `page` everywhere: the shard cache forgets it (without leaving
    /// an outqueue ghost) and a store-backed server frees the page's bytes
    /// — discarded frame, WAL delete record, freed disk slot. A delete is
    /// not an access: it does not touch hit/miss statistics or hint
    /// learning.
    Delete {
        /// The page being invalidated.
        page: PageId,
    },
    /// Ask for a point-in-time statistics snapshot of the whole server.
    Stats,
}

impl ServerRequest {
    /// Converts a simulator [`Request`] into the protocol representation.
    pub fn from_request(req: &Request) -> Self {
        match req.kind {
            AccessKind::Read => ServerRequest::Get {
                client: req.client,
                page: req.page,
                hint: req.hint,
                prefetch: req.prefetch,
            },
            AccessKind::Write => ServerRequest::Put {
                client: req.client,
                page: req.page,
                hint: req.hint,
                write_hint: req.write_hint,
                data: None,
            },
        }
    }

    /// Attaches page bytes to a [`ServerRequest::Put`]; a no-op on other
    /// operations.
    pub fn with_payload(mut self, payload: Vec<u8>) -> Self {
        if let ServerRequest::Put { data, .. } = &mut self {
            *data = Some(payload);
        }
        self
    }

    /// The simulator [`Request`] this operation corresponds to, or `None`
    /// for [`ServerRequest::Delete`] and [`ServerRequest::Stats`], which are
    /// not cache accesses.
    pub fn to_request(&self) -> Option<Request> {
        match *self {
            ServerRequest::Get {
                client,
                page,
                hint,
                prefetch,
            } => Some(Request {
                prefetch,
                ..Request::read(client, page, hint)
            }),
            ServerRequest::Put {
                client,
                page,
                hint,
                write_hint,
                ..
            } => Some(Request::write(client, page, write_hint, hint)),
            ServerRequest::Delete { .. } | ServerRequest::Stats => None,
        }
    }

    /// The page this operation touches (`None` for
    /// [`ServerRequest::Stats`]), which decides the shard it routes to.
    pub fn page(&self) -> Option<PageId> {
        match *self {
            ServerRequest::Get { page, .. }
            | ServerRequest::Put { page, .. }
            | ServerRequest::Delete { page } => Some(page),
            ServerRequest::Stats => None,
        }
    }
}

/// Typed error codes carried by [`ServerResponse::Error`] and the
/// `OP_ERR` wire frame (one byte on the wire).
///
/// The codes classify *what the client should do*, not the failure's
/// internal details: [`ErrorCode::Busy`] is retryable after backoff, the
/// rest indicate the request itself failed server-side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// A storage I/O operation failed (failed write, failed `fsync`); the
    /// request was not applied.
    Io = 1,
    /// Stored data failed integrity verification (a torn frame caught by
    /// CRC); the request could not be served from disk.
    Corrupt = 2,
    /// The server shed the request under load — the connection's in-flight
    /// window or the target shard's queue was full. Retry after backoff.
    Busy = 3,
    /// The server is shutting down; the request was not served.
    Shutdown = 4,
    /// Any other server-side failure.
    Internal = 5,
}

impl ErrorCode {
    /// Parses the wire byte; `None` for unknown codes (the decoder rejects
    /// the frame as malformed rather than inventing a meaning).
    pub fn from_u8(code: u8) -> Option<ErrorCode> {
        match code {
            1 => Some(ErrorCode::Io),
            2 => Some(ErrorCode::Corrupt),
            3 => Some(ErrorCode::Busy),
            4 => Some(ErrorCode::Shutdown),
            5 => Some(ErrorCode::Internal),
            _ => None,
        }
    }

    /// Classifies a storage-layer error: CRC/framing damage is
    /// [`ErrorCode::Corrupt`], everything else [`ErrorCode::Io`].
    pub fn from_io_error(err: &std::io::Error) -> ErrorCode {
        if err.kind() == std::io::ErrorKind::InvalidData {
            ErrorCode::Corrupt
        } else {
            ErrorCode::Io
        }
    }

    /// Whether a client should retry the request (after backoff) on this
    /// code.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Busy)
    }

    /// Short stable name for logs and reports.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::Io => "io",
            ErrorCode::Corrupt => "corrupt",
            ErrorCode::Busy => "busy",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Internal => "internal",
        }
    }
}

/// The server's answer to one [`ServerRequest`], in batch order.
#[derive(Debug, Clone)]
pub enum ServerResponse {
    /// Answer to a [`ServerRequest::Get`].
    Get {
        /// `true` if the page was cached when the request was served.
        hit: bool,
        /// The page bytes, on a store-backed server (`None` on the
        /// policy-only server). A page never written reads as zeroes.
        data: Option<Vec<u8>>,
    },
    /// Answer to a [`ServerRequest::Put`].
    Put {
        /// `true` if the page was cached when the request was served.
        hit: bool,
    },
    /// Answer to a [`ServerRequest::Delete`].
    Delete {
        /// `true` if the server held the page anywhere (cache or disk) when
        /// the delete was served.
        existed: bool,
    },
    /// Answer to a [`ServerRequest::Stats`]: policy statistics over every
    /// request whose response had been delivered when the snapshot was
    /// taken, plus the server's full metrics snapshot (see
    /// [`StatsSnapshot`]).
    Stats(Box<StatsSnapshot>),
    /// The request failed server-side (or was shed under load); the
    /// [`ErrorCode`] says why and whether a retry makes sense. Carried on
    /// the wire as an `OP_ERR` frame.
    Error {
        /// Why the request failed.
        code: ErrorCode,
    },
}

impl ServerResponse {
    /// The hit flag of a data response (`None` for
    /// [`ServerResponse::Delete`] and [`ServerResponse::Stats`], which are
    /// not cache accesses).
    pub fn hit(&self) -> Option<bool> {
        match self {
            ServerResponse::Get { hit, .. } | ServerResponse::Put { hit } => Some(*hit),
            ServerResponse::Delete { .. }
            | ServerResponse::Stats(_)
            | ServerResponse::Error { .. } => None,
        }
    }

    /// The error code of a [`ServerResponse::Error`] (`None` for
    /// successful responses).
    pub fn error_code(&self) -> Option<ErrorCode> {
        match self {
            ServerResponse::Error { code } => Some(*code),
            _ => None,
        }
    }

    /// The existed flag of a [`ServerResponse::Delete`] (`None` for every
    /// other response).
    pub fn existed(&self) -> Option<bool> {
        match self {
            ServerResponse::Delete { existed } => Some(*existed),
            _ => None,
        }
    }

    /// The page bytes of a store-backed [`ServerResponse::Get`] (`None` for
    /// every other response).
    pub fn data(&self) -> Option<&[u8]> {
        match self {
            ServerResponse::Get { data, .. } => data.as_deref(),
            _ => None,
        }
    }

    /// The policy-statistics snapshot of a stats response (`None` for data
    /// responses).
    pub fn stats(&self) -> Option<&SimulationResult> {
        match self {
            ServerResponse::Stats(snapshot) => Some(&snapshot.result),
            _ => None,
        }
    }

    /// The metrics snapshot of a stats response (`None` for data
    /// responses).
    pub fn metrics(&self) -> Option<&MetricsSnapshot> {
        match self {
            ServerResponse::Stats(snapshot) => Some(&snapshot.metrics),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_the_protocol() {
        let read = Request::read(ClientId(1), PageId(7), HintSetId(3));
        let prefetch = Request::prefetch(ClientId(1), PageId(8), HintSetId(3));
        let write = Request::write(
            ClientId(2),
            PageId(9),
            Some(WriteHint::Replacement),
            HintSetId(4),
        );
        for req in [read, prefetch, write] {
            let round_tripped = ServerRequest::from_request(&req)
                .to_request()
                .expect("data request");
            assert_eq!(round_tripped, req);
        }
        assert_eq!(ServerRequest::Stats.to_request(), None);
    }

    #[test]
    fn response_accessors_discriminate_variants() {
        let get = ServerResponse::Get {
            hit: true,
            data: Some(vec![1, 2, 3]),
        };
        assert_eq!(get.hit(), Some(true));
        assert_eq!(get.data(), Some(&[1u8, 2, 3][..]));
        let put = ServerResponse::Put { hit: false };
        assert_eq!(put.hit(), Some(false));
        assert_eq!(put.data(), None);
        let stats = ServerResponse::Stats(Box::default());
        assert_eq!(stats.hit(), None);
        assert!(stats.stats().is_some());
        assert!(stats.metrics().is_some());
        assert!(get.stats().is_none());
        assert!(get.metrics().is_none());
        let error = ServerResponse::Error {
            code: ErrorCode::Busy,
        };
        assert_eq!(error.error_code(), Some(ErrorCode::Busy));
        assert_eq!(error.hit(), None);
        assert_eq!(error.existed(), None);
        assert_eq!(error.data(), None);
        assert!(error.stats().is_none());
        assert_eq!(get.error_code(), None);
    }

    #[test]
    fn error_codes_round_trip_their_wire_byte() {
        for code in [
            ErrorCode::Io,
            ErrorCode::Corrupt,
            ErrorCode::Busy,
            ErrorCode::Shutdown,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0), None);
        assert_eq!(ErrorCode::from_u8(6), None);
        assert!(ErrorCode::Busy.is_retryable());
        assert!(!ErrorCode::Io.is_retryable());
        let torn = std::io::Error::new(std::io::ErrorKind::InvalidData, "torn frame");
        assert_eq!(ErrorCode::from_io_error(&torn), ErrorCode::Corrupt);
        let eio = std::io::Error::other("injected fault");
        assert_eq!(ErrorCode::from_io_error(&eio), ErrorCode::Io);
    }

    #[test]
    fn payloads_attach_to_puts_and_drop_through_to_request() {
        let put = ServerRequest::from_request(&Request::write(
            ClientId(1),
            PageId(2),
            None,
            HintSetId(0),
        ));
        assert!(matches!(&put, ServerRequest::Put { data: None, .. }));
        let put = put.with_payload(vec![0xab; 16]);
        match &put {
            ServerRequest::Put { data, .. } => assert_eq!(data.as_deref(), Some(&[0xab; 16][..])),
            other => panic!("expected a Put, got {other:?}"),
        }
        // The payload never reaches the policy-level request.
        assert_eq!(
            put.to_request(),
            Some(Request::write(ClientId(1), PageId(2), None, HintSetId(0)))
        );
        // with_payload on a Get is a no-op.
        let get = ServerRequest::Get {
            client: ClientId(0),
            page: PageId(1),
            hint: HintSetId(0),
            prefetch: false,
        };
        assert_eq!(get.clone().with_payload(vec![1]), get);
    }
}
