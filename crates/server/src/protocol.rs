//! The small request/response protocol spoken by [`crate::Server`].
//!
//! Requests carry exactly the information the paper's storage-server
//! interface exposes: the page, the issuing client, and the opaque hint set
//! ([`HintSetId`]) attached by the client. The server never interprets hint
//! values — CLIC learns their worth from observed re-references — so the
//! protocol stays generic across client applications, exactly as in the
//! paper.

use cache_sim::{AccessKind, ClientId, HintSetId, PageId, Request, SimulationResult, WriteHint};
use clic_obs::MetricsSnapshot;

/// The payload of a [`ServerResponse::Stats`]: the policy-level statistics
/// snapshot plus the full metrics snapshot of the observability layer —
/// every `store.*` I/O counter across the shard stores and, when the server
/// runs with an enabled [`clic_obs::Recorder`], the `server.*` gauges and
/// latency histograms. `metrics` is empty (not absent) on a server without
/// a store and without a recorder, so clients can always merge it.
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// Statistics over every request whose response had been delivered when
    /// the snapshot was taken, in the shape of a simulation result.
    pub result: SimulationResult,
    /// The merged metrics snapshot (server registry + per-shard stores).
    pub metrics: MetricsSnapshot,
}

/// One operation inside a batch submitted to a [`crate::Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerRequest {
    /// Read `page`; the response reports whether the server cache held it
    /// (and, on a store-backed server, carries the page's bytes).
    Get {
        /// The storage client issuing the read.
        client: ClientId,
        /// The page being read.
        page: PageId,
        /// The opaque hint set attached to the request.
        hint: HintSetId,
        /// `true` if the read was issued by the client's prefetcher.
        prefetch: bool,
    },
    /// Write `page` back to the server.
    Put {
        /// The storage client issuing the write.
        client: ClientId,
        /// The page being written.
        page: PageId,
        /// The opaque hint set attached to the request.
        hint: HintSetId,
        /// The typed write hint, when the client exposes one.
        write_hint: Option<WriteHint>,
        /// The page bytes, on a store-backed server (zero-padded to the
        /// store's page size if shorter). `None` lets the server synthesize
        /// a deterministic payload — the policy-only server ignores payloads
        /// entirely.
        data: Option<Vec<u8>>,
    },
    /// Drop `page` everywhere: the shard cache forgets it (without leaving
    /// an outqueue ghost) and a store-backed server frees the page's bytes
    /// — discarded frame, WAL delete record, freed disk slot. A delete is
    /// not an access: it does not touch hit/miss statistics or hint
    /// learning.
    Delete {
        /// The page being invalidated.
        page: PageId,
    },
    /// Ask for a point-in-time statistics snapshot of the whole server.
    Stats,
}

impl ServerRequest {
    /// Converts a simulator [`Request`] into the protocol representation.
    pub fn from_request(req: &Request) -> Self {
        match req.kind {
            AccessKind::Read => ServerRequest::Get {
                client: req.client,
                page: req.page,
                hint: req.hint,
                prefetch: req.prefetch,
            },
            AccessKind::Write => ServerRequest::Put {
                client: req.client,
                page: req.page,
                hint: req.hint,
                write_hint: req.write_hint,
                data: None,
            },
        }
    }

    /// Attaches page bytes to a [`ServerRequest::Put`]; a no-op on other
    /// operations.
    pub fn with_payload(mut self, payload: Vec<u8>) -> Self {
        if let ServerRequest::Put { data, .. } = &mut self {
            *data = Some(payload);
        }
        self
    }

    /// The simulator [`Request`] this operation corresponds to, or `None`
    /// for [`ServerRequest::Delete`] and [`ServerRequest::Stats`], which are
    /// not cache accesses.
    pub fn to_request(&self) -> Option<Request> {
        match *self {
            ServerRequest::Get {
                client,
                page,
                hint,
                prefetch,
            } => Some(Request {
                prefetch,
                ..Request::read(client, page, hint)
            }),
            ServerRequest::Put {
                client,
                page,
                hint,
                write_hint,
                ..
            } => Some(Request::write(client, page, write_hint, hint)),
            ServerRequest::Delete { .. } | ServerRequest::Stats => None,
        }
    }

    /// The page this operation touches (`None` for
    /// [`ServerRequest::Stats`]), which decides the shard it routes to.
    pub fn page(&self) -> Option<PageId> {
        match *self {
            ServerRequest::Get { page, .. }
            | ServerRequest::Put { page, .. }
            | ServerRequest::Delete { page } => Some(page),
            ServerRequest::Stats => None,
        }
    }
}

/// The server's answer to one [`ServerRequest`], in batch order.
#[derive(Debug, Clone)]
pub enum ServerResponse {
    /// Answer to a [`ServerRequest::Get`].
    Get {
        /// `true` if the page was cached when the request was served.
        hit: bool,
        /// The page bytes, on a store-backed server (`None` on the
        /// policy-only server). A page never written reads as zeroes.
        data: Option<Vec<u8>>,
    },
    /// Answer to a [`ServerRequest::Put`].
    Put {
        /// `true` if the page was cached when the request was served.
        hit: bool,
    },
    /// Answer to a [`ServerRequest::Delete`].
    Delete {
        /// `true` if the server held the page anywhere (cache or disk) when
        /// the delete was served.
        existed: bool,
    },
    /// Answer to a [`ServerRequest::Stats`]: policy statistics over every
    /// request whose response had been delivered when the snapshot was
    /// taken, plus the server's full metrics snapshot (see
    /// [`StatsSnapshot`]).
    Stats(Box<StatsSnapshot>),
}

impl ServerResponse {
    /// The hit flag of a data response (`None` for
    /// [`ServerResponse::Delete`] and [`ServerResponse::Stats`], which are
    /// not cache accesses).
    pub fn hit(&self) -> Option<bool> {
        match self {
            ServerResponse::Get { hit, .. } | ServerResponse::Put { hit } => Some(*hit),
            ServerResponse::Delete { .. } | ServerResponse::Stats(_) => None,
        }
    }

    /// The existed flag of a [`ServerResponse::Delete`] (`None` for every
    /// other response).
    pub fn existed(&self) -> Option<bool> {
        match self {
            ServerResponse::Delete { existed } => Some(*existed),
            _ => None,
        }
    }

    /// The page bytes of a store-backed [`ServerResponse::Get`] (`None` for
    /// every other response).
    pub fn data(&self) -> Option<&[u8]> {
        match self {
            ServerResponse::Get { data, .. } => data.as_deref(),
            _ => None,
        }
    }

    /// The policy-statistics snapshot of a stats response (`None` for data
    /// responses).
    pub fn stats(&self) -> Option<&SimulationResult> {
        match self {
            ServerResponse::Stats(snapshot) => Some(&snapshot.result),
            _ => None,
        }
    }

    /// The metrics snapshot of a stats response (`None` for data
    /// responses).
    pub fn metrics(&self) -> Option<&MetricsSnapshot> {
        match self {
            ServerResponse::Stats(snapshot) => Some(&snapshot.metrics),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_the_protocol() {
        let read = Request::read(ClientId(1), PageId(7), HintSetId(3));
        let prefetch = Request::prefetch(ClientId(1), PageId(8), HintSetId(3));
        let write = Request::write(
            ClientId(2),
            PageId(9),
            Some(WriteHint::Replacement),
            HintSetId(4),
        );
        for req in [read, prefetch, write] {
            let round_tripped = ServerRequest::from_request(&req)
                .to_request()
                .expect("data request");
            assert_eq!(round_tripped, req);
        }
        assert_eq!(ServerRequest::Stats.to_request(), None);
    }

    #[test]
    fn response_accessors_discriminate_variants() {
        let get = ServerResponse::Get {
            hit: true,
            data: Some(vec![1, 2, 3]),
        };
        assert_eq!(get.hit(), Some(true));
        assert_eq!(get.data(), Some(&[1u8, 2, 3][..]));
        let put = ServerResponse::Put { hit: false };
        assert_eq!(put.hit(), Some(false));
        assert_eq!(put.data(), None);
        let stats = ServerResponse::Stats(Box::default());
        assert_eq!(stats.hit(), None);
        assert!(stats.stats().is_some());
        assert!(stats.metrics().is_some());
        assert!(get.stats().is_none());
        assert!(get.metrics().is_none());
    }

    #[test]
    fn payloads_attach_to_puts_and_drop_through_to_request() {
        let put = ServerRequest::from_request(&Request::write(
            ClientId(1),
            PageId(2),
            None,
            HintSetId(0),
        ));
        assert!(matches!(&put, ServerRequest::Put { data: None, .. }));
        let put = put.with_payload(vec![0xab; 16]);
        match &put {
            ServerRequest::Put { data, .. } => assert_eq!(data.as_deref(), Some(&[0xab; 16][..])),
            other => panic!("expected a Put, got {other:?}"),
        }
        // The payload never reaches the policy-level request.
        assert_eq!(
            put.to_request(),
            Some(Request::write(ClientId(1), PageId(2), None, HintSetId(0)))
        );
        // with_payload on a Get is a no-op.
        let get = ServerRequest::Get {
            client: ClientId(0),
            page: PageId(1),
            hint: HintSetId(0),
            prefetch: false,
        };
        assert_eq!(get.clone().with_payload(vec![1]), get);
    }
}
