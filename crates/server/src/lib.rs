//! A concurrent, sharded storage-server cache *service* built on the CLIC
//! policy — the online counterpart of the offline trace simulations in the
//! rest of the workspace.
//!
//! The paper evaluates CLIC by replaying recorded traces through a
//! single-threaded simulator, but its premise is a live second-tier cache
//! serving many concurrent database clients (Section 1 and the multi-client
//! experiment of Figure 11). This crate provides that server:
//!
//! * [`ShardedClic`] — a thread-safe cache that hash-partitions the page
//!   space across N independently locked CLIC shards. Each shard keeps its
//!   own hint statistics; a periodic *cross-shard priority merge* (built on
//!   [`clic_core::Clic::export_priorities`] /
//!   [`clic_core::Clic::import_priorities`]) request-weight-averages the
//!   shards' hint-set priorities so hint learning is not fragmented by the
//!   partitioning. With one shard it behaves *exactly* like a single
//!   [`clic_core::Clic`] driven by [`cache_sim::simulate`].
//! * [`Server`] — a long-running front-end that accepts *batches* of
//!   [`ServerRequest`]s (`Get`/`Put`/`Stats`, carrying the existing opaque
//!   hint sets) and dispatches them to one worker thread per shard over
//!   bounded channels, giving back-pressure instead of unbounded queueing.
//! * [`run_load`] — a closed-loop load harness that spawns one client thread
//!   per input trace (typically [`trace_gen`] presets over disjoint page
//!   ranges), drives them against a server concurrently, and reports
//!   throughput (requests/s), batch latency percentiles, and per-client hit
//!   ratios in the same shape as [`cache_sim::SimulationResult`].
//! * An optional **data plane**: attach a disk-backed page store
//!   ([`ServerConfig::with_store`], built on [`clic_store`]) and the server
//!   moves real bytes — `Put` payloads are staged write-back through a
//!   write-ahead log, `Get` responses carry the page's bytes, the policy's
//!   evictions flush dirty buffer frames, and [`Server::shutdown`]
//!   checkpoints the store (dropping the server instead models a crash, from
//!   which the WAL recovers every acknowledged write).
//! * A **network front-end** ([`NetServer`]): one event-loop thread puts
//!   the server behind real TCP and (on Unix) Unix-domain sockets speaking
//!   the length-prefixed binary protocol of [`wire`], multiplexed with the
//!   readiness poller of [`sys`] — no thread per connection, per-connection
//!   in-flight windows for back-pressure, and per-shard coalescing into
//!   the same batched worker path `submit` uses. [`openloop`] is the
//!   matching open-loop Poisson load generator whose latency percentiles
//!   are free of coordinated omission.
//! * **Observability**: pass an enabled [`clic_obs::Recorder`]
//!   ([`ServerConfig::with_recorder`]) and the server reports a queue-depth
//!   gauge, per-sub-batch service-time and client-observed batch-latency
//!   histograms, and `ShardBatch`/`PriorityMerge` trace spans — plus, on a
//!   store-backed server, the store's WAL/flush/latch spans, since the
//!   recorder is shared with every shard store. A [`ServerRequest::Stats`]
//!   response carries the merged [`clic_obs::MetricsSnapshot`]
//!   ([`StatsSnapshot`]) alongside the policy statistics; the `store.*`
//!   I/O counters in it are always on, recorder or not.
//!
//! # Example
//!
//! ```
//! use cache_sim::{AccessKind, TraceBuilder};
//! use clic_server::{Server, ServerConfig, ServerRequest, ServerResponse};
//!
//! // A tiny workload: one client re-reading a handful of pages.
//! let mut b = TraceBuilder::new();
//! let client = b.add_client("db", &[("kind", 2)]);
//! let hint = b.intern_hints(client, &[0]);
//! for round in 0..4u64 {
//!     for page in 0..8u64 {
//!         b.push(client, page, AccessKind::Read, None, hint);
//!     }
//!     let _ = round;
//! }
//! let trace = b.build();
//!
//! // Serve it through a 2-shard server, one batch at a time.
//! let server = Server::start(ServerConfig::new(16).with_shards(2));
//! let mut hits = 0u64;
//! for chunk in trace.requests.chunks(8) {
//!     let batch: Vec<ServerRequest> = chunk.iter().map(ServerRequest::from_request).collect();
//!     for response in server.submit(&batch) {
//!         if let ServerResponse::Get { hit: true, .. } = response {
//!             hits += 1;
//!         }
//!     }
//! }
//! let result = server.shutdown();
//! assert_eq!(result.stats.requests(), trace.len() as u64);
//! assert_eq!(result.stats.read_hits, hits);
//! // Every pass after the first hits: the working set fits the cache.
//! assert!(result.read_hit_ratio() > 0.7);
//! ```
//!
//! # Wire protocol
//!
//! Every message on a connection is one frame (all integers
//! little-endian; see [`wire`] for the codec and per-message bodies):
//!
//! | offset | size | field | meaning |
//! |-------:|-----:|-------|---------|
//! | 0 | 4 | `len: u32` | bytes after this prefix (opcode + seq + body), at most [`wire::MAX_FRAME_LEN`] |
//! | 4 | 1 | `opcode: u8` | `0x01` Get, `0x02` Put, `0x03` Delete, `0x04` Stats; responses are the same values with the high bit set (`0x81`–`0x84`), plus `0x85` Error |
//! | 5 | 8 | `seq: u64` | client-chosen correlation id, echoed verbatim on the response (responses may arrive out of order across shards) |
//! | 13 | `len - 9` | body | per-opcode payload |
//!
//! Request bodies: `Get` is `client: u16, page: u64, hint: u32,
//! flags: u8` (bit 0 = prefetch); `Put` is `client: u16, page: u64,
//! hint: u32, write_hint: u8` (0 none / 1 replacement / 2 recovery /
//! 3 synchronous) `, has_data: u8` then, if 1, `data_len: u32` + bytes;
//! `Delete` is `page: u64`; `Stats` is empty. Response bodies: `Get` is
//! `flags: u8` (bit 0 = hit, bit 1 = data present) then, if present,
//! `data_len: u32` + bytes; `Put` is `hit: u8`; `Delete` is
//! `existed: u8`; `Stats` carries the full [`StatsSnapshot`] — policy
//! result, counters, gauges, and sparse `(index, count)` histogram
//! buckets. Decoding is strict: unknown opcodes, truncated fields,
//! out-of-range enums, and trailing bytes are all rejected
//! ([`wire::WireError`]) and close the offending connection.
//!
//! An `Error` response (`0x85`, [`wire::OP_ERR`]) may answer *any* request
//! in place of its normal response when the server cannot complete it. Its
//! body is a single `code: u8`:
//!
//! | code | [`ErrorCode`] | meaning | retryable |
//! |-----:|---------------|---------|-----------|
//! | 1 | `Io` | the data plane failed an I/O operation (read, write, or fsync) | no |
//! | 2 | `Corrupt` | a page failed its CRC on read | no |
//! | 3 | `Busy` | load shed: the connection's in-flight window or a shard queue is full | yes |
//! | 4 | `Shutdown` | the server is shutting down | no |
//! | 5 | `Internal` | unexpected server-side failure | no |
//!
//! Only `Busy` is worth retrying ([`ErrorCode::is_retryable`]); the client's
//! [`RetryPolicy`] backs off exponentially with jitter before resending.
//!
//! # Robustness
//!
//! The server is built to degrade, not die, under a hostile environment:
//!
//! * **Fault injection** ([`clic_store::FaultInjector`], re-exported here):
//!   a seeded, deterministic schedule of injectable faults covering the
//!   disk/WAL surface (failed or short reads/writes, failed fsyncs, torn
//!   writes, CRC corruption) via [`StoreConfig::with_fault_injector`] and
//!   the network surface (accept failures, connection resets, partial
//!   socket writes) via [`NetOptions`]. Disabled injectors are a single
//!   branch on the hot path — the same zero-cost-when-off contract as the
//!   [`Recorder`].
//! * **Error propagation**: store errors flow from the shard workers
//!   through the completion path into `Error` frames instead of panicking
//!   the worker; the event loop sheds load with `Busy` when back-pressure
//!   saturates (opt-in via [`NetOptions`], since a well-provisioned
//!   deployment prefers blocking back-pressure).
//! * **Graceful degradation**: [`BlockingClient`] supports connect/read/write
//!   timeouts, reconnection, and bounded seeded-jitter retries
//!   ([`RetryPolicy`]); the open-loop generator counts errored and shed
//!   responses separately from completions instead of aborting the run.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![deny(clippy::disallowed_methods)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod harness;
pub mod net;
pub mod openloop;
pub mod protocol;
pub mod server;
pub mod sharded;
pub mod sys;
pub mod wire;

pub use harness::{
    merge_client_traces, preset_client_traces, run_load, ClientLoad, LatencySummary, LoadConfig,
    LoadReport, CLIENT_BATCH_HISTOGRAM,
};
pub use net::{BlockingClient, NetOptions, NetServer, RetryPolicy};
pub use openloop::{run_open_loop, OpenLoopConfig, OpenLoopReport};
pub use protocol::{ErrorCode, ServerRequest, ServerResponse, StatsSnapshot};
pub use server::{Server, ServerConfig, ShardOutcome, BATCH_SERVICE_HISTOGRAM, QUEUE_DEPTH_GAUGE};
pub use sharded::{MergeWeighting, ShardedClic, ShardedClicConfig};
pub use wire::WireError;

// Re-exported so server embedders can configure the data plane without
// depending on `clic-store` directly.
pub use clic_store::{
    Durability, FaultInjector, FaultPoint, PageStore, StoreConfig, StoreError, DEFAULT_PAGE_SIZE,
};

// Observability types appearing in this crate's public API
// ([`ServerConfig::with_recorder`], [`StatsSnapshot::metrics`]).
pub use clic_obs::{MetricsSnapshot, Recorder, SpanKind, TraceDump};
