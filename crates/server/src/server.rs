//! The long-running server front-end: batched request dispatch to shard
//! worker threads over bounded channels.
//!
//! One worker thread per shard owns that shard's request stream. The
//! front-end splits every submitted batch by shard, sends the per-shard
//! sub-batches through *bounded* channels (so a slow shard exerts
//! back-pressure on clients instead of queueing unboundedly), and reassembles
//! the responses in batch order. Requests for the same shard are processed in
//! submission order; requests for different shards proceed concurrently.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use cache_sim::{IoStats, Request, SimulationResult, REPLAY_CHUNK};
use clic_core::ClicConfig;
use clic_obs::{Gauge, MetricsSnapshot, Recorder, SpanKind};
use clic_store::{Durability, StoreConfig, StoreError};

use crate::protocol::{ErrorCode, ServerRequest, ServerResponse, StatsSnapshot};
use crate::sharded::{MergeWeighting, ShardedClic, ShardedClicConfig};

/// Gauge name for the number of sub-batches currently queued (or in
/// flight) across all shard workers; its peak records the deepest backlog.
pub const QUEUE_DEPTH_GAUGE: &str = "server.queue_depth";

/// Histogram name for per-sub-batch shard-worker service time in
/// microseconds (dequeue to last reply sent).
pub const BATCH_SERVICE_HISTOGRAM: &str = "server.batch_service_us";

/// Configuration for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The sharded cache the server fronts.
    pub cache: ShardedClicConfig,
    /// Bound of each shard worker's request queue, in sub-batches. Small
    /// values give tighter back-pressure; the default of 4 keeps a worker
    /// busy while the next batch is being partitioned.
    pub queue_depth: usize,
    /// WAL durability applied to the attached store at start-up, when set —
    /// a server-level knob so deployments can pick the
    /// acknowledgement/`fsync` trade without rebuilding the
    /// [`StoreConfig`]. `None` keeps whatever the store config says.
    pub durability: Option<Durability>,
    /// How long [`Server::try_shutdown`] waits for the background flusher
    /// to acknowledge its stop before declaring the disk wedged.
    pub shutdown_timeout: Duration,
}

impl ServerConfig {
    /// A single-shard server over a `capacity`-page CLIC cache.
    pub fn new(capacity: usize) -> Self {
        ServerConfig {
            cache: ShardedClicConfig::new(capacity),
            queue_depth: 4,
            durability: None,
            shutdown_timeout: Duration::from_secs(30),
        }
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.cache = self.cache.with_shards(shards);
        self
    }

    /// Sets the per-shard CLIC configuration (window in global requests) and
    /// aligns the merge period with its window — call
    /// [`ServerConfig::with_merge_every`] *after* this to override it.
    pub fn with_clic(mut self, clic: ClicConfig) -> Self {
        self.cache = self.cache.with_clic(clic);
        self
    }

    /// Sets the cross-shard priority-merge period in global requests.
    pub fn with_merge_every(mut self, merge_every: u64) -> Self {
        self.cache = self.cache.with_merge_every(merge_every);
        self
    }

    /// Sets how shards are weighted during cross-shard priority merges.
    pub fn with_merge_weighting(mut self, weighting: MergeWeighting) -> Self {
        self.cache = self.cache.with_merge_weighting(weighting);
        self
    }

    /// Sets the per-worker queue bound (clamped to at least 1).
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth.max(1);
        self
    }

    /// Attaches a disk-backed page store: the server then moves real bytes —
    /// `Put` payloads are staged write-back through the WAL, `Get` responses
    /// carry the page's bytes, and evictions flush dirty frames. See
    /// [`ShardedClicConfig::with_store`].
    pub fn with_store(mut self, store: StoreConfig) -> Self {
        self.cache = self.cache.with_store(store);
        self
    }

    /// Sets the WAL durability level for the attached store (see
    /// [`Durability`]); may be called before or after
    /// [`ServerConfig::with_store`]. Ignored on a server without a store.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Sets the bounded-shutdown timeout (see
    /// [`ServerConfig::shutdown_timeout`]).
    pub fn with_shutdown_timeout(mut self, timeout: Duration) -> Self {
        self.shutdown_timeout = timeout;
        self
    }

    /// Sets the observability handle: an enabled [`Recorder`] gives the
    /// server a queue-depth gauge ([`QUEUE_DEPTH_GAUGE`]), a per-batch
    /// service-time histogram ([`BATCH_SERVICE_HISTOGRAM`]),
    /// [`clic_obs::SpanKind::ShardBatch`]/[`clic_obs::SpanKind::PriorityMerge`]
    /// trace spans, and — on a store-backed server — the store-level spans
    /// too (the recorder is shared with every shard store). The default
    /// disabled recorder records nothing.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.cache = self.cache.with_recorder(recorder);
        self
    }
}

/// The successful outcome of one shard operation.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The boolean outcome: cache hit for `Get`/`Put`, existence for
    /// `Delete`.
    pub hit: bool,
    /// The page bytes of a store-backed `Get` (`None` otherwise).
    pub data: Option<Vec<u8>>,
}

/// One reply from a shard worker: the submitter's tag for the operation
/// (its batch position in [`Server::submit`], a slab index in the
/// event-driven front-end), and either the successful [`ShardOutcome`] or
/// the [`ErrorCode`] to answer with — storage failures propagate here
/// instead of panicking the worker.
pub type ShardReply = (usize, Result<ShardOutcome, ErrorCode>);

/// One operation inside a [`ShardJob`], in submission order.
enum ShardOp {
    /// A cache access (`Get`/`Put`), batched through the policy fast path.
    Data {
        request: Request,
        /// The `Put` payload (`None` for `Get`s, and ignored entirely on a
        /// server without a store).
        payload: Option<Vec<u8>>,
    },
    /// A page invalidation, applied between the surrounding access batches
    /// so intra-shard submission order is preserved.
    Delete { page: cache_sim::PageId },
}

/// A per-shard unit of work: the operations routed to one shard (with the
/// submitter's tags, index-aligned), plus the channel the worker answers
/// on. Tags and operations are kept in separate vectors so the worker can
/// hand contiguous access runs to the cache's batched access path.
struct ShardJob {
    tags: Vec<usize>,
    ops: Vec<ShardOp>,
    reply: mpsc::Sender<ShardReply>,
}

/// The batch routing accumulator of [`Server::submit`]: per shard, the
/// submitter tags and the decoded operations.
type RoutedBatch = Vec<(Vec<usize>, Vec<ShardOp>)>;

/// A running storage-server cache service.
///
/// `Server` is `Sync`: any number of client threads may call
/// [`Server::submit`] concurrently through a shared reference. Dropping the
/// server (or calling [`Server::shutdown`]) stops the workers after they
/// drain their queues.
#[derive(Debug)]
pub struct Server {
    cache: Arc<ShardedClic>,
    senders: Vec<mpsc::SyncSender<ShardJob>>,
    workers: Vec<JoinHandle<()>>,
    batches_served: AtomicU64,
    shutdown_timeout: Duration,
    /// Cached [`QUEUE_DEPTH_GAUGE`] handle; `None` on a disabled recorder.
    /// Incremented per sub-batch sent, decremented by the worker after
    /// serving it, so the value counts queued + in-flight sub-batches.
    queue_depth: Option<Gauge>,
}

impl Server {
    /// Starts the shard workers and returns the running server.
    ///
    /// # Panics
    ///
    /// Panics if a shard store fails to open or a worker thread cannot be
    /// spawned; use [`Server::try_start`] to handle those as errors.
    pub fn start(config: ServerConfig) -> Server {
        // invariant: documented panicking convenience over `try_start`.
        #[allow(clippy::expect_used)]
        Server::try_start(config).expect("failed to start the server")
    }

    /// [`Server::start`], surfacing store-open and thread-spawn failures
    /// as errors instead of panicking.
    pub fn try_start(config: ServerConfig) -> std::io::Result<Server> {
        let mut cache_config = config.cache;
        if let (Some(durability), Some(store)) = (config.durability, cache_config.store.as_mut()) {
            store.durability = durability;
        }
        let cache = Arc::new(ShardedClic::try_new(cache_config)?);
        let recorder = cache.recorder().clone();
        let queue_depth = recorder.gauge(QUEUE_DEPTH_GAUGE);
        let service_hist = recorder.histogram(BATCH_SERVICE_HISTOGRAM);
        let mut senders = Vec::with_capacity(cache.shard_count());
        let mut workers = Vec::with_capacity(cache.shard_count());
        for shard in 0..cache.shard_count() {
            let (sender, receiver) = mpsc::sync_channel::<ShardJob>(config.queue_depth.max(1));
            let cache = Arc::clone(&cache);
            let recorder = recorder.clone();
            let queue_depth = queue_depth.clone();
            let service_hist = service_hist.clone();
            let worker = std::thread::Builder::new()
                .name(format!("clic-shard-{shard}"))
                .spawn(move || {
                    let mut outcomes = Vec::new();
                    let mut data = Vec::new();
                    let mut run_reqs: Vec<Request> = Vec::new();
                    let mut run_payloads: Vec<Option<Vec<u8>>> = Vec::new();
                    for mut job in receiver {
                        if let Some(gauge) = &queue_depth {
                            gauge.dec();
                        }
                        // One ShardBatch span (detail: operations served) and
                        // one service-time sample per dequeued sub-batch.
                        let mut span = recorder.span(SpanKind::ShardBatch);
                        span.set_detail(job.ops.len() as u64);
                        // Operations are applied in submission order: deletes
                        // split the job into contiguous access runs, and each
                        // run goes through one lock + one batched policy call
                        // per replay chunk instead of one of each per
                        // request. Runs are split at the workspace-wide
                        // REPLAY_CHUNK so an oversized client batch cannot
                        // monopolize the shard lock, and so the worker
                        // replays at the same granularity as the offline
                        // simulate() driver.
                        let mut i = 0;
                        while i < job.ops.len() {
                            if let ShardOp::Delete { page } = job.ops[i] {
                                // A storage failure answers the request
                                // with a typed error instead of panicking
                                // the worker; a client that gave up on its
                                // batch only loses the reply — the cache
                                // still observes every dispatched
                                // operation.
                                let reply = match cache.delete(page) {
                                    Ok(existed) => Ok(ShardOutcome {
                                        hit: existed,
                                        data: None,
                                    }),
                                    Err(err) => Err(ErrorCode::from_io_error(&err)),
                                };
                                let _ = job.reply.send((job.tags[i], reply));
                                i += 1;
                                continue;
                            }
                            let start = i;
                            run_reqs.clear();
                            run_payloads.clear();
                            while let Some(ShardOp::Data { request, payload }) = job.ops.get_mut(i)
                            {
                                run_reqs.push(*request);
                                run_payloads.push(payload.take());
                                i += 1;
                            }
                            if cache.has_store() {
                                // Chunk by chunk: a failed chunk answers
                                // its requests with the error and the run
                                // continues — one bad page does not poison
                                // the rest of the batch.
                                let mut at = start;
                                for (chunk, payloads) in run_reqs
                                    .chunks(REPLAY_CHUNK)
                                    .zip(run_payloads.chunks(REPLAY_CHUNK))
                                {
                                    outcomes.clear();
                                    data.clear();
                                    let tags = &job.tags[at..at + chunk.len()];
                                    at += chunk.len();
                                    match cache.access_shard_batch_data(
                                        shard,
                                        chunk,
                                        payloads,
                                        &mut outcomes,
                                        &mut data,
                                    ) {
                                        Ok(()) => {
                                            for ((&tag, outcome), bytes) in
                                                tags.iter().zip(&outcomes).zip(data.drain(..))
                                            {
                                                let _ = job.reply.send((
                                                    tag,
                                                    Ok(ShardOutcome {
                                                        hit: outcome.hit,
                                                        data: bytes,
                                                    }),
                                                ));
                                            }
                                        }
                                        Err(err) => {
                                            let code = ErrorCode::from_io_error(&err);
                                            for &tag in tags {
                                                let _ = job.reply.send((tag, Err(code)));
                                            }
                                        }
                                    }
                                }
                            } else {
                                outcomes.clear();
                                for chunk in run_reqs.chunks(REPLAY_CHUNK) {
                                    cache.access_shard_batch(shard, chunk, &mut outcomes);
                                }
                                for (&tag, outcome) in job.tags[start..i].iter().zip(&outcomes) {
                                    let _ = job.reply.send((
                                        tag,
                                        Ok(ShardOutcome {
                                            hit: outcome.hit,
                                            data: None,
                                        }),
                                    ));
                                }
                            }
                        }
                        if let (Some(hist), Some(start_ns), Some(clock)) =
                            (service_hist.as_deref(), span.start_ns(), recorder.clock())
                        {
                            hist.record(clock.now_nanos().saturating_sub(start_ns) / 1_000);
                        }
                    }
                })?;
            senders.push(sender);
            workers.push(worker);
        }
        Ok(Server {
            cache,
            senders,
            workers,
            batches_served: AtomicU64::new(0),
            shutdown_timeout: config.shutdown_timeout,
            queue_depth,
        })
    }

    /// Decodes a protocol operation into the worker representation, or
    /// `None` for [`ServerRequest::Stats`] (answered by the front-end).
    fn shard_op(operation: ServerRequest) -> Option<ShardOp> {
        let request = operation.to_request();
        // invariant: `to_request` is `Some` for every Get/Put by
        // construction — only Delete and Stats map to `None`.
        #[allow(clippy::expect_used)]
        match operation {
            ServerRequest::Stats => None,
            ServerRequest::Delete { page } => Some(ShardOp::Delete { page }),
            ServerRequest::Put { data, .. } => Some(ShardOp::Data {
                request: request.expect("a Put is a cache access"),
                payload: data,
            }),
            ServerRequest::Get { .. } => Some(ShardOp::Data {
                request: request.expect("a Get is a cache access"),
                payload: None,
            }),
        }
    }

    /// Submits one batch and blocks until every response is available.
    /// Responses are returned in batch order.
    ///
    /// `Get`/`Put`/`Delete` operations are routed to their page's shard
    /// worker; operations for the same shard are served in batch order,
    /// operations for different shards concurrently. A
    /// [`ServerRequest::Stats`] operation is answered by the front-end with
    /// a snapshot taken *before* the batch's own data requests are
    /// dispatched.
    pub fn submit(&self, batch: &[ServerRequest]) -> Vec<ServerResponse> {
        let shard_count = self.cache.shard_count();
        let (reply_sender, reply_receiver) = mpsc::channel();
        let mut per_shard: RoutedBatch =
            (0..shard_count).map(|_| (Vec::new(), Vec::new())).collect();
        let mut responses: Vec<Option<ServerResponse>> = batch.iter().map(|_| None).collect();
        let mut outstanding = 0usize;
        for (position, operation) in batch.iter().enumerate() {
            match Self::shard_op(operation.clone()) {
                Some(op) => {
                    // invariant: `shard_op` returned `Some`, so this is a
                    // Get/Put/Delete, and all three carry a page.
                    #[allow(clippy::expect_used)]
                    let page = operation.page().expect("every shard op has a page");
                    let (tags, ops) = &mut per_shard[self.cache.shard_of(page)];
                    tags.push(position);
                    ops.push(op);
                    outstanding += 1;
                }
                None => {
                    responses[position] = Some(ServerResponse::Stats(Box::new(StatsSnapshot {
                        result: self.stats(),
                        metrics: self.metrics(),
                    })));
                }
            }
        }
        for (shard, (tags, ops)) in per_shard.into_iter().enumerate() {
            if ops.is_empty() {
                continue;
            }
            if let Some(gauge) = &self.queue_depth {
                gauge.inc();
            }
            // invariant: workers only exit after the senders are dropped
            // at shutdown, which cannot race a live `submit` borrow.
            #[allow(clippy::expect_used)]
            self.senders[shard]
                .send(ShardJob {
                    tags,
                    ops,
                    reply: reply_sender.clone(),
                })
                .expect("shard worker exited while the server was running");
        }
        drop(reply_sender);
        for _ in 0..outstanding {
            // invariant: the workers answer every submitted tag exactly
            // once (success or typed error) before dropping the sender.
            #[allow(clippy::expect_used)]
            let (position, outcome) = reply_receiver
                .recv()
                .expect("shard worker dropped a batch reply");
            responses[position] = Some(match outcome {
                Err(code) => ServerResponse::Error { code },
                Ok(ShardOutcome { hit, data }) => match &batch[position] {
                    ServerRequest::Get { .. } => ServerResponse::Get { hit, data },
                    ServerRequest::Put { .. } => ServerResponse::Put { hit },
                    ServerRequest::Delete { .. } => ServerResponse::Delete { existed: hit },
                    ServerRequest::Stats => unreachable!("stats operations are answered inline"),
                },
            });
        }
        self.batches_served.fetch_add(1, Ordering::Relaxed);
        responses
            .into_iter()
            .map(|response| {
                // invariant: every batch slot was filled inline (Stats) or
                // by the reply loop above.
                #[allow(clippy::expect_used)]
                response.expect("every batch slot is answered")
            })
            .collect()
    }

    /// Submits operations to one shard's worker *without* waiting for the
    /// replies: each `(tag, operation)` pair is answered on `reply` as a
    /// [`ShardReply`] `(tag, outcome, data)`, where `outcome` is the cache
    /// hit flag for `Get`/`Put` and the existence flag for `Delete`.
    /// Returns how many replies to expect (operations submitted).
    ///
    /// This is the submission seam of the event-driven network front-end:
    /// the event loop coalesces decoded requests per shard, submits them
    /// here tagged with slab indices, and matches completions back to
    /// connections as they drain — no thread blocks per request. The call
    /// itself blocks only while the shard's bounded queue is full, which is
    /// the worker back-pressure propagating to the submitter.
    ///
    /// Every operation must route to `shard` (debug-asserted) and must not
    /// be [`ServerRequest::Stats`] — stats carry no page, so the caller
    /// answers them inline with [`Server::stats`]/[`Server::metrics`].
    pub fn submit_shard_tagged(
        &self,
        shard: usize,
        ops: Vec<(usize, ServerRequest)>,
        reply: &mpsc::Sender<ShardReply>,
    ) -> usize {
        let Some(job) = self.shard_job(shard, ops, reply) else {
            return 0;
        };
        let submitted = job.ops.len();
        if let Some(gauge) = &self.queue_depth {
            gauge.inc();
        }
        // invariant: workers only exit after the senders are dropped at
        // shutdown, which cannot race a live borrow of the server.
        #[allow(clippy::expect_used)]
        self.senders[shard]
            .send(job)
            .expect("shard worker exited while the server was running");
        submitted
    }

    /// Non-blocking [`Server::submit_shard_tagged`]: when the shard's
    /// bounded queue has room the job is enqueued and `Ok(submitted)` is
    /// returned; when it is full (or the workers are gone at shutdown)
    /// nothing is enqueued and `Err((tags, code))` hands back the
    /// submitted tags with the [`ErrorCode`] to answer them with
    /// ([`ErrorCode::Busy`] on a full queue, [`ErrorCode::Shutdown`] after
    /// the workers exited). This is how the event loop sheds load instead
    /// of stalling on a saturated shard.
    pub fn try_submit_shard_tagged(
        &self,
        shard: usize,
        ops: Vec<(usize, ServerRequest)>,
        reply: &mpsc::Sender<ShardReply>,
    ) -> Result<usize, (Vec<usize>, ErrorCode)> {
        let Some(job) = self.shard_job(shard, ops, reply) else {
            return Ok(0);
        };
        let submitted = job.ops.len();
        if let Some(gauge) = &self.queue_depth {
            gauge.inc();
        }
        match self.senders[shard].try_send(job) {
            Ok(()) => Ok(submitted),
            Err(err) => {
                if let Some(gauge) = &self.queue_depth {
                    gauge.dec();
                }
                match err {
                    mpsc::TrySendError::Full(job) => Err((job.tags, ErrorCode::Busy)),
                    mpsc::TrySendError::Disconnected(job) => Err((job.tags, ErrorCode::Shutdown)),
                }
            }
        }
    }

    /// Builds the [`ShardJob`] for a tagged submission; `None` when `ops`
    /// is empty.
    fn shard_job(
        &self,
        shard: usize,
        ops: Vec<(usize, ServerRequest)>,
        reply: &mpsc::Sender<ShardReply>,
    ) -> Option<ShardJob> {
        let mut tags = Vec::with_capacity(ops.len());
        let mut shard_ops = Vec::with_capacity(ops.len());
        for (tag, operation) in ops {
            debug_assert_eq!(
                operation.page().map(|page| self.cache.shard_of(page)),
                Some(shard),
                "operation routed to the wrong shard"
            );
            // invariant: the front-end answers Stats inline; only paged
            // operations reach a shard submission.
            #[allow(clippy::expect_used)]
            let op =
                Self::shard_op(operation).expect("stats operations cannot be submitted to a shard");
            tags.push(tag);
            shard_ops.push(op);
        }
        if shard_ops.is_empty() {
            return None;
        }
        Some(ShardJob {
            tags,
            ops: shard_ops,
            reply: reply.clone(),
        })
    }

    /// The sharded cache behind the server.
    pub fn cache(&self) -> &ShardedClic {
        &self.cache
    }

    /// Number of batches served so far.
    pub fn batches_served(&self) -> u64 {
        self.batches_served.load(Ordering::Relaxed)
    }

    /// A point-in-time statistics snapshot (see [`ShardedClic::snapshot`]).
    pub fn stats(&self) -> SimulationResult {
        self.cache.snapshot()
    }

    /// The full metrics snapshot (see [`ShardedClic::metrics`]): server
    /// registry plus every shard store's `store.*` counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.cache.metrics()
    }

    /// Forces a cross-shard priority merge now (see
    /// [`ShardedClic::merge_priorities`]).
    pub fn merge_priorities(&self) {
        self.cache.merge_priorities();
    }

    fn stop_workers(&mut self) {
        self.senders.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// A snapshot of the data plane's byte-level I/O counters, if the server
    /// runs over a store (see [`ShardedClic::io_stats`]).
    pub fn io_stats(&self) -> Option<IoStats> {
        self.cache.io_stats()
    }

    /// Stops the workers (draining their queues), stops the background
    /// flusher within the configured
    /// [`ServerConfig::shutdown_timeout`], checkpoints every shard store —
    /// the clean-shutdown durability point — and returns the final
    /// statistics. Merely *dropping* the server stops the workers but skips
    /// the checkpoint, modelling a crash: acknowledged writes then recover
    /// from the per-shard WALs when the stores are next opened.
    ///
    /// Errors surface as [`StoreError`]: a wedged disk shows up as
    /// [`StoreError::ShutdownTimeout`] instead of hanging the caller
    /// forever.
    pub fn try_shutdown(mut self) -> Result<SimulationResult, StoreError> {
        self.stop_workers();
        // The workers are joined, so their Arcs are gone and the cache is
        // uniquely held — unless a caller keeps its own clone, in which
        // case the flusher is stopped by drop (unbounded) instead.
        let timeout = self.shutdown_timeout;
        if let Some(cache) = Arc::get_mut(&mut self.cache) {
            cache.stop_flusher_timeout(timeout)?;
        }
        self.cache.checkpoint_store()?;
        Ok(self.cache.snapshot())
    }

    /// [`Server::try_shutdown`], panicking on storage errors.
    ///
    /// # Panics
    ///
    /// Panics if the shutdown checkpoint fails; use
    /// [`Server::try_shutdown`] to handle that as an error.
    pub fn shutdown(self) -> SimulationResult {
        // invariant: documented panicking convenience over `try_shutdown`.
        #[allow(clippy::expect_used)]
        self.try_shutdown()
            .expect("failed to checkpoint the page store at shutdown")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{ClientId, HintSetId, PageId};
    use std::thread;

    fn get(page: u64) -> ServerRequest {
        ServerRequest::Get {
            client: ClientId(0),
            page: PageId(page),
            hint: HintSetId(0),
            prefetch: false,
        }
    }

    #[test]
    fn responses_arrive_in_batch_order() {
        let server = Server::start(ServerConfig::new(8).with_shards(2));
        // First touch: all misses.
        let first = server.submit(&[get(1), get(2), get(3), get(4)]);
        assert_eq!(first.len(), 4);
        assert!(first.iter().all(|r| r.hit() == Some(false)));
        // Second touch: all hits (capacity 8 holds all four pages).
        let second = server.submit(&[get(1), get(2), get(3), get(4)]);
        assert!(second.iter().all(|r| r.hit() == Some(true)));
        assert_eq!(server.batches_served(), 2);
        let result = server.shutdown();
        assert_eq!(result.stats.read_hits, 4);
        assert_eq!(result.stats.read_misses, 4);
    }

    #[test]
    fn stats_requests_are_answered_inline() {
        let server = Server::start(ServerConfig::new(4));
        server.submit(&[get(1)]);
        let responses = server.submit(&[ServerRequest::Stats, get(1)]);
        // The snapshot was taken before this batch's own Get was dispatched.
        let snapshot = responses[0].stats().expect("stats response");
        assert_eq!(snapshot.stats.requests(), 1);
        assert_eq!(responses[1].hit(), Some(true));
    }

    #[test]
    fn store_backed_server_round_trips_bytes_and_recovers_after_crash() {
        let dir =
            std::env::temp_dir().join(format!("clic-server-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store_config = crate::StoreConfig::new(&dir, 16).with_page_size(128);
        let payload = |seed: u8| vec![seed; 128];
        let put = |page: u64, seed: u8| ServerRequest::Put {
            client: ClientId(0),
            page: PageId(page),
            hint: HintSetId(0),
            write_hint: None,
            data: Some(payload(seed)),
        };
        {
            let server = Server::start(ServerConfig::new(8).with_store(store_config.clone()));
            let responses = server.submit(&[put(1, 0xaa), put(2, 0xbb), get(1), get(2)]);
            // Byte exactness: a Get returns exactly the bytes the Put stored.
            assert_eq!(responses[2].data(), Some(&payload(0xaa)[..]));
            assert_eq!(responses[3].data(), Some(&payload(0xbb)[..]));
            assert_eq!(responses[2].hit(), Some(true));
            // Crash: drop without shutdown — no checkpoint runs.
        }
        // The WAL restores every acknowledged write on reopen.
        let store = crate::PageStore::open(store_config.clone()).unwrap();
        assert_eq!(store.recovered_writes(), 2);
        let mut buf = Vec::new();
        store.read(PageId(1), &mut buf).unwrap();
        assert_eq!(buf, payload(0xaa));
        store.read(PageId(2), &mut buf).unwrap();
        assert_eq!(buf, payload(0xbb));
        drop(store);

        // Clean shutdown checkpoints: the next open recovers nothing.
        {
            let server = Server::start(ServerConfig::new(8).with_store(store_config.clone()));
            server.submit(&[put(3, 0xcc)]);
            assert!(server.io_stats().unwrap().wal_records > 0);
            server.shutdown();
        }
        let store = crate::PageStore::open(store_config).unwrap();
        assert_eq!(store.recovered_writes(), 0);
        store.read(PageId(3), &mut buf).unwrap();
        assert_eq!(buf, payload(0xcc));
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_clients_share_one_server_without_deadlock() {
        // Tiny queue depth to exercise back-pressure: four clients hammer
        // four shards with single-page batches.
        let server = Server::start(
            ServerConfig::new(64)
                .with_shards(4)
                .with_queue_depth(1)
                .with_merge_every(100),
        );
        let clients = 4u64;
        let batches = 200u64;
        thread::scope(|scope| {
            for c in 0..clients {
                let server = &server;
                scope.spawn(move || {
                    for i in 0..batches {
                        let batch: Vec<ServerRequest> =
                            (0..8).map(|p| get(c * 1_000 + (i + p) % 40)).collect();
                        let responses = server.submit(&batch);
                        assert_eq!(responses.len(), 8);
                    }
                });
            }
        });
        let result = server.shutdown();
        assert_eq!(result.stats.requests(), clients * batches * 8);
    }
}
