//! Closed-loop load harness: K concurrent client threads driving a
//! [`Server`], with throughput, latency-percentile, and per-client hit-ratio
//! reporting.
//!
//! Each client thread owns one trace (typically a [`trace_gen`] preset over a
//! disjoint page range, as in the paper's Figure 11 consolidation scenario)
//! and drives it in fixed-size batches: submit, wait for the responses,
//! submit the next batch. This is the *online* analogue of round-robin
//! interleaving the traces offline — the actual request order at the server
//! emerges from real thread scheduling instead of being scripted.

use std::time::{Duration, Instant};

use cache_sim::{
    CacheStats, ClientId, HintCatalog, IoStats, Request, SimulationResult, Trace, REPLAY_CHUNK,
};
use clic_obs::{HistogramSnapshot, LatencyHistogram};
use clic_store::page_payload;
use trace_gen::{PresetScale, TracePreset};

use crate::protocol::ServerRequest;
use crate::server::{Server, ServerConfig};

/// Configuration for one harness run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// The server under load.
    pub server: ServerConfig,
    /// Requests per submitted batch (clamped to at least 1).
    pub batch: usize,
}

impl LoadConfig {
    /// A harness over the given server configuration submitting batches of
    /// [`cache_sim::REPLAY_CHUNK`] requests — the workspace-wide replay
    /// granularity, so the load harness batches exactly like the offline
    /// drivers instead of picking its own magic number.
    pub fn new(server: ServerConfig) -> Self {
        LoadConfig {
            server,
            batch: REPLAY_CHUNK,
        }
    }

    /// Sets the batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }
}

/// Histogram name under which [`run_load`] publishes client-observed batch
/// latencies (microseconds per submitted batch) into the server's
/// [`clic_obs::Recorder`], when one is enabled.
pub const CLIENT_BATCH_HISTOGRAM: &str = "server.client_batch_us";

/// Batch-latency percentiles over one harness run, in microseconds.
///
/// Backed by a [`LatencyHistogram`], so the harness keeps O(1) memory per
/// client thread no matter how many batches a run submits. Percentiles are
/// integer nearest-rank (`rank = ceil(count * q)`, computed exactly — the
/// old floating-point `ceil` could land a rank off by one when `count * q`
/// rounded across an integer) resolved to the sample's bucket upper bound:
/// exact below 64 µs, within 1/32 (~3%) above, and `max_us` always exact.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Number of batches measured.
    pub batches: u64,
    /// Mean batch latency (exact: the histogram keeps an exact sum).
    pub mean_us: f64,
    /// Median (50th percentile) batch latency.
    pub p50_us: u64,
    /// 95th percentile batch latency.
    pub p95_us: u64,
    /// 99th percentile batch latency.
    pub p99_us: u64,
    /// 99.9th percentile batch latency.
    pub p999_us: u64,
    /// Worst observed batch latency.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes a set of batch latencies (nearest-rank percentiles, via a
    /// [`LatencyHistogram`]). An empty input yields the all-zero default;
    /// a single sample is every percentile.
    pub fn from_micros(samples: Vec<u64>) -> Self {
        let histogram = LatencyHistogram::new();
        for sample in samples {
            histogram.record(sample);
        }
        LatencySummary::from_histogram(&histogram.snapshot())
    }

    /// Summarizes a histogram snapshot (see [`HistogramSnapshot`] for the
    /// percentile rule).
    pub fn from_histogram(snapshot: &HistogramSnapshot) -> Self {
        if snapshot.is_empty() {
            return LatencySummary::default();
        }
        LatencySummary {
            batches: snapshot.count(),
            mean_us: snapshot.mean(),
            p50_us: snapshot.p50(),
            p95_us: snapshot.p95(),
            p99_us: snapshot.p99(),
            p999_us: snapshot.p999(),
            max_us: snapshot.max(),
        }
    }
}

/// What one client thread observed during a harness run.
#[derive(Debug, Clone)]
pub struct ClientLoad {
    /// Name of the trace the thread drove.
    pub trace: String,
    /// The client ids appearing in that trace (usually one).
    pub clients: Vec<ClientId>,
    /// Hit/miss statistics as seen from the client side of the protocol.
    pub stats: CacheStats,
    /// Number of batches the thread submitted.
    pub batches: u64,
}

impl ClientLoad {
    /// The client-observed read hit ratio.
    pub fn read_hit_ratio(&self) -> f64 {
        self.stats.read_hit_ratio()
    }
}

/// The result of one harness run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Server-side statistics in the same shape as a simulation result:
    /// aggregate plus per-client breakdowns.
    pub result: SimulationResult,
    /// What each client thread observed, in input-trace order.
    pub clients: Vec<ClientLoad>,
    /// Wall-clock duration of the load phase.
    pub elapsed: Duration,
    /// Batch latency percentiles across all client threads.
    pub latency: LatencySummary,
    /// Number of cross-shard priority merges the server performed.
    pub merges: u64,
    /// Byte-level I/O counters of the data plane, when the server ran over a
    /// disk-backed store (captured just before shutdown, so the shutdown
    /// checkpoint's flush burst is excluded).
    pub io: Option<IoStats>,
}

impl LoadReport {
    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.result.stats.requests()
    }

    /// Overall throughput in requests per second.
    pub fn throughput_rps(&self) -> f64 {
        let seconds = self.elapsed.as_secs_f64();
        if seconds <= 0.0 {
            0.0
        } else {
            self.requests() as f64 / seconds
        }
    }

    /// Server-side aggregate read hit ratio.
    pub fn read_hit_ratio(&self) -> f64 {
        self.result.read_hit_ratio()
    }
}

/// Rewrites independently built traces onto one shared catalog so their
/// client ids and hint sets are globally distinct (the same re-registration
/// [`trace_gen::interleave()`] performs, but keeping the traces separate so
/// each can be driven by its own client thread).
pub fn merge_client_traces(traces: &[Trace]) -> Vec<Trace> {
    let mut catalog = HintCatalog::new();
    let remapped: Vec<(String, Vec<Request>)> = traces
        .iter()
        .map(|trace| {
            let (client_map, set_map) = catalog.merge(&trace.catalog);
            let requests = trace
                .requests
                .iter()
                .map(|req| Request {
                    client: client_map[req.client.0 as usize],
                    hint: set_map[req.hint.index()],
                    ..*req
                })
                .collect();
            (trace.name.clone(), requests)
        })
        .collect();
    remapped
        .into_iter()
        .map(|(name, requests)| Trace {
            name,
            requests,
            catalog: catalog.clone(),
        })
        .collect()
}

/// Builds one client trace per preset over disjoint page ranges (offset by
/// 100 M pages each, like the Figure 11 setup), truncates every trace to the
/// shortest so no client is over-represented (the same rule
/// [`trace_gen::interleave()`] applies, so an offline reference over the
/// interleave of these traces serves exactly the same requests), and merges
/// them onto a shared catalog, ready to be driven concurrently by
/// [`run_load`].
pub fn preset_client_traces(presets: &[TracePreset], scale: PresetScale) -> Vec<Trace> {
    let mut traces: Vec<Trace> = presets
        .iter()
        .enumerate()
        .map(|(i, preset)| preset.build_with_offset(scale, i as u64 * 100_000_000, 42 + i as u64))
        .collect();
    let shortest = traces.iter().map(Trace::len).min().unwrap_or(0);
    for trace in &mut traces {
        trace.requests.truncate(shortest);
    }
    merge_client_traces(&traces)
}

/// Runs the closed-loop load: starts a server, spawns one client thread per
/// input trace, drives every trace to completion, shuts the server down, and
/// reports throughput, latency percentiles, and per-client hit ratios.
///
/// The input traces should share one catalog with distinct client ids — use
/// [`merge_client_traces`] or [`preset_client_traces`] to prepare them.
///
/// # Panics
///
/// Panics if `traces` is empty, a client thread panics, or the server's
/// data plane fails (the harness runs against a healthy store — a fault
/// schedule belongs in the chaos gate, which tolerates errors).
// invariant: the two `expect`s below restate the documented panics —
// without fault injection every data request gets a data response, and a
// client-thread panic is a harness bug worth propagating.
#[cfg_attr(not(test), allow(clippy::expect_used))]
pub fn run_load(config: &LoadConfig, traces: &[Trace]) -> LoadReport {
    assert!(!traces.is_empty(), "at least one client trace is required");
    let server = Server::start(config.server.clone());
    let batch_size = config.batch.max(1);
    // On a store-backed server the clients move real bytes: every Put
    // carries the page's deterministic payload, so reads can be verified
    // end-to-end (the data plane checks residency; content checks live in
    // the integration tests).
    let with_payloads = server.cache().has_store();
    let page_size = server
        .cache()
        .shard_store(0)
        .map(|s| s.page_size())
        .unwrap_or_default();
    let started = Instant::now();
    let per_thread: Vec<(ClientLoad, HistogramSnapshot)> = std::thread::scope(|scope| {
        let handles: Vec<_> = traces
            .iter()
            .map(|trace| {
                let server = &server;
                scope.spawn(move || {
                    let mut stats = CacheStats::new();
                    let mut clients: Vec<ClientId> = Vec::new();
                    // Bounded-memory latency recording: one fixed-size
                    // histogram per client thread instead of one sample
                    // per submitted batch.
                    let latencies = LatencyHistogram::new();
                    let mut batches = 0u64;
                    for chunk in trace.requests.chunks(batch_size) {
                        let batch: Vec<ServerRequest> = chunk
                            .iter()
                            .map(|req| {
                                let op = ServerRequest::from_request(req);
                                if with_payloads && req.is_write() {
                                    op.with_payload(page_payload(req.page, page_size))
                                } else {
                                    op
                                }
                            })
                            .collect();
                        let submitted = Instant::now();
                        let responses = server.submit(&batch);
                        latencies.record(submitted.elapsed().as_micros() as u64);
                        batches += 1;
                        for (req, response) in chunk.iter().zip(&responses) {
                            let hit = response.hit().expect("data request gets a data response");
                            if req.is_read() {
                                stats.record_read(hit);
                            } else {
                                stats.record_write(hit);
                            }
                            if !clients.contains(&req.client) {
                                clients.push(req.client);
                            }
                        }
                    }
                    (
                        ClientLoad {
                            trace: trace.name.clone(),
                            clients,
                            stats,
                            batches,
                        },
                        latencies.snapshot(),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("client thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    let merges = server.cache().merges_completed();
    let io = server.io_stats();
    let mut clients = Vec::with_capacity(per_thread.len());
    let mut all_latencies = HistogramSnapshot::default();
    for (client, latencies) in per_thread {
        clients.push(client);
        all_latencies.merge(&latencies);
    }
    // Publish the client-observed view into the server's registry (when a
    // recorder is enabled) so a Stats snapshot carries it alongside the
    // worker-side service times.
    if let Some(histogram) = server.cache().recorder().histogram(CLIENT_BATCH_HISTOGRAM) {
        histogram.merge_snapshot(&all_latencies);
    }
    let result = server.shutdown();
    LoadReport {
        result,
        clients,
        elapsed,
        latency: LatencySummary::from_histogram(&all_latencies),
        merges,
        io,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessKind, TraceBuilder};
    use clic_core::ClicConfig;

    fn client_trace(name: &str, page_base: u64, requests: u64) -> Trace {
        let mut b = TraceBuilder::new().with_name(name);
        let c = b.add_client(name, &[("kind", 2)]);
        let hot = b.intern_hints(c, &[0]);
        let cold = b.intern_hints(c, &[1]);
        for i in 0..requests {
            b.push(c, page_base + (i % 50), AccessKind::Write, None, hot);
            b.push(c, page_base + (i % 50), AccessKind::Read, None, hot);
            b.push(c, page_base + 1_000_000 + i, AccessKind::Read, None, cold);
        }
        b.build()
    }

    #[test]
    fn merged_traces_have_distinct_clients_and_hints() {
        let a = client_trace("a", 0, 10);
        let b = client_trace("b", 10_000_000, 10);
        let merged = merge_client_traces(&[&a, &b].map(Clone::clone));
        assert_eq!(merged.len(), 2);
        assert_ne!(merged[0].requests[0].client, merged[1].requests[0].client);
        assert_ne!(merged[0].requests[0].hint, merged[1].requests[0].hint);
        assert_eq!(merged[0].catalog.client_count(), 2);
        // Structure is otherwise untouched.
        assert_eq!(merged[0].len(), a.len());
        assert_eq!(merged[0].requests[3].page, a.requests[3].page);
    }

    #[test]
    fn run_load_accounts_every_request_and_every_client() {
        let traces = merge_client_traces(&[
            client_trace("a", 0, 800),
            client_trace("b", 10_000_000, 800),
        ]);
        let config = LoadConfig::new(
            ServerConfig::new(128)
                .with_shards(2)
                .with_clic(ClicConfig::default().with_window(1_000))
                .with_merge_every(1_000),
        )
        .with_batch(32);
        let report = run_load(&config, &traces);
        let total: u64 = traces.iter().map(|t| t.len() as u64).sum();
        assert_eq!(report.requests(), total);
        assert!(report.throughput_rps() > 0.0);
        assert_eq!(report.clients.len(), 2);
        assert_eq!(report.latency.batches, 2 * 800 * 3 / 32);
        assert!(report.latency.p50_us <= report.latency.p95_us);
        assert!(report.latency.p95_us <= report.latency.p99_us);
        assert!(report.latency.p99_us <= report.latency.p999_us);
        assert!(report.latency.p999_us <= report.latency.max_us);
        // Client-observed statistics agree with the server-side per-client
        // breakdown: both classify the same responses.
        for client_load in &report.clients {
            assert_eq!(client_load.clients.len(), 1);
            let server_side = report
                .result
                .per_client
                .get(&client_load.clients[0])
                .expect("server tracked this client");
            assert_eq!(server_side.read_hits, client_load.stats.read_hits);
            assert_eq!(server_side.writes(), client_load.stats.writes());
        }
    }

    #[test]
    fn latency_summary_handles_empty_and_singleton_inputs() {
        let empty = LatencySummary::from_micros(Vec::new());
        assert_eq!(empty.batches, 0);
        assert_eq!(empty.max_us, 0);
        assert_eq!(empty.p999_us, 0);
        let one = LatencySummary::from_micros(vec![7]);
        assert_eq!(one.batches, 1);
        assert_eq!(one.p50_us, 7);
        assert_eq!(one.p99_us, 7);
        assert_eq!(one.p999_us, 7);
        assert_eq!(one.max_us, 7);
        let spread = LatencySummary::from_micros((1..=100).collect());
        assert_eq!(spread.p50_us, 50);
        assert_eq!(spread.p95_us, 95);
        assert_eq!(spread.p99_us, 99);
        assert_eq!(spread.p999_us, 100);
        assert_eq!(spread.max_us, 100);
        assert!((spread.mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn latency_summary_resolves_exact_rank_landings() {
        // 10 samples: q·N lands exactly on an index for p50 (rank 5). The
        // integer nearest-rank rule must pick the 5th smallest, not drift
        // to rank 6 the way a floating-point ceil of 5.000…1 would.
        let summary = LatencySummary::from_micros((1..=10).collect());
        assert_eq!(summary.batches, 10);
        assert_eq!(summary.p50_us, 5);
        assert_eq!(summary.p95_us, 10);
        assert_eq!(summary.max_us, 10);
        // Percentiles stay monotone even when every sample is identical.
        let flat = LatencySummary::from_micros(vec![42; 1000]);
        assert_eq!(flat.p50_us, 42);
        assert_eq!(flat.p999_us, 42);
        assert_eq!(flat.max_us, 42);
        assert!((flat.mean_us - 42.0).abs() < 1e-9);
    }
}
