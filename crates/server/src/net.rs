//! The event-driven network front-end: CLIC on the wire.
//!
//! [`NetServer`] puts a running [`Server`] behind real sockets — TCP and,
//! on Unix, a Unix-domain listener — speaking the length-prefixed binary
//! protocol of [`crate::wire`]. One event-loop thread owns every
//! connection and multiplexes them over the readiness poller of
//! [`crate::sys`]; *no thread ever blocks on a socket*, and no thread is
//! spawned per connection:
//!
//! * Readable connections are drained into per-connection buffers and
//!   decoded frame by frame. Decoded operations are *coalesced per shard*
//!   — up to [`cache_sim::REPLAY_CHUNK`] operations per submission — and
//!   handed to the existing shard workers through
//!   [`Server::submit_shard_tagged`], so a flood of small client frames
//!   still reaches the policy through the batched access fast path.
//! * Completions stream back over a channel tagged with slab indices; the
//!   loop matches them to connections (a generation counter guards against
//!   slot reuse after disconnects), encodes responses — correlated by the
//!   client's `seq`, hence safely out of order across shards — and writes
//!   as far as the socket allows, buffering the rest behind `EPOLLOUT`
//!   interest.
//! * Each connection has a bounded *in-flight window*
//!   ([`NetOptions::in_flight_window`]). A connection at its window stops
//!   being read (its `EPOLLIN` interest is dropped) until completions
//!   drain: per-connection back-pressure that bounds server-side memory no
//!   matter how fast an open-loop client pushes.
//! * [`ServerRequest::Stats`] is answered inline by the loop itself, same
//!   as [`Server::submit`] does, without consuming a window slot.
//!
//! With an enabled [`clic_obs::Recorder`], every frame decode and encode
//! is recorded as a [`SpanKind::NetFrame`] trace span whose detail is the
//! frame's size in bytes.
//!
//! A malformed frame — oversized length prefix, unknown opcode, truncated
//! body — closes that connection immediately; framing is unrecoverable
//! once a stream desynchronizes, and a bad peer must not be able to make
//! the server buffer garbage.
//!
//! [`BlockingClient`] is the matching minimal client: a blocking,
//! pipelining codec wrapper used by the tests, the verification smoke
//! gate, and as the transport under the open-loop generator's reader.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};

use cache_sim::{SimulationResult, REPLAY_CHUNK};
use clic_obs::{Recorder, SpanKind};

use crate::protocol::{ServerRequest, ServerResponse, StatsSnapshot};
use crate::server::{Server, ShardReply};
use crate::sys::{raw_fd, Event, Poller, READABLE, WRITABLE};
use crate::wire;

/// Poller token of the TCP listener.
const TOKEN_TCP: u64 = 0;
/// Poller token of the Unix-domain listener.
const TOKEN_UDS: u64 = 1;
/// First poller token used for connections (token = base + slot index).
const TOKEN_BASE: u64 = 2;

/// Read chunk size for draining a readable socket.
const READ_CHUNK: usize = 64 * 1024;

/// How the front-end listens and how much it buffers per connection.
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// TCP listen address (e.g. `"127.0.0.1:0"` for an ephemeral port), or
    /// `None` for no TCP listener.
    pub tcp: Option<String>,
    /// Unix-domain socket path, or `None` for no UDS listener. Rejected at
    /// start on non-Unix platforms; the file is removed on shutdown.
    pub uds: Option<PathBuf>,
    /// Maximum decoded-but-unanswered operations per connection before the
    /// loop stops reading from it (back-pressure).
    pub in_flight_window: usize,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            tcp: Some("127.0.0.1:0".to_string()),
            uds: None,
            in_flight_window: 64,
        }
    }
}

/// A [`Server`] exposed over real sockets by a background event-loop
/// thread. Dropping it stops the loop and shuts the server down; call
/// [`NetServer::shutdown`] to also collect the final statistics.
#[derive(Debug)]
pub struct NetServer {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<io::Result<Server>>>,
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
}

impl NetServer {
    /// Binds the listeners and spawns the event loop around `server`.
    pub fn start(server: Server, options: NetOptions) -> io::Result<NetServer> {
        let tcp = match &options.tcp {
            Some(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                listener.set_nonblocking(true)?;
                Some(listener)
            }
            None => None,
        };
        let tcp_addr = tcp.as_ref().map(|l| l.local_addr()).transpose()?;
        #[cfg(unix)]
        let uds = match &options.uds {
            Some(path) => {
                // A previous unclean shutdown may have left the socket
                // file behind; binding over it needs the unlink.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Some(listener)
            }
            None => None,
        };
        #[cfg(not(unix))]
        if options.uds.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain listeners require a Unix platform",
            ));
        }
        let uds_path = options.uds.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let event_loop = EventLoop::new(
            server,
            tcp,
            #[cfg(unix)]
            uds,
            options.in_flight_window.max(1),
            Arc::clone(&stop),
        )?;
        let thread = thread::Builder::new()
            .name("clic-net".to_string())
            .spawn(move || event_loop.run())
            .expect("spawning the network event loop failed");
        Ok(NetServer {
            stop,
            thread: Some(thread),
            tcp_addr,
            uds_path,
        })
    }

    /// The bound TCP address (`None` if TCP was disabled).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix-domain socket path (`None` if UDS was disabled).
    pub fn uds_path(&self) -> Option<&PathBuf> {
        self.uds_path.as_ref()
    }

    fn stop_loop(&mut self) -> Option<io::Result<Server>> {
        self.stop.store(true, Ordering::SeqCst);
        let result = self
            .thread
            .take()
            .map(|t| t.join().expect("the network event loop panicked"));
        if let Some(path) = &self.uds_path {
            let _ = std::fs::remove_file(path);
        }
        result
    }

    /// Stops accepting, closes every connection, shuts the inner server
    /// down, and returns its final statistics.
    pub fn shutdown(mut self) -> io::Result<SimulationResult> {
        match self.stop_loop() {
            Some(Ok(server)) => Ok(server.shutdown()),
            Some(Err(err)) => Err(err),
            None => Err(io::Error::other("event loop already stopped")),
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            let _ = self.stop_loop();
        }
    }
}

/// A connected byte stream, TCP or Unix-domain.
#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn fd(&self) -> i32 {
        match self {
            Stream::Tcp(s) => raw_fd(s),
            #[cfg(unix)]
            Stream::Unix(s) => raw_fd(s),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Per-connection state owned by the event loop.
#[derive(Debug)]
struct Conn {
    stream: Stream,
    /// Guards completions against slot reuse: a completion whose pending
    /// entry carries an older generation belongs to a previous connection
    /// in this slot and is dropped.
    gen: u32,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Bytes of `write_buf` already written to the socket.
    write_at: usize,
    /// Decoded-but-unanswered operations.
    in_flight: usize,
    /// The peer half-closed (or errored); no more reads, flush and close.
    read_closed: bool,
    /// The interest mask currently armed in the poller.
    interest: u32,
    /// Set when the connection must be torn down (I/O or protocol error).
    dead: bool,
}

impl Conn {
    fn pending_write(&self) -> bool {
        self.write_at < self.write_buf.len()
    }
}

/// One submitted-to-a-shard operation awaiting completion.
struct Pending {
    conn: usize,
    gen: u32,
    seq: u64,
    kind: PendingKind,
}

/// Which response variant a completion maps to.
enum PendingKind {
    Get,
    Put,
    Delete,
}

struct EventLoop {
    server: Server,
    recorder: Recorder,
    poller: Poller,
    tcp: Option<TcpListener>,
    #[cfg(unix)]
    uds: Option<UnixListener>,
    conns: Vec<Option<Conn>>,
    free_conns: Vec<usize>,
    /// Per slot, the generation the *next* tenant carries (bumped by
    /// [`EventLoop::close_conn`] so stale completions are recognizable).
    slot_next_gen: Vec<u32>,
    slab: Vec<Option<Pending>>,
    free_slab: Vec<usize>,
    reply_tx: mpsc::Sender<ShardReply>,
    reply_rx: mpsc::Receiver<ShardReply>,
    /// Per-shard coalescing buffers, flushed at [`REPLAY_CHUNK`] or at the
    /// end of each cycle.
    pending_shard: Vec<Vec<(usize, ServerRequest)>>,
    window: usize,
    in_flight_total: usize,
    stop: Arc<AtomicBool>,
}

impl EventLoop {
    fn new(
        server: Server,
        tcp: Option<TcpListener>,
        #[cfg(unix)] uds: Option<UnixListener>,
        window: usize,
        stop: Arc<AtomicBool>,
    ) -> io::Result<EventLoop> {
        let (reply_tx, reply_rx) = mpsc::channel();
        let shard_count = server.cache().shard_count();
        let recorder = server.cache().recorder().clone();
        Ok(EventLoop {
            server,
            recorder,
            poller: Poller::new()?,
            tcp,
            #[cfg(unix)]
            uds,
            conns: Vec::new(),
            free_conns: Vec::new(),
            slot_next_gen: Vec::new(),
            slab: Vec::new(),
            free_slab: Vec::new(),
            reply_tx,
            reply_rx,
            pending_shard: (0..shard_count).map(|_| Vec::new()).collect(),
            window,
            in_flight_total: 0,
            stop,
        })
    }

    fn run(mut self) -> io::Result<Server> {
        if let Some(listener) = &self.tcp {
            self.poller
                .register(raw_fd(listener), TOKEN_TCP, READABLE)?;
        }
        #[cfg(unix)]
        if let Some(listener) = &self.uds {
            self.poller
                .register(raw_fd(listener), TOKEN_UDS, READABLE)?;
        }
        let mut events: Vec<Event> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            // Completions arrive on an mpsc channel, which cannot wake the
            // poller — poll briefly while work is in flight, longer when
            // the loop is idle.
            let timeout = if self.in_flight_total > 0 {
                Duration::from_millis(1)
            } else {
                Duration::from_millis(25)
            };
            self.poller.wait(&mut events, timeout)?;
            for &event in &events {
                match event.token {
                    TOKEN_TCP => self.accept_tcp(),
                    #[cfg(unix)]
                    TOKEN_UDS => self.accept_uds(),
                    token => {
                        let Some(idx) = token.checked_sub(TOKEN_BASE).map(|t| t as usize) else {
                            continue;
                        };
                        if event.readable() {
                            self.fill_read_buf(idx);
                        }
                        if event.writable() {
                            self.flush_write_buf(idx);
                        }
                    }
                }
            }
            // Decode everything buffered on connections with window room;
            // a connection may have buffered frames left over from when
            // its window was full, so this cannot key off events alone.
            for idx in 0..self.conns.len() {
                self.decode_conn(idx);
            }
            self.submit_pending();
            self.drain_completions();
            self.settle_conns();
        }
        Ok(self.server)
    }

    fn accept_tcp(&mut self) {
        loop {
            let accepted = match &self.tcp {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.add_conn(Stream::Tcp(stream));
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    #[cfg(unix)]
    fn accept_uds(&mut self) {
        loop {
            let accepted = match &self.uds {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.add_conn(Stream::Unix(stream));
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn add_conn(&mut self, stream: Stream) {
        let fd = stream.fd();
        let idx = match self.free_conns.pop() {
            Some(idx) => {
                debug_assert!(self.conns[idx].is_none());
                idx
            }
            None => {
                self.conns.push(None);
                self.slot_next_gen.push(0);
                self.conns.len() - 1
            }
        };
        let gen = self.slot_next_gen[idx];
        let token = TOKEN_BASE + idx as u64;
        if self.poller.register(fd, token, READABLE).is_err() {
            self.free_conns.push(idx);
            return;
        }
        self.conns[idx] = Some(Conn {
            stream,
            gen,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_at: 0,
            in_flight: 0,
            read_closed: false,
            interest: READABLE,
            dead: false,
        });
    }

    /// Reads as much as the socket offers into the connection's buffer.
    fn fill_read_buf(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            return;
        };
        if conn.read_closed || conn.dead {
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    return;
                }
                Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
    }

    /// Decodes frames from the connection's read buffer while it has
    /// window room, routing data operations into the per-shard coalescing
    /// buffers and answering stats inline.
    fn decode_conn(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                return;
            };
            if conn.dead || conn.in_flight >= self.window || conn.read_buf.is_empty() {
                return;
            }
            let span = self.recorder.span(SpanKind::NetFrame);
            let (consumed, decoded) = match wire::take_frame(&conn.read_buf) {
                Ok(None) => {
                    span.cancel();
                    return;
                }
                Ok(Some((consumed, payload))) => (consumed, wire::decode_request(payload)),
                Err(_) => {
                    span.cancel();
                    conn.dead = true;
                    return;
                }
            };
            let (seq, op) = match decoded {
                Ok(frame) => frame,
                Err(_) => {
                    span.cancel();
                    conn.dead = true;
                    return;
                }
            };
            conn.read_buf.drain(..consumed);
            span.finish(consumed as u64);
            match op {
                ServerRequest::Stats => {
                    // Answered inline, mirroring `Server::submit`; stats
                    // take no window slot.
                    let snapshot = StatsSnapshot {
                        result: self.server.stats(),
                        metrics: self.server.metrics(),
                    };
                    self.respond(idx, seq, &ServerResponse::Stats(Box::new(snapshot)));
                }
                op => {
                    let kind = match &op {
                        ServerRequest::Get { .. } => PendingKind::Get,
                        ServerRequest::Put { .. } => PendingKind::Put,
                        ServerRequest::Delete { .. } => PendingKind::Delete,
                        ServerRequest::Stats => unreachable!("matched above"),
                    };
                    let page = op.page().expect("data operations carry a page");
                    let shard = self.server.cache().shard_of(page);
                    let conn = self.conns[idx].as_mut().expect("checked above");
                    conn.in_flight += 1;
                    let gen = conn.gen;
                    let tag = self.alloc_pending(Pending {
                        conn: idx,
                        gen,
                        seq,
                        kind,
                    });
                    self.pending_shard[shard].push((tag, op));
                    if self.pending_shard[shard].len() >= REPLAY_CHUNK {
                        self.flush_shard(shard);
                    }
                }
            }
        }
    }

    fn alloc_pending(&mut self, pending: Pending) -> usize {
        match self.free_slab.pop() {
            Some(tag) => {
                debug_assert!(self.slab[tag].is_none());
                self.slab[tag] = Some(pending);
                tag
            }
            None => {
                self.slab.push(Some(pending));
                self.slab.len() - 1
            }
        }
    }

    fn flush_shard(&mut self, shard: usize) {
        if self.pending_shard[shard].is_empty() {
            return;
        }
        let ops = std::mem::take(&mut self.pending_shard[shard]);
        // Blocks only while the shard's bounded queue is full: worker
        // back-pressure propagating to the event loop, by design.
        self.in_flight_total += self.server.submit_shard_tagged(shard, ops, &self.reply_tx);
    }

    fn submit_pending(&mut self) {
        for shard in 0..self.pending_shard.len() {
            self.flush_shard(shard);
        }
    }

    fn drain_completions(&mut self) {
        while let Ok((tag, outcome, data)) = self.reply_rx.try_recv() {
            self.in_flight_total = self.in_flight_total.saturating_sub(1);
            let pending = self
                .slab
                .get_mut(tag)
                .and_then(|slot| slot.take())
                .expect("completion for an unallocated slab slot");
            self.free_slab.push(tag);
            let alive = self
                .conns
                .get(pending.conn)
                .and_then(|c| c.as_ref())
                .is_some_and(|conn| conn.gen == pending.gen);
            if !alive {
                continue;
            }
            if let Some(conn) = self.conns[pending.conn].as_mut() {
                conn.in_flight -= 1;
            }
            let response = match pending.kind {
                PendingKind::Get => ServerResponse::Get { hit: outcome, data },
                PendingKind::Put => ServerResponse::Put { hit: outcome },
                PendingKind::Delete => ServerResponse::Delete { existed: outcome },
            };
            self.respond(pending.conn, pending.seq, &response);
        }
    }

    /// Encodes a response onto the connection's write buffer (recording
    /// the encode as a [`SpanKind::NetFrame`] span).
    fn respond(&mut self, idx: usize, seq: u64, response: &ServerResponse) {
        let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            return;
        };
        let span = self.recorder.span(SpanKind::NetFrame);
        let before = conn.write_buf.len();
        wire::encode_response(seq, response, &mut conn.write_buf);
        span.finish((conn.write_buf.len() - before) as u64);
    }

    /// Writes as much buffered output as the socket accepts.
    fn flush_write_buf(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            return;
        };
        while conn.write_at < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_at..]) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(n) => conn.write_at += n,
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        if conn.write_at == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_at = 0;
        } else if conn.write_at > READ_CHUNK {
            // Compact a long-lived partially written buffer so it cannot
            // grow without bound across cycles.
            conn.write_buf.drain(..conn.write_at);
            conn.write_at = 0;
        }
    }

    /// End-of-cycle per-connection pass: opportunistic writes, interest
    /// re-arming, and teardown of finished or errored connections.
    fn settle_conns(&mut self) {
        for idx in 0..self.conns.len() {
            if self
                .conns
                .get(idx)
                .and_then(|c| c.as_ref())
                .is_some_and(|conn| conn.pending_write() && !conn.dead)
            {
                self.flush_write_buf(idx);
            }
            let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                continue;
            };
            let finished = conn.read_closed
                && conn.in_flight == 0
                && !conn.pending_write()
                && conn.read_buf.len() < 4; // a buffered partial frame dies with the peer
            if conn.dead || finished {
                self.close_conn(idx);
                continue;
            }
            let mut interest = 0u32;
            if !conn.read_closed && conn.in_flight < self.window {
                interest |= READABLE;
            }
            if conn.pending_write() {
                interest |= WRITABLE;
            }
            if interest != conn.interest {
                let fd = conn.stream.fd();
                let token = TOKEN_BASE + idx as u64;
                conn.interest = interest;
                let _ = self.poller.rearm(fd, token, interest);
            }
        }
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(|slot| slot.take()) else {
            return;
        };
        self.poller
            .deregister(conn.stream.fd(), TOKEN_BASE + idx as u64);
        // Outstanding completions for this connection are dropped on
        // arrival: the next tenant of the slot carries gen + 1.
        self.slot_next_gen[idx] = conn.gen.wrapping_add(1);
        self.free_conns.push(idx);
    }
}

/// A minimal blocking client for the wire protocol: encodes requests,
/// pipelines a whole batch onto the socket, and reassembles the responses
/// in batch order via the echoed `seq`.
///
/// This is deliberately the simplest correct counterpart of the server —
/// the loopback equivalence test drives a [`Server`] through it and
/// asserts bit-identical statistics with the in-process path, and the
/// verification smoke gate uses it for its final stats probe. The
/// open-loop generator in [`crate::openloop`] does *not* use it (pacing
/// needs decoupled writer/reader halves).
#[derive(Debug)]
pub struct BlockingClient {
    stream: Stream,
    buf: Vec<u8>,
}

impl BlockingClient {
    /// Connects over TCP (Nagle disabled — the protocol is latency-bound
    /// request/response).
    pub fn connect_tcp(addr: SocketAddr) -> io::Result<BlockingClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(BlockingClient {
            stream: Stream::Tcp(stream),
            buf: Vec::new(),
        })
    }

    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_uds(path: &std::path::Path) -> io::Result<BlockingClient> {
        Ok(BlockingClient {
            stream: Stream::Unix(UnixStream::connect(path)?),
            buf: Vec::new(),
        })
    }

    /// Submits one batch and blocks until every response arrived,
    /// returning them in batch order (the server may answer out of order
    /// across shards; `seq` correlation restores the order).
    pub fn call_batch(&mut self, batch: &[ServerRequest]) -> io::Result<Vec<ServerResponse>> {
        let mut frames = Vec::new();
        for (i, op) in batch.iter().enumerate() {
            wire::encode_request(i as u64, op, &mut frames);
        }
        self.stream.write_all(&frames)?;
        let mut responses: Vec<Option<ServerResponse>> = batch.iter().map(|_| None).collect();
        let mut received = 0usize;
        let mut chunk = [0u8; READ_CHUNK];
        while received < batch.len() {
            while let Some((consumed, payload)) = wire::take_frame(&self.buf)? {
                let (seq, response) = wire::decode_response(payload)?;
                self.buf.drain(..consumed);
                let slot = responses.get_mut(seq as usize).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "response seq out of range")
                })?;
                if slot.replace(response).is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "duplicate response seq",
                    ));
                }
                received += 1;
            }
            if received == batch.len() {
                break;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-batch",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        Ok(responses
            .into_iter()
            .map(|response| response.expect("all seqs received"))
            .collect())
    }

    /// Submits a single operation and blocks for its response.
    pub fn call(&mut self, op: &ServerRequest) -> io::Result<ServerResponse> {
        let mut responses = self.call_batch(std::slice::from_ref(op))?;
        Ok(responses.pop().expect("one response per operation"))
    }

    /// Fetches a statistics snapshot.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.call(&ServerRequest::Stats)? {
            ServerResponse::Stats(snapshot) => Ok(*snapshot),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a stats response, got {other:?}"),
            )),
        }
    }
}
