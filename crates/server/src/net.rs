//! The event-driven network front-end: CLIC on the wire.
//!
//! [`NetServer`] puts a running [`Server`] behind real sockets — TCP and,
//! on Unix, a Unix-domain listener — speaking the length-prefixed binary
//! protocol of [`crate::wire`]. One event-loop thread owns every
//! connection and multiplexes them over the readiness poller of
//! [`crate::sys`]; *no thread ever blocks on a socket*, and no thread is
//! spawned per connection:
//!
//! * Readable connections are drained into per-connection buffers and
//!   decoded frame by frame. Decoded operations are *coalesced per shard*
//!   — up to [`cache_sim::REPLAY_CHUNK`] operations per submission — and
//!   handed to the existing shard workers through
//!   [`Server::submit_shard_tagged`], so a flood of small client frames
//!   still reaches the policy through the batched access fast path.
//! * Completions stream back over a channel tagged with slab indices; the
//!   loop matches them to connections (a generation counter guards against
//!   slot reuse after disconnects), encodes responses — correlated by the
//!   client's `seq`, hence safely out of order across shards — and writes
//!   as far as the socket allows, buffering the rest behind `EPOLLOUT`
//!   interest.
//! * Each connection has a bounded *in-flight window*
//!   ([`NetOptions::in_flight_window`]). A connection at its window stops
//!   being read (its `EPOLLIN` interest is dropped) until completions
//!   drain: per-connection back-pressure that bounds server-side memory no
//!   matter how fast an open-loop client pushes.
//! * [`ServerRequest::Stats`] is answered inline by the loop itself, same
//!   as [`Server::submit`] does, without consuming a window slot.
//!
//! With an enabled [`clic_obs::Recorder`], every frame decode and encode
//! is recorded as a [`SpanKind::NetFrame`] trace span whose detail is the
//! frame's size in bytes.
//!
//! A malformed frame — oversized length prefix, unknown opcode, truncated
//! body — closes that connection immediately; framing is unrecoverable
//! once a stream desynchronizes, and a bad peer must not be able to make
//! the server buffer garbage.
//!
//! [`BlockingClient`] is the matching minimal client: a blocking,
//! pipelining codec wrapper used by the tests, the verification smoke
//! gate, and as the transport under the open-loop generator's reader. For
//! hostile networks it optionally layers connect/read/write timeouts,
//! reconnection, and a bounded, seeded-jitter retry loop
//! ([`RetryPolicy`], [`BlockingClient::call_with_retry`]) on top of the
//! bare codec.
//!
//! # Fault injection and load shedding
//!
//! [`NetOptions::fault`] arms a [`FaultInjector`] on the network surface:
//! accepted connections may be dropped on arrival (`NetAccept`), readable
//! connections may be reset before the read (`NetRecv`), and socket writes
//! may be cut short mid-buffer or fail outright (`NetSend`). The schedule
//! is seeded and deterministic, and a disabled injector costs one branch.
//!
//! [`NetOptions::shed_busy`] turns blocking back-pressure into explicit
//! load shedding: when a connection's in-flight window or a shard's
//! bounded queue is full, the loop answers the affected operations with
//! [`ServerResponse::Error`] (`Busy`) instead of stalling. Shed counts are
//! published to the `server.shed_busy` counter of an enabled recorder.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};

use cache_sim::{SimulationResult, REPLAY_CHUNK};
use clic_obs::{Counter, Recorder, SpanKind};
use clic_store::{FaultInjector, FaultPoint, InjectedFault};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::protocol::{ErrorCode, ServerRequest, ServerResponse, StatsSnapshot};
use crate::server::{Server, ShardOutcome, ShardReply};
use crate::sys::{raw_fd, Event, Poller, READABLE, WRITABLE};
use crate::wire;

/// Poller token of the TCP listener.
const TOKEN_TCP: u64 = 0;
/// Poller token of the Unix-domain listener.
const TOKEN_UDS: u64 = 1;
/// First poller token used for connections (token = base + slot index).
const TOKEN_BASE: u64 = 2;

/// Read chunk size for draining a readable socket.
const READ_CHUNK: usize = 64 * 1024;

/// How the front-end listens and how much it buffers per connection.
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// TCP listen address (e.g. `"127.0.0.1:0"` for an ephemeral port), or
    /// `None` for no TCP listener.
    pub tcp: Option<String>,
    /// Unix-domain socket path, or `None` for no UDS listener. Rejected at
    /// start on non-Unix platforms; the file is removed on shutdown.
    pub uds: Option<PathBuf>,
    /// Maximum decoded-but-unanswered operations per connection before the
    /// loop stops reading from it (back-pressure).
    pub in_flight_window: usize,
    /// When `true`, saturation answers with [`ServerResponse::Error`]
    /// (`Busy`) instead of blocking: a connection at its in-flight window
    /// still has its frames decoded (and shed), and a full shard queue
    /// sheds the whole coalesced sub-batch. When `false` (the default) the
    /// loop applies blocking back-pressure, which preserves exact
    /// completion counts for well-behaved closed-loop clients.
    pub shed_busy: bool,
    /// Deterministic fault schedule armed on the network surface
    /// (`NetAccept`/`NetRecv`/`NetSend` points). The default
    /// [`FaultInjector::disabled`] injects nothing and costs one branch
    /// per I/O operation.
    pub fault: FaultInjector,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            tcp: Some("127.0.0.1:0".to_string()),
            uds: None,
            in_flight_window: 64,
            shed_busy: false,
            fault: FaultInjector::disabled(),
        }
    }
}

/// A [`Server`] exposed over real sockets by a background event-loop
/// thread. Dropping it stops the loop and shuts the server down; call
/// [`NetServer::shutdown`] to also collect the final statistics.
#[derive(Debug)]
pub struct NetServer {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<io::Result<Server>>>,
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
}

impl NetServer {
    /// Binds the listeners and spawns the event loop around `server`.
    pub fn start(server: Server, options: NetOptions) -> io::Result<NetServer> {
        let tcp = match &options.tcp {
            Some(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                listener.set_nonblocking(true)?;
                Some(listener)
            }
            None => None,
        };
        let tcp_addr = tcp.as_ref().map(|l| l.local_addr()).transpose()?;
        #[cfg(unix)]
        let uds = match &options.uds {
            Some(path) => {
                // A previous unclean shutdown may have left the socket
                // file behind; binding over it needs the unlink.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Some(listener)
            }
            None => None,
        };
        #[cfg(not(unix))]
        if options.uds.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain listeners require a Unix platform",
            ));
        }
        let uds_path = options.uds.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let event_loop = EventLoop::new(
            server,
            tcp,
            #[cfg(unix)]
            uds,
            &options,
            Arc::clone(&stop),
        )?;
        let thread = thread::Builder::new()
            .name("clic-net".to_string())
            .spawn(move || event_loop.run())?;
        Ok(NetServer {
            stop,
            thread: Some(thread),
            tcp_addr,
            uds_path,
        })
    }

    /// The bound TCP address (`None` if TCP was disabled).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix-domain socket path (`None` if UDS was disabled).
    pub fn uds_path(&self) -> Option<&PathBuf> {
        self.uds_path.as_ref()
    }

    fn stop_loop(&mut self) -> Option<io::Result<Server>> {
        self.stop.store(true, Ordering::SeqCst);
        let result = self.thread.take().map(|t| match t.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("the network event loop panicked")),
        });
        if let Some(path) = &self.uds_path {
            let _ = std::fs::remove_file(path);
        }
        result
    }

    /// Stops accepting, closes every connection, shuts the inner server
    /// down, and returns its final statistics.
    pub fn shutdown(mut self) -> io::Result<SimulationResult> {
        match self.stop_loop() {
            Some(Ok(server)) => Ok(server.shutdown()),
            Some(Err(err)) => Err(err),
            None => Err(io::Error::other("event loop already stopped")),
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            let _ = self.stop_loop();
        }
    }
}

/// A connected byte stream, TCP or Unix-domain.
#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn fd(&self) -> i32 {
        match self {
            Stream::Tcp(s) => raw_fd(s),
            #[cfg(unix)]
            Stream::Unix(s) => raw_fd(s),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Per-connection state owned by the event loop.
#[derive(Debug)]
struct Conn {
    stream: Stream,
    /// Guards completions against slot reuse: a completion whose pending
    /// entry carries an older generation belongs to a previous connection
    /// in this slot and is dropped.
    gen: u32,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Bytes of `write_buf` already written to the socket.
    write_at: usize,
    /// Decoded-but-unanswered operations.
    in_flight: usize,
    /// The peer half-closed (or errored); no more reads, flush and close.
    read_closed: bool,
    /// The interest mask currently armed in the poller.
    interest: u32,
    /// Set when the connection must be torn down (I/O or protocol error).
    dead: bool,
}

impl Conn {
    fn pending_write(&self) -> bool {
        self.write_at < self.write_buf.len()
    }
}

/// One submitted-to-a-shard operation awaiting completion.
struct Pending {
    conn: usize,
    gen: u32,
    seq: u64,
    kind: PendingKind,
}

/// Which response variant a completion maps to.
enum PendingKind {
    Get,
    Put,
    Delete,
}

struct EventLoop {
    server: Server,
    recorder: Recorder,
    poller: Poller,
    tcp: Option<TcpListener>,
    #[cfg(unix)]
    uds: Option<UnixListener>,
    conns: Vec<Option<Conn>>,
    free_conns: Vec<usize>,
    /// Per slot, the generation the *next* tenant carries (bumped by
    /// [`EventLoop::close_conn`] so stale completions are recognizable).
    slot_next_gen: Vec<u32>,
    slab: Vec<Option<Pending>>,
    free_slab: Vec<usize>,
    reply_tx: mpsc::Sender<ShardReply>,
    reply_rx: mpsc::Receiver<ShardReply>,
    /// Per-shard coalescing buffers, flushed at [`REPLAY_CHUNK`] or at the
    /// end of each cycle.
    pending_shard: Vec<Vec<(usize, ServerRequest)>>,
    window: usize,
    in_flight_total: usize,
    /// Shed saturated operations with `Busy` instead of blocking
    /// ([`NetOptions::shed_busy`]).
    shed_busy: bool,
    /// Network-surface fault schedule ([`NetOptions::fault`]).
    fault: FaultInjector,
    /// Operations answered `Busy` (`server.shed_busy`; `None` with a
    /// disabled recorder).
    shed_counter: Option<Counter>,
    stop: Arc<AtomicBool>,
}

impl EventLoop {
    fn new(
        server: Server,
        tcp: Option<TcpListener>,
        #[cfg(unix)] uds: Option<UnixListener>,
        options: &NetOptions,
        stop: Arc<AtomicBool>,
    ) -> io::Result<EventLoop> {
        let (reply_tx, reply_rx) = mpsc::channel();
        let shard_count = server.cache().shard_count();
        let recorder = server.cache().recorder().clone();
        let shed_counter = recorder.counter("server.shed_busy");
        if let Some(counter) = recorder.counter("server.net_injected_faults") {
            options.fault.attach_counter(counter);
        }
        Ok(EventLoop {
            server,
            recorder,
            poller: Poller::new()?,
            tcp,
            #[cfg(unix)]
            uds,
            conns: Vec::new(),
            free_conns: Vec::new(),
            slot_next_gen: Vec::new(),
            slab: Vec::new(),
            free_slab: Vec::new(),
            reply_tx,
            reply_rx,
            pending_shard: (0..shard_count).map(|_| Vec::new()).collect(),
            window: options.in_flight_window.max(1),
            in_flight_total: 0,
            shed_busy: options.shed_busy,
            fault: options.fault.clone(),
            shed_counter,
            stop,
        })
    }

    fn run(mut self) -> io::Result<Server> {
        if let Some(listener) = &self.tcp {
            self.poller
                .register(raw_fd(listener), TOKEN_TCP, READABLE)?;
        }
        #[cfg(unix)]
        if let Some(listener) = &self.uds {
            self.poller
                .register(raw_fd(listener), TOKEN_UDS, READABLE)?;
        }
        let mut events: Vec<Event> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            // Completions arrive on an mpsc channel, which cannot wake the
            // poller — poll briefly while work is in flight, longer when
            // the loop is idle.
            let timeout = if self.in_flight_total > 0 {
                Duration::from_millis(1)
            } else {
                Duration::from_millis(25)
            };
            self.poller.wait(&mut events, timeout)?;
            for &event in &events {
                match event.token {
                    TOKEN_TCP => self.accept_tcp(),
                    #[cfg(unix)]
                    TOKEN_UDS => self.accept_uds(),
                    token => {
                        let Some(idx) = token.checked_sub(TOKEN_BASE).map(|t| t as usize) else {
                            continue;
                        };
                        if event.readable() {
                            self.fill_read_buf(idx);
                        }
                        if event.writable() {
                            self.flush_write_buf(idx);
                        }
                    }
                }
            }
            // Decode everything buffered on connections with window room;
            // a connection may have buffered frames left over from when
            // its window was full, so this cannot key off events alone.
            for idx in 0..self.conns.len() {
                self.decode_conn(idx);
            }
            self.submit_pending();
            self.drain_completions();
            self.settle_conns();
        }
        Ok(self.server)
    }

    fn accept_tcp(&mut self) {
        loop {
            let accepted = match &self.tcp {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _peer)) => {
                    // An injected accept failure drops the connection on
                    // the floor — the peer sees an immediate reset.
                    if self.fault.decide(FaultPoint::NetAccept, 0) != InjectedFault::None {
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.add_conn(Stream::Tcp(stream));
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    #[cfg(unix)]
    fn accept_uds(&mut self) {
        loop {
            let accepted = match &self.uds {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _peer)) => {
                    if self.fault.decide(FaultPoint::NetAccept, 0) != InjectedFault::None {
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.add_conn(Stream::Unix(stream));
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn add_conn(&mut self, stream: Stream) {
        let fd = stream.fd();
        let idx = match self.free_conns.pop() {
            Some(idx) => {
                debug_assert!(self.conns[idx].is_none());
                idx
            }
            None => {
                self.conns.push(None);
                self.slot_next_gen.push(0);
                self.conns.len() - 1
            }
        };
        let gen = self.slot_next_gen[idx];
        let token = TOKEN_BASE + idx as u64;
        if self.poller.register(fd, token, READABLE).is_err() {
            self.free_conns.push(idx);
            return;
        }
        self.conns[idx] = Some(Conn {
            stream,
            gen,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_at: 0,
            in_flight: 0,
            read_closed: false,
            interest: READABLE,
            dead: false,
        });
    }

    /// Reads as much as the socket offers into the connection's buffer.
    fn fill_read_buf(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            return;
        };
        if conn.read_closed || conn.dead {
            return;
        }
        // An injected receive failure resets the connection before the
        // read, as if the peer's RST raced the readable event.
        if self.fault.decide(FaultPoint::NetRecv, 0) != InjectedFault::None {
            conn.dead = true;
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    return;
                }
                Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
    }

    /// Decodes frames from the connection's read buffer while it has
    /// window room, routing data operations into the per-shard coalescing
    /// buffers and answering stats inline. With [`NetOptions::shed_busy`],
    /// a connection at its window keeps decoding and answers each data
    /// operation with `Busy` instead of stalling the stream.
    // invariant: the two `expect`s below hold by construction — every
    // non-Stats request variant carries a page, and the connection slot
    // was checked non-empty at the top of the iteration.
    #[cfg_attr(not(test), allow(clippy::expect_used))]
    fn decode_conn(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                return;
            };
            if conn.dead || conn.read_buf.is_empty() {
                return;
            }
            let window_full = conn.in_flight >= self.window;
            if window_full && !self.shed_busy {
                return;
            }
            let span = self.recorder.span(SpanKind::NetFrame);
            let (consumed, decoded) = match wire::take_frame(&conn.read_buf) {
                Ok(None) => {
                    span.cancel();
                    return;
                }
                Ok(Some((consumed, payload))) => (consumed, wire::decode_request(payload)),
                Err(_) => {
                    span.cancel();
                    conn.dead = true;
                    return;
                }
            };
            let (seq, op) = match decoded {
                Ok(frame) => frame,
                Err(_) => {
                    span.cancel();
                    conn.dead = true;
                    return;
                }
            };
            conn.read_buf.drain(..consumed);
            span.finish(consumed as u64);
            match op {
                ServerRequest::Stats => {
                    // Answered inline, mirroring `Server::submit`; stats
                    // take no window slot.
                    let snapshot = StatsSnapshot {
                        result: self.server.stats(),
                        metrics: self.server.metrics(),
                    };
                    self.respond(idx, seq, &ServerResponse::Stats(Box::new(snapshot)));
                }
                op if window_full => {
                    // Load shed: the window has no room, so this decoded
                    // operation is answered `Busy` without ever reaching a
                    // shard. The client is expected to back off and retry.
                    let _ = op;
                    if let Some(counter) = &self.shed_counter {
                        counter.inc();
                    }
                    self.respond(
                        idx,
                        seq,
                        &ServerResponse::Error {
                            code: ErrorCode::Busy,
                        },
                    );
                }
                op => {
                    let kind = match &op {
                        ServerRequest::Get { .. } => PendingKind::Get,
                        ServerRequest::Put { .. } => PendingKind::Put,
                        ServerRequest::Delete { .. } => PendingKind::Delete,
                        ServerRequest::Stats => unreachable!("matched above"),
                    };
                    let page = op.page().expect("data operations carry a page");
                    let shard = self.server.cache().shard_of(page);
                    let conn = self.conns[idx].as_mut().expect("checked above");
                    conn.in_flight += 1;
                    let gen = conn.gen;
                    let tag = self.alloc_pending(Pending {
                        conn: idx,
                        gen,
                        seq,
                        kind,
                    });
                    self.pending_shard[shard].push((tag, op));
                    if self.pending_shard[shard].len() >= REPLAY_CHUNK {
                        self.flush_shard(shard);
                    }
                }
            }
        }
    }

    fn alloc_pending(&mut self, pending: Pending) -> usize {
        match self.free_slab.pop() {
            Some(tag) => {
                debug_assert!(self.slab[tag].is_none());
                self.slab[tag] = Some(pending);
                tag
            }
            None => {
                self.slab.push(Some(pending));
                self.slab.len() - 1
            }
        }
    }

    fn flush_shard(&mut self, shard: usize) {
        if self.pending_shard[shard].is_empty() {
            return;
        }
        let ops = std::mem::take(&mut self.pending_shard[shard]);
        if self.shed_busy {
            // Shedding mode: a full shard queue answers the whole
            // coalesced sub-batch with `Busy` (or `Shutdown`) instead of
            // blocking the event loop.
            match self
                .server
                .try_submit_shard_tagged(shard, ops, &self.reply_tx)
            {
                Ok(submitted) => self.in_flight_total += submitted,
                Err((tags, code)) => {
                    for tag in tags {
                        self.fail_pending(tag, code);
                    }
                }
            }
        } else {
            // Blocks only while the shard's bounded queue is full: worker
            // back-pressure propagating to the event loop, by design.
            self.in_flight_total += self.server.submit_shard_tagged(shard, ops, &self.reply_tx);
        }
    }

    /// Answers a still-pending operation with an error without it ever
    /// having reached a shard: frees the slab slot, releases the window
    /// slot, and encodes an [`ServerResponse::Error`] response.
    fn fail_pending(&mut self, tag: usize, code: ErrorCode) {
        let Some(pending) = self.slab.get_mut(tag).and_then(|slot| slot.take()) else {
            return;
        };
        self.free_slab.push(tag);
        let alive = self
            .conns
            .get(pending.conn)
            .and_then(|c| c.as_ref())
            .is_some_and(|conn| conn.gen == pending.gen);
        if !alive {
            return;
        }
        if let Some(conn) = self.conns[pending.conn].as_mut() {
            conn.in_flight -= 1;
        }
        if code == ErrorCode::Busy {
            if let Some(counter) = &self.shed_counter {
                counter.inc();
            }
        }
        self.respond(pending.conn, pending.seq, &ServerResponse::Error { code });
    }

    fn submit_pending(&mut self) {
        for shard in 0..self.pending_shard.len() {
            self.flush_shard(shard);
        }
    }

    // invariant: every tag on the reply channel was allocated by
    // `alloc_pending` and is taken exactly once — a double take or an
    // out-of-range tag is a slab-accounting bug, not a runtime condition.
    #[cfg_attr(not(test), allow(clippy::expect_used))]
    fn drain_completions(&mut self) {
        while let Ok((tag, result)) = self.reply_rx.try_recv() {
            self.in_flight_total = self.in_flight_total.saturating_sub(1);
            let pending = self
                .slab
                .get_mut(tag)
                .and_then(|slot| slot.take())
                .expect("completion for an unallocated slab slot");
            self.free_slab.push(tag);
            let alive = self
                .conns
                .get(pending.conn)
                .and_then(|c| c.as_ref())
                .is_some_and(|conn| conn.gen == pending.gen);
            if !alive {
                continue;
            }
            if let Some(conn) = self.conns[pending.conn].as_mut() {
                conn.in_flight -= 1;
            }
            let response = match result {
                // A failed operation answers with a typed error frame
                // instead of a fabricated miss: the client can tell "the
                // page is not cached" from "the data plane failed".
                Err(code) => ServerResponse::Error { code },
                Ok(ShardOutcome { hit, data }) => match pending.kind {
                    PendingKind::Get => ServerResponse::Get { hit, data },
                    PendingKind::Put => ServerResponse::Put { hit },
                    PendingKind::Delete => ServerResponse::Delete { existed: hit },
                },
            };
            self.respond(pending.conn, pending.seq, &response);
        }
    }

    /// Encodes a response onto the connection's write buffer (recording
    /// the encode as a [`SpanKind::NetFrame`] span).
    fn respond(&mut self, idx: usize, seq: u64, response: &ServerResponse) {
        let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            return;
        };
        let span = self.recorder.span(SpanKind::NetFrame);
        let before = conn.write_buf.len();
        wire::encode_response(seq, response, &mut conn.write_buf);
        span.finish((conn.write_buf.len() - before) as u64);
    }

    /// Writes as much buffered output as the socket accepts.
    fn flush_write_buf(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            return;
        };
        if !conn.pending_write() {
            return;
        }
        // An injected send fault either caps this cycle's write to a
        // prefix (a partial socket write — the rest stays buffered behind
        // `EPOLLOUT` interest, exercising the resume path) or fails the
        // write outright, which tears the connection down.
        let mut limit = conn.write_buf.len();
        match self
            .fault
            .decide(FaultPoint::NetSend, limit - conn.write_at)
        {
            InjectedFault::None => {}
            InjectedFault::Torn(n) => limit = (conn.write_at + n).min(limit),
            _ => {
                conn.dead = true;
                return;
            }
        }
        while conn.write_at < limit {
            match conn.stream.write(&conn.write_buf[conn.write_at..]) {
                Ok(0) => {
                    conn.dead = true;
                    return;
                }
                Ok(n) => conn.write_at += n,
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => break,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        if conn.write_at == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_at = 0;
        } else if conn.write_at > READ_CHUNK {
            // Compact a long-lived partially written buffer so it cannot
            // grow without bound across cycles.
            conn.write_buf.drain(..conn.write_at);
            conn.write_at = 0;
        }
    }

    /// End-of-cycle per-connection pass: opportunistic writes, interest
    /// re-arming, and teardown of finished or errored connections.
    fn settle_conns(&mut self) {
        for idx in 0..self.conns.len() {
            if self
                .conns
                .get(idx)
                .and_then(|c| c.as_ref())
                .is_some_and(|conn| conn.pending_write() && !conn.dead)
            {
                self.flush_write_buf(idx);
            }
            let Some(conn) = self.conns.get_mut(idx).and_then(|c| c.as_mut()) else {
                continue;
            };
            let finished = conn.read_closed
                && conn.in_flight == 0
                && !conn.pending_write()
                && conn.read_buf.len() < 4; // a buffered partial frame dies with the peer
            if conn.dead || finished {
                self.close_conn(idx);
                continue;
            }
            let mut interest = 0u32;
            if !conn.read_closed && conn.in_flight < self.window {
                interest |= READABLE;
            }
            if conn.pending_write() {
                interest |= WRITABLE;
            }
            if interest != conn.interest {
                let fd = conn.stream.fd();
                let token = TOKEN_BASE + idx as u64;
                conn.interest = interest;
                let _ = self.poller.rearm(fd, token, interest);
            }
        }
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns.get_mut(idx).and_then(|slot| slot.take()) else {
            return;
        };
        self.poller
            .deregister(conn.stream.fd(), TOKEN_BASE + idx as u64);
        // Outstanding completions for this connection are dropped on
        // arrival: the next tenant of the slot carries gen + 1.
        self.slot_next_gen[idx] = conn.gen.wrapping_add(1);
        self.free_conns.push(idx);
    }
}

/// How [`BlockingClient::call_with_retry`] paces its attempts: a bounded
/// number of retries with exponential backoff and seeded multiplicative
/// jitter.
///
/// A retry is attempted after transport errors (the client reconnects
/// first) and after retryable error responses
/// ([`ErrorCode::is_retryable`], i.e. `Busy`). Non-retryable error
/// responses — `Io`, `Corrupt`, `Shutdown`, `Internal` — are returned to
/// the caller immediately: resending cannot make a failed fsync succeed.
///
/// The jitter is drawn from a seeded [`StdRng`], so a retrying client is
/// as deterministic as the fault schedule that makes it retry: attempt
/// `n` sleeps `base_delay * 2^n * u` for `u` uniform in `[0.5, 1.0)`,
/// capped at `max_delay`.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Ceiling applied after the exponential doubling.
    pub max_delay: Duration,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(200),
            seed: 42,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before retry `attempt` (0-based).
    fn delay(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.max_delay);
        exp.mul_f64(rng.gen_range(0.5..1.0))
    }
}

/// Where a [`BlockingClient`] connected, kept so it can reconnect.
#[derive(Debug, Clone)]
enum ConnectTarget {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Uds(PathBuf),
}

/// A minimal blocking client for the wire protocol: encodes requests,
/// pipelines a whole batch onto the socket, and reassembles the responses
/// in batch order via the echoed `seq`.
///
/// This is deliberately the simplest correct counterpart of the server —
/// the loopback equivalence test drives a [`Server`] through it and
/// asserts bit-identical statistics with the in-process path, and the
/// verification smoke gate uses it for its final stats probe. The
/// open-loop generator in [`crate::openloop`] does *not* use it (pacing
/// needs decoupled writer/reader halves).
///
/// For hostile conditions it degrades gracefully rather than hanging:
/// [`BlockingClient::set_timeouts`] bounds every socket connect/read/write,
/// [`BlockingClient::reconnect`] re-dials the original target after a
/// transport error, and [`BlockingClient::call_with_retry`] wraps both in
/// a bounded, jittered retry loop driven by a [`RetryPolicy`].
#[derive(Debug)]
pub struct BlockingClient {
    stream: Stream,
    buf: Vec<u8>,
    target: ConnectTarget,
    connect_timeout: Option<Duration>,
    io_timeout: Option<Duration>,
}

impl BlockingClient {
    /// Connects over TCP (Nagle disabled — the protocol is latency-bound
    /// request/response).
    pub fn connect_tcp(addr: SocketAddr) -> io::Result<BlockingClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(BlockingClient {
            stream: Stream::Tcp(stream),
            buf: Vec::new(),
            target: ConnectTarget::Tcp(addr),
            connect_timeout: None,
            io_timeout: None,
        })
    }

    /// Connects over TCP, failing if the connection cannot be established
    /// within `timeout`. The timeout is remembered for reconnects.
    pub fn connect_tcp_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<BlockingClient> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        Ok(BlockingClient {
            stream: Stream::Tcp(stream),
            buf: Vec::new(),
            target: ConnectTarget::Tcp(addr),
            connect_timeout: Some(timeout),
            io_timeout: None,
        })
    }

    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_uds(path: &std::path::Path) -> io::Result<BlockingClient> {
        Ok(BlockingClient {
            stream: Stream::Unix(UnixStream::connect(path)?),
            buf: Vec::new(),
            target: ConnectTarget::Uds(path.to_path_buf()),
            connect_timeout: None,
            io_timeout: None,
        })
    }

    /// Bounds every subsequent socket read and write by `timeout` (`None`
    /// blocks indefinitely, the default). A timed-out call surfaces as an
    /// I/O error from [`BlockingClient::call_batch`]; the stream may hold
    /// a partial frame afterwards, so recovery means
    /// [`BlockingClient::reconnect`], not a bare retry on the same socket.
    pub fn set_timeouts(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        match &self.stream {
            Stream::Tcp(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)?;
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)?;
            }
        }
        self.io_timeout = timeout;
        Ok(())
    }

    /// Drops the current stream and re-dials the original target,
    /// reapplying the configured timeouts and discarding any buffered
    /// partial frame (the old stream's framing is unrecoverable).
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = match &self.target {
            ConnectTarget::Tcp(addr) => {
                let stream = match self.connect_timeout {
                    Some(timeout) => TcpStream::connect_timeout(addr, timeout)?,
                    None => TcpStream::connect(*addr)?,
                };
                stream.set_nodelay(true)?;
                Stream::Tcp(stream)
            }
            #[cfg(unix)]
            ConnectTarget::Uds(path) => Stream::Unix(UnixStream::connect(path)?),
        };
        self.stream = stream;
        self.buf.clear();
        if let Some(timeout) = self.io_timeout {
            self.set_timeouts(Some(timeout))?;
        }
        Ok(())
    }

    /// Submits one operation with bounded retries: transport errors
    /// trigger a reconnect and a retry, a retryable error response
    /// ([`ErrorCode::is_retryable`], i.e. `Busy`) triggers a retry on the
    /// same connection, and each retry waits out the policy's jittered
    /// exponential backoff first. Returns the last error when the budget
    /// is exhausted.
    pub fn call_with_retry(
        &mut self,
        op: &ServerRequest,
        policy: &RetryPolicy,
    ) -> io::Result<ServerResponse> {
        let mut rng = StdRng::seed_from_u64(policy.seed);
        let mut attempt = 0u32;
        loop {
            let outcome = self.call(op);
            let retryable = match &outcome {
                Ok(response) => response.error_code().is_some_and(ErrorCode::is_retryable),
                Err(_) => true,
            };
            if !retryable || attempt >= policy.max_retries {
                return outcome;
            }
            thread::sleep(policy.delay(attempt, &mut rng));
            attempt += 1;
            if outcome.is_err() {
                // The old stream may be mid-frame; only a fresh one can
                // resynchronize. If the reconnect itself fails, the next
                // call errors on the dead stream and consumes an attempt.
                let _ = self.reconnect();
            }
        }
    }

    /// Submits one batch and blocks until every response arrived,
    /// returning them in batch order (the server may answer out of order
    /// across shards; `seq` correlation restores the order).
    // invariant: the loop below exits only once `received == batch.len()`
    // with all seqs range-checked and dedup-checked, so every slot is
    // `Some` at collection time.
    #[cfg_attr(not(test), allow(clippy::expect_used))]
    pub fn call_batch(&mut self, batch: &[ServerRequest]) -> io::Result<Vec<ServerResponse>> {
        let mut frames = Vec::new();
        for (i, op) in batch.iter().enumerate() {
            wire::encode_request(i as u64, op, &mut frames);
        }
        self.stream.write_all(&frames)?;
        let mut responses: Vec<Option<ServerResponse>> = batch.iter().map(|_| None).collect();
        let mut received = 0usize;
        let mut chunk = [0u8; READ_CHUNK];
        while received < batch.len() {
            while let Some((consumed, payload)) = wire::take_frame(&self.buf)? {
                let (seq, response) = wire::decode_response(payload)?;
                self.buf.drain(..consumed);
                let slot = responses.get_mut(seq as usize).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "response seq out of range")
                })?;
                if slot.replace(response).is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "duplicate response seq",
                    ));
                }
                received += 1;
            }
            if received == batch.len() {
                break;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-batch",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        Ok(responses
            .into_iter()
            .map(|response| response.expect("all seqs received"))
            .collect())
    }

    /// Submits a single operation and blocks for its response.
    // invariant: `call_batch` returns exactly one response per operation
    // in a one-element batch.
    #[cfg_attr(not(test), allow(clippy::expect_used))]
    pub fn call(&mut self, op: &ServerRequest) -> io::Result<ServerResponse> {
        let mut responses = self.call_batch(std::slice::from_ref(op))?;
        Ok(responses.pop().expect("one response per operation"))
    }

    /// Fetches a statistics snapshot.
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.call(&ServerRequest::Stats)? {
            ServerResponse::Stats(snapshot) => Ok(*snapshot),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a stats response, got {other:?}"),
            )),
        }
    }
}
