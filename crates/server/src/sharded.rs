//! [`ShardedClic`]: the page space hash-partitioned across N independently
//! locked CLIC shards, with periodic cross-shard priority merging.
//!
//! Sharding is the standard recipe for scaling a cache across cores: each
//! page maps to exactly one shard, each shard is a plain single-threaded
//! [`Clic`] behind its own mutex, and requests for different shards proceed
//! in parallel without contending. The price is that each shard only
//! observes the requests for *its* pages, so its hint statistics are a
//! (uniform, thanks to hashing) sample of the workload. Left alone, N
//! shards learn N noisier copies of the same priorities; the periodic
//! [`ShardedClic::merge_priorities`] pass request-weight-averages the
//! per-shard priorities and pushes the merged snapshot back into every
//! shard, so hint learning behaves as if it were centralized while the data
//! path stays shard-local.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cache_sim::policy::AccessOutcome;
use cache_sim::sync::recover_lock;
use cache_sim::{
    record_outcome, CachePolicy, CacheStats, ClientId, HintSetId, IoStats, PageId, Request,
    SimulationResult,
};
use clic_core::{Clic, ClicConfig};
use clic_obs::{MetricsSnapshot, Recorder, SpanKind};
use clic_store::{page_payload, Flusher, PageStore, ReadSource, StoreConfig, StoreResult};

/// How [`ShardedClic::merge_priorities`] weights each shard's contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeWeighting {
    /// Weight a shard by *all* requests it has ever served. Simple, but once
    /// a shard has amassed history its stale priorities keep dominating the
    /// merge long after the workload has moved elsewhere.
    Cumulative,
    /// Weight a shard by the requests it served *since the previous merge*
    /// (the default). A shard that went quiet contributes nothing, so the
    /// merged priorities track workload shifts at the merge cadence instead
    /// of the lifetime average — see the
    /// `per_window_merge_tracks_workload_shift_faster` test.
    #[default]
    PerWindow,
}

/// Configuration for a [`ShardedClic`].
#[derive(Debug, Clone)]
pub struct ShardedClicConfig {
    /// Number of shards (independently locked CLIC instances).
    pub shards: usize,
    /// Total cache capacity in pages, split evenly across the shards.
    pub capacity: usize,
    /// The CLIC configuration applied to every shard. The priority window is
    /// interpreted in *global* requests: each shard runs with
    /// `window / shards` so that priorities are re-evaluated at the same
    /// wall-clock cadence regardless of the shard count.
    pub clic: ClicConfig,
    /// Number of *global* requests between cross-shard priority merges
    /// (0 disables merging; irrelevant with a single shard).
    pub merge_every: u64,
    /// How shards are weighted when merging priorities.
    pub merge_weighting: MergeWeighting,
    /// When set, the cache gets a real data plane: **one [`PageStore`] per
    /// shard** (multi-shard deployments place each under a `shard-N`
    /// subdirectory via [`StoreConfig::for_shard`]; a single shard keeps the
    /// base directory), whose buffer frames mirror that shard's cache
    /// contents (admissions install frames, evictions free them — flushing
    /// dirty ones first), served through
    /// [`ShardedClic::access_shard_batch_data`]. Each shard store's frame
    /// count is raised to at least the shard's capacity so the policy can
    /// never admit more pages than there are frames. Pages are
    /// shard-partitioned, so two shards share *no* storage state — Get/Put
    /// traffic for different shards touches disjoint files, frames, and
    /// WALs.
    pub store: Option<StoreConfig>,
    /// The observability handle shared by the cache and — when enabled — by
    /// every attached shard store (overriding the store config's own
    /// recorder, so one registry and one trace collector cover the whole
    /// stack). The default [`Recorder::disabled`] records nothing and costs
    /// one `Option` check per instrumented site.
    pub recorder: Recorder,
}

impl ShardedClicConfig {
    /// A single-shard configuration with the default CLIC parameters and a
    /// merge period of one window.
    pub fn new(capacity: usize) -> Self {
        let clic = ClicConfig::default();
        ShardedClicConfig {
            shards: 1,
            capacity,
            merge_every: clic.window,
            clic,
            merge_weighting: MergeWeighting::default(),
            store: None,
            recorder: Recorder::disabled(),
        }
    }

    /// Sets the shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard is required");
        self.shards = shards;
        self
    }

    /// Sets the per-shard CLIC configuration (window in global requests) and
    /// aligns the merge period with its window.
    pub fn with_clic(mut self, clic: ClicConfig) -> Self {
        self.merge_every = clic.window;
        self.clic = clic;
        self
    }

    /// Sets the merge period in global requests (0 disables merging).
    pub fn with_merge_every(mut self, merge_every: u64) -> Self {
        self.merge_every = merge_every;
        self
    }

    /// Sets how shards are weighted during cross-shard priority merges.
    pub fn with_merge_weighting(mut self, weighting: MergeWeighting) -> Self {
        self.merge_weighting = weighting;
        self
    }

    /// Attaches a disk-backed [`PageStore`] (see
    /// [`ShardedClicConfig::store`]).
    pub fn with_store(mut self, store: StoreConfig) -> Self {
        self.store = Some(store);
        self
    }

    /// Sets the observability handle (see [`ShardedClicConfig::recorder`]).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }
}

/// One shard: a CLIC instance plus the statistics for the requests it served.
#[derive(Debug)]
struct Shard {
    clic: Clic,
    stats: CacheStats,
    per_client: BTreeMap<ClientId, CacheStats>,
    /// `clic.requests_seen()` captured at the previous priority merge; the
    /// difference to the current value is the shard's per-window merge
    /// weight (see [`MergeWeighting::PerWindow`]).
    requests_at_last_merge: u64,
}

/// A thread-safe CLIC cache partitioned across N independently locked shards.
///
/// All methods take `&self`; the struct is `Sync` and is meant to be shared
/// across threads (the [`crate::Server`] workers all hold one behind an
/// `Arc`). Sequence numbers are drawn from a global atomic counter so that
/// re-reference distances are measured in global requests, exactly as a
/// single cache would measure them.
///
/// With `shards == 1` and a single caller, the access path is identical to
/// driving a [`Clic`] through [`cache_sim::simulate`] — the correctness
/// anchor `tests/server_concurrency.rs` asserts bit-exact statistics.
#[derive(Debug)]
pub struct ShardedClic {
    shards: Vec<Mutex<Shard>>,
    sequencer: AtomicU64,
    merge_every: u64,
    merge_weighting: MergeWeighting,
    merges_completed: AtomicU64,
    total_capacity: usize,
    /// The data plane, when configured: one store per shard (same indexing
    /// as `shards`), held *outside* the shard mutexes and shared with an
    /// optional background [`Flusher`]. Pages are partitioned across shards,
    /// so operations on a page are serialized by its owning shard's lock;
    /// the stores' internal latches only mediate between a shard and the
    /// flusher. Empty when no store is attached.
    stores: Vec<Arc<PageStore>>,
    /// Background write-back thread over *all* shard stores; joined on drop
    /// (without flushing — a plain drop models a crash,
    /// [`ShardedClic::checkpoint_store`] models a clean shutdown).
    flusher: Option<Flusher>,
    /// The observability handle ([`ShardedClicConfig::recorder`]); shared
    /// with every shard store when enabled.
    recorder: Recorder,
}

impl ShardedClic {
    /// Builds the sharded cache described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero shards or fewer capacity pages
    /// than shards, or if a shard's page store fails to open; use
    /// [`ShardedClic::try_new`] to handle store-open failures as errors.
    pub fn new(config: ShardedClicConfig) -> Self {
        // invariant: documented panicking convenience over `try_new`.
        #[allow(clippy::expect_used)]
        ShardedClic::try_new(config).expect("failed to open a shard's page store")
    }

    /// [`ShardedClic::new`], surfacing shard-store open failures as errors
    /// instead of panicking. Configuration errors (zero shards, capacity
    /// below one page per shard) still panic — they are caller bugs, not
    /// runtime conditions.
    pub fn try_new(config: ShardedClicConfig) -> io::Result<Self> {
        assert!(config.shards > 0, "at least one shard is required");
        assert!(
            config.capacity >= config.shards,
            "capacity ({}) must be at least one page per shard ({})",
            config.capacity,
            config.shards
        );
        let per_shard_window = (config.clic.window / config.shards as u64).max(1);
        let shard_config = config.clic.with_window(per_shard_window);
        let base = config.capacity / config.shards;
        let remainder = config.capacity % config.shards;
        let with_store = config.store.is_some();
        let shards: Vec<Mutex<Shard>> = (0..config.shards)
            .map(|i| {
                let capacity = base + usize::from(i < remainder);
                let mut clic = Clic::new(capacity, shard_config);
                if with_store {
                    // The data plane needs eviction identities to free (and
                    // flush) the victims' buffer frames.
                    assert!(
                        clic.record_evictions(true),
                        "CLIC must support eviction identity reporting"
                    );
                }
                Mutex::new(Shard {
                    clic,
                    stats: CacheStats::new(),
                    per_client: BTreeMap::new(),
                    requests_at_last_merge: 0,
                })
            })
            .collect();
        let (stores, flusher) = match config.store {
            Some(store_config) => {
                let mut stores: Vec<Arc<PageStore>> = Vec::with_capacity(config.shards);
                for i in 0..config.shards {
                    let shard_capacity = base + usize::from(i < remainder);
                    let mut shard_store = store_config.for_shard(i, config.shards);
                    if config.recorder.is_enabled() {
                        // One recorder across the cache and every shard
                        // store: spans land in one trace and metrics in
                        // one registry.
                        shard_store.recorder = config.recorder.clone();
                    }
                    // Each shard store must hold at least one frame per
                    // cache page of its shard, or admissions could
                    // outrun it; a configured frame budget is split
                    // across the shards.
                    shard_store.frames = shard_store
                        .frames
                        .div_ceil(config.shards)
                        .max(shard_capacity)
                        .max(1);
                    stores.push(Arc::new(PageStore::open(shard_store)?));
                }
                let flusher = store_config.flush_interval.map(|interval| {
                    Flusher::start(stores.clone(), interval, store_config.flush_batch)
                });
                (stores, flusher)
            }
            None => (Vec::new(), None),
        };
        Ok(ShardedClic {
            shards,
            sequencer: AtomicU64::new(0),
            merge_every: config.merge_every,
            merge_weighting: config.merge_weighting,
            merges_completed: AtomicU64::new(0),
            total_capacity: config.capacity,
            stores,
            flusher,
            recorder: config.recorder,
        })
    }

    /// Policy name, e.g. `"ShardedCLIC(shards=4)"`.
    pub fn name(&self) -> String {
        format!("ShardedCLIC(shards={})", self.shards.len())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity in pages across all shards.
    pub fn capacity(&self) -> usize {
        self.total_capacity
    }

    /// Total number of requests served so far.
    pub fn requests_seen(&self) -> u64 {
        self.sequencer.load(Ordering::Relaxed)
    }

    /// Number of cross-shard priority merges performed so far.
    pub fn merges_completed(&self) -> u64 {
        self.merges_completed.load(Ordering::Relaxed)
    }

    /// The shard responsible for `page`: the workspace-wide
    /// [`cache_sim::hash::page_partition`] routing rule, shared with the
    /// driver's partitioned replay so offline partition studies model this
    /// server's placement exactly.
    pub fn shard_of(&self, page: PageId) -> usize {
        cache_sim::hash::page_partition(page, self.shards.len())
    }

    /// Serves one request: draws a global sequence number, runs the owning
    /// shard's CLIC policy, and records hit/miss statistics with the same
    /// accounting rule as [`cache_sim::simulate`]. Triggers a cross-shard
    /// priority merge every [`ShardedClicConfig::merge_every`] requests.
    pub fn access(&self, req: &Request) -> AccessOutcome {
        let (seq, outcome) = {
            let mut shard = recover_lock(&self.shards[self.shard_of(req.page)]);
            // The sequence number is drawn while holding the shard lock:
            // still globally unique, but also monotone *within* the shard,
            // which the per-shard Clic relies on (its lists are ordered by
            // ascending seq and re-reference distances are seq deltas).
            let seq = self.sequencer.fetch_add(1, Ordering::Relaxed);
            let outcome = shard.clic.access(req, seq);
            let Shard {
                stats, per_client, ..
            } = &mut *shard;
            record_outcome(stats, per_client, req, outcome);
            (seq, outcome)
        };
        if self.merge_every > 0 && (seq + 1).is_multiple_of(self.merge_every) {
            self.merge_priorities();
        }
        outcome
    }

    /// Serves a batch of requests that all map to shard `shard_idx`,
    /// appending one outcome per request to `outcomes`.
    ///
    /// The shard lock is taken *once* for the whole batch and the requests
    /// run through the policy's batched fast path
    /// ([`cache_sim::CachePolicy::access_batch`]), so per-request lock and
    /// dispatch overhead is paid per batch. A contiguous block of global
    /// sequence numbers is drawn for the batch; with a single shard (or a
    /// single caller) this is indistinguishable from per-request sequencing,
    /// and under concurrency it only coarsens the interleaving of
    /// re-reference distances, which are measured in global requests either
    /// way. Statistics accounting is identical to calling
    /// [`ShardedClic::access`] per request; priority merges coalesce — a
    /// batch that crosses one *or more* `merge_every` boundaries triggers a
    /// single merge (back-to-back merges with no intervening traffic would
    /// be no-ops under per-window weighting, so nothing is lost).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if any request's page does not belong to
    /// `shard_idx`.
    pub fn access_shard_batch(
        &self,
        shard_idx: usize,
        reqs: &[Request],
        outcomes: &mut Vec<AccessOutcome>,
    ) {
        if reqs.is_empty() {
            return;
        }
        debug_assert!(
            reqs.iter().all(|r| self.shard_of(r.page) == shard_idx),
            "batch contains requests for a different shard"
        );
        let first_seq = {
            let mut shard = recover_lock(&self.shards[shard_idx]);
            // As in `access`, sequence numbers are drawn under the shard
            // lock so they stay monotone within the shard.
            let first_seq = self
                .sequencer
                .fetch_add(reqs.len() as u64, Ordering::Relaxed);
            let start = outcomes.len();
            shard.clic.access_batch(reqs, first_seq, outcomes);
            let Shard {
                stats, per_client, ..
            } = &mut *shard;
            for (req, outcome) in reqs.iter().zip(&outcomes[start..]) {
                record_outcome(stats, per_client, req, *outcome);
            }
            first_seq
        };
        // Merge once if any request in the block crossed a multiple of
        // `merge_every` (the per-request rule is `(seq + 1) % m == 0`);
        // `checked_div` doubles as the merging-disabled (zero period) guard.
        let last = first_seq + reqs.len() as u64;
        if last.checked_div(self.merge_every) > first_seq.checked_div(self.merge_every) {
            self.merge_priorities();
        }
    }

    /// [`ShardedClic::access_shard_batch`] with a real data plane: serves a
    /// batch of requests for shard `shard_idx`, moving each request's bytes
    /// through the attached [`PageStore`].
    ///
    /// Per request, after the policy decision:
    ///
    /// * pages the policy evicted are evicted from the store first (a dirty
    ///   victim is flushed to disk before its frame is freed);
    /// * a **read** fetches the page's bytes — buffer frame, disk tier, or
    ///   zeroes for a never-written page — pushing `Some(bytes)` onto
    ///   `data_out`, and installs them as a clean frame if the policy
    ///   admitted the miss;
    /// * a **write** stores `payloads[i]` (zero-padded or truncated to one
    ///   page; a deterministic [`page_payload`] when `None`): staged
    ///   write-back through the WAL when cached, written straight through to
    ///   disk when bypassed. Writes push `None` onto `data_out`.
    ///
    /// Statistics accounting and merge cadence are identical to
    /// [`ShardedClic::access_shard_batch`]; sequence numbers are drawn
    /// per-request under the shard lock exactly as [`ShardedClic::access`]
    /// draws them, so a single-shard, single-caller run is bit-identical to
    /// the policy-only path. Store I/O happens under the shard lock against
    /// the shard's *own* store — pages are shard-partitioned, so this
    /// serializes exactly the I/O that a correctness race would otherwise
    /// reorder, and I/O for different shards shares no lock at all.
    ///
    /// # Panics
    ///
    /// Panics if no store is attached ([`ShardedClicConfig::with_store`]),
    /// if `payloads` is shorter than `reqs`, or (in debug builds) if any
    /// request's page does not belong to `shard_idx`.
    // invariant: the `expect` below restates the documented panic —
    // calling the data path without a store is a caller bug, not a
    // runtime condition.
    #[cfg_attr(not(test), allow(clippy::expect_used))]
    pub fn access_shard_batch_data(
        &self,
        shard_idx: usize,
        reqs: &[Request],
        payloads: &[Option<Vec<u8>>],
        outcomes: &mut Vec<AccessOutcome>,
        data_out: &mut Vec<Option<Vec<u8>>>,
    ) -> io::Result<()> {
        let store = self
            .stores
            .get(shard_idx)
            .expect("access_shard_batch_data requires an attached page store");
        if reqs.is_empty() {
            return Ok(());
        }
        assert!(
            payloads.len() >= reqs.len(),
            "one payload slot per request is required"
        );
        debug_assert!(
            reqs.iter().all(|r| self.shard_of(r.page) == shard_idx),
            "batch contains requests for a different shard"
        );
        let page_size = store.page_size();
        let mut evicted: Vec<PageId> = Vec::new();
        let mut buf: Vec<u8> = Vec::with_capacity(page_size);
        let (first_seq, last_seq) = {
            let mut shard = recover_lock(&self.shards[shard_idx]);
            let mut first_seq = 0;
            let mut last_seq = 0;
            for (i, req) in reqs.iter().enumerate() {
                // As in `access`: drawn under the shard lock, so sequence
                // numbers stay monotone within the shard.
                let seq = self.sequencer.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    first_seq = seq;
                }
                last_seq = seq;
                let outcome = shard.clic.access(req, seq);
                outcomes.push(outcome);
                // Free the victims' frames before touching the new page,
                // flushing dirty ones: eviction order is write-back order.
                shard.clic.drain_evictions(&mut evicted);
                for victim in evicted.drain(..) {
                    store.evict(victim)?;
                }
                if req.is_read() {
                    let source = store.read(req.page, &mut buf)?;
                    debug_assert_eq!(
                        outcome.hit,
                        source == ReadSource::Buffer,
                        "policy hit/miss and buffer residency disagree for {}",
                        req.page
                    );
                    if !outcome.hit && !outcome.bypassed {
                        store.admit(req.page, &buf)?;
                    }
                    data_out.push(Some(buf.clone()));
                } else {
                    let data = match &payloads[i] {
                        Some(bytes) => {
                            let mut page = vec![0u8; page_size];
                            let n = bytes.len().min(page_size);
                            page[..n].copy_from_slice(&bytes[..n]);
                            page
                        }
                        None => page_payload(req.page, page_size),
                    };
                    if outcome.bypassed {
                        store.write_through(req.page, &data)?;
                    } else {
                        store.stage(req.page, &data)?;
                    }
                    data_out.push(None);
                }
                let Shard {
                    stats, per_client, ..
                } = &mut *shard;
                record_outcome(stats, per_client, req, outcome);
            }
            (first_seq, last_seq)
        };
        if (last_seq + 1).checked_div(self.merge_every) > first_seq.checked_div(self.merge_every) {
            self.merge_priorities();
        }
        Ok(())
    }

    /// Deletes `page`: the owning shard's policy forgets it entirely (no
    /// outqueue ghost survives to bias a future re-admission) and, with a
    /// data plane attached, the shard store drops the page's bytes — frame
    /// discarded without write-back, WAL delete record, disk slot freed.
    /// Returns whether the server held the page anywhere (cache or disk).
    ///
    /// A delete is not an access: no sequence number is drawn, statistics
    /// and hint learning are untouched, and it never triggers a priority
    /// merge. Ordering against accesses of the same page is the shard
    /// lock's: deletes interleave atomically with (batched) accesses.
    pub fn delete(&self, page: PageId) -> io::Result<bool> {
        let shard_idx = self.shard_of(page);
        let mut shard = recover_lock(&self.shards[shard_idx]);
        let cached = shard.clic.invalidate(page);
        let on_disk = match self.stores.get(shard_idx) {
            // The store delete runs under the shard lock like every other
            // per-page store operation, satisfying PageStore's caller
            // contract that same-page operations are serialized.
            Some(store) => store.delete(page)?,
            None => false,
        };
        Ok(cached || on_disk)
    }

    /// Whether a data plane is attached.
    pub fn has_store(&self) -> bool {
        !self.stores.is_empty()
    }

    /// Shard `idx`'s page store, if a data plane is attached (and the index
    /// is in range).
    pub fn shard_store(&self, idx: usize) -> Option<&Arc<PageStore>> {
        self.stores.get(idx)
    }

    /// All per-shard stores, indexed like the shards (empty without a data
    /// plane).
    pub fn stores(&self) -> &[Arc<PageStore>] {
        &self.stores
    }

    /// The observability handle this cache (and its shard stores) records
    /// into.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The full metrics snapshot: the server-level registry (queue-depth
    /// gauge, batch-service and client-latency histograms — empty when the
    /// recorder is disabled) merged with every shard store's always-on
    /// `store.*` counters. Mergeable across servers; safe to call on any
    /// configuration.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snapshot = self.recorder.snapshot();
        for store in &self.stores {
            // With an enabled recorder the stores share its registry only
            // for spans — their counters live in per-store registries
            // either way, so this merge is never double counting.
            snapshot.merge(&store.metrics());
        }
        snapshot
    }

    /// A snapshot of the data plane's byte-level I/O counters summed across
    /// every shard store, if a data plane is attached.
    pub fn io_stats(&self) -> Option<IoStats> {
        if self.stores.is_empty() {
            return None;
        }
        let mut total = IoStats::new();
        for store in &self.stores {
            total += store.io_stats();
        }
        Some(total)
    }

    /// Checkpoints every shard store — flushes every dirty frame, syncs the
    /// backing files, truncates the WALs — and returns how many frames were
    /// written back in total. `Ok(0)` without a store. This is the
    /// clean-shutdown path; merely dropping the cache models a crash
    /// (acknowledged writes then recover from each shard's WAL on the next
    /// open).
    pub fn checkpoint_store(&self) -> io::Result<usize> {
        let mut flushed = 0;
        for store in &self.stores {
            flushed += store.checkpoint()?;
        }
        Ok(flushed)
    }

    /// Stops the background flusher thread, if one is running (also done on
    /// drop).
    pub fn stop_flusher(&mut self) {
        if let Some(flusher) = self.flusher.as_mut() {
            flusher.stop();
        }
    }

    /// Stops the background flusher, waiting at most `timeout`: a flush pass
    /// wedged in the kernel (dying disk) surfaces as
    /// [`clic_store::StoreError::ShutdownTimeout`] instead of hanging
    /// shutdown forever. A no-op without a flusher.
    pub fn stop_flusher_timeout(&mut self, timeout: Duration) -> StoreResult<()> {
        match self.flusher.as_mut() {
            Some(flusher) => flusher.stop_timeout(timeout),
            None => Ok(()),
        }
    }

    /// Returns `true` if `page` is currently cached (in its shard).
    pub fn contains(&self, page: PageId) -> bool {
        recover_lock(&self.shards[self.shard_of(page)])
            .clic
            .contains(page)
    }

    /// Total number of pages currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| recover_lock(s).clic.len()).sum()
    }

    /// Returns `true` if no shard holds any page.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges hint-set priorities across shards: exports every shard's
    /// priorities, averages them weighted per the configured
    /// [`MergeWeighting`] — by default the shard's request count *since the
    /// previous merge*, so quiet shards' stale priorities do not dominate
    /// after a workload shift — and imports the merged snapshot back into
    /// each shard. A no-op with a single shard, or when no weighted shard
    /// served any requests.
    ///
    /// Shard locks are taken strictly one at a time (never nested), so this
    /// can run concurrently with the data path without deadlock; accesses
    /// that interleave with the merge see either their shard's old or merged
    /// priorities, which is harmless for a learning heuristic.
    pub fn merge_priorities(&self) {
        if self.shards.len() <= 1 {
            return;
        }
        // Detail: number of distinct hint sets in the merged snapshot.
        // Cancelled when the merge turns out to be a no-op.
        let mut span = self.recorder.span(SpanKind::PriorityMerge);
        let mut total_weight = 0.0f64;
        let mut merged: HashMap<HintSetId, f64> = HashMap::new();
        let mut requests_at_export: Vec<u64> = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let shard = recover_lock(shard);
            let requests = shard.clic.requests_seen();
            requests_at_export.push(requests);
            let weight = match self.merge_weighting {
                MergeWeighting::Cumulative => requests as f64,
                MergeWeighting::PerWindow => {
                    requests.saturating_sub(shard.requests_at_last_merge) as f64
                }
            };
            if weight <= 0.0 {
                continue;
            }
            total_weight += weight;
            for (hint, priority) in shard.clic.export_priorities() {
                *merged.entry(hint).or_insert(0.0) += weight * priority;
            }
        }
        if total_weight <= 0.0 {
            span.cancel();
            return;
        }
        for value in merged.values_mut() {
            *value /= total_weight;
        }
        let snapshot: Vec<(HintSetId, f64)> = merged.into_iter().collect();
        span.set_detail(snapshot.len() as u64);
        for (shard, &requests) in self.shards.iter().zip(&requests_at_export) {
            let mut shard = recover_lock(shard);
            // The marker is pinned to the export-time count, so requests
            // that raced in between export and import still weigh in next
            // time.
            shard.requests_at_last_merge = requests;
            shard.clic.import_priorities(snapshot.iter().copied());
        }
        self.merges_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time statistics snapshot in the shape of
    /// [`SimulationResult`]: per-shard counters summed into aggregate and
    /// per-client statistics via [`SimulationResult::merge_from`].
    pub fn snapshot(&self) -> SimulationResult {
        let mut result = SimulationResult {
            policy: self.name(),
            capacity: self.total_capacity,
            ..SimulationResult::default()
        };
        for shard in &self.shards {
            let shard = recover_lock(shard);
            let partial = SimulationResult {
                policy: String::new(),
                capacity: 0,
                stats: shard.stats,
                per_client: shard.per_client.clone(),
            };
            result.merge_from(&partial);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{simulate, AccessKind, Trace, TraceBuilder};
    use clic_core::suggested_window;
    use std::thread;

    fn looping_trace(requests: u64, pages: u64) -> Trace {
        let mut b = TraceBuilder::new().with_name("loop");
        let c = b.add_client("db", &[("kind", 2)]);
        let hot = b.intern_hints(c, &[0]);
        let cold = b.intern_hints(c, &[1]);
        for i in 0..requests {
            b.push(c, i % pages, AccessKind::Read, None, hot);
            b.push(c, 1_000_000 + i, AccessKind::Read, None, cold);
        }
        b.build()
    }

    #[test]
    fn single_shard_matches_simulate_exactly() {
        let trace = looping_trace(20_000, 200);
        let window = suggested_window(trace.len() as u64);
        let config = ClicConfig::default().with_window(window);

        let mut reference = Clic::new(256, config);
        let expected = simulate(&mut reference, &trace);

        let sharded = ShardedClic::new(
            ShardedClicConfig::new(256)
                .with_clic(config)
                .with_merge_every(1_000),
        );
        for req in &trace.requests {
            sharded.access(req);
        }
        let got = sharded.snapshot();
        assert_eq!(got.stats, expected.stats);
        assert_eq!(got.per_client, expected.per_client);
        assert_eq!(got.capacity, expected.capacity);
    }

    #[test]
    fn sharding_distributes_pages_and_respects_capacity() {
        let trace = looping_trace(10_000, 500);
        let sharded = ShardedClic::new(ShardedClicConfig::new(64).with_shards(4));
        for req in &trace.requests {
            sharded.access(req);
        }
        assert_eq!(sharded.requests_seen(), trace.len() as u64);
        assert!(sharded.len() <= 64);
        let snapshot = sharded.snapshot();
        assert_eq!(snapshot.stats.requests(), trace.len() as u64);
        // Hashing should touch every shard for a 500-page working set.
        let touched: std::collections::HashSet<usize> =
            (0..500u64).map(|p| sharded.shard_of(PageId(p))).collect();
        assert_eq!(touched.len(), 4);
    }

    #[test]
    fn capacity_split_covers_remainders() {
        let sharded = ShardedClic::new(ShardedClicConfig::new(10).with_shards(3));
        assert_eq!(sharded.capacity(), 10);
        assert_eq!(sharded.shard_count(), 3);
        // 4 + 3 + 3 pages; fill with pages for every shard and check the sum
        // never exceeds the total.
        let mut b = TraceBuilder::new();
        let c = b.add_client("db", &[("kind", 1)]);
        let h = b.intern_hints(c, &[0]);
        for p in 0..100u64 {
            b.push(c, p, AccessKind::Read, None, h);
        }
        for req in &b.build().requests {
            sharded.access(req);
        }
        assert!(sharded.len() <= 10);
    }

    #[test]
    fn merge_unifies_priorities_across_shards() {
        // Hot pages are re-read quickly, cold pages never; pages of both
        // kinds hash across both shards. After a merge, both shards must
        // agree on every hint set's priority.
        let mut b = TraceBuilder::new();
        let c = b.add_client("db", &[("kind", 2)]);
        let hot = b.intern_hints(c, &[0]);
        let cold = b.intern_hints(c, &[1]);
        for i in 0..4_000u64 {
            b.push(c, i % 64, AccessKind::Write, None, hot);
            b.push(c, i % 64, AccessKind::Read, None, hot);
            b.push(c, 1_000_000 + i, AccessKind::Read, None, cold);
        }
        let trace = b.build();
        let config = ClicConfig::default()
            .with_window(1_000)
            .with_metadata_charging(false);
        let sharded = ShardedClic::new(
            ShardedClicConfig::new(128)
                .with_shards(2)
                .with_clic(config)
                .with_merge_every(1_000),
        );
        for req in &trace.requests {
            sharded.access(req);
        }
        assert!(sharded.merges_completed() > 0);
        let per_shard: Vec<Vec<(HintSetId, f64)>> = sharded
            .shards
            .iter()
            .map(|s| {
                let mut snap = recover_lock(s).clic.export_priorities();
                snap.sort_by_key(|(h, _)| h.0);
                snap
            })
            .collect();
        // The last access triggered a merge (12_000 % 1_000 == 0), so the
        // shards' priority tables are identical.
        assert_eq!(per_shard[0], per_shard[1]);
        let hot_priority = per_shard[0]
            .iter()
            .find(|(h, _)| *h == hot)
            .map(|(_, p)| *p)
            .unwrap_or(0.0);
        let cold_priority = per_shard[0]
            .iter()
            .find(|(h, _)| *h == cold)
            .map(|(_, p)| *p)
            .unwrap_or(0.0);
        assert!(
            hot_priority > cold_priority,
            "merged priorities must still rank hot ({hot_priority}) above cold ({cold_priority})"
        );
    }

    #[test]
    fn concurrent_access_accounts_every_request() {
        let sharded = ShardedClic::new(
            ShardedClicConfig::new(64)
                .with_shards(4)
                .with_merge_every(500),
        );
        let threads = 4u32;
        let per_thread = 5_000u64;
        thread::scope(|scope| {
            for t in 0..threads {
                let sharded = &sharded;
                scope.spawn(move || {
                    let mut b = TraceBuilder::new();
                    let c = b.add_client("db", &[("kind", 1)]);
                    let h = b.intern_hints(c, &[0]);
                    for i in 0..per_thread {
                        b.push(
                            c,
                            u64::from(t) * 10_000 + (i % 300),
                            AccessKind::Read,
                            None,
                            h,
                        );
                    }
                    for req in &b.build().requests {
                        sharded.access(req);
                    }
                });
            }
        });
        assert_eq!(
            sharded.requests_seen(),
            u64::from(threads) * per_thread,
            "every request must be sequenced"
        );
        assert_eq!(
            sharded.snapshot().stats.requests(),
            u64::from(threads) * per_thread
        );
        assert!(sharded.len() <= 64);
    }

    #[test]
    #[should_panic(expected = "at least one page per shard")]
    fn too_many_shards_rejected() {
        let _ = ShardedClic::new(ShardedClicConfig::new(2).with_shards(3));
    }

    #[test]
    fn shard_batches_match_per_request_access_exactly() {
        // With one shard, `access_shard_batch` (single lock + block
        // sequencing per batch) draws exactly the sequence numbers that
        // per-request `access` would, so the statistics must be
        // bit-identical. (Across several concurrent shards, block sequencing
        // only coarsens the interleaving, which is nondeterministic anyway.)
        let trace = looping_trace(10_000, 300);
        let config = ClicConfig::default().with_window(1_000);
        let build = || {
            ShardedClic::new(
                ShardedClicConfig::new(128)
                    .with_clic(config)
                    .with_merge_every(700),
            )
        };

        let sequential = build();
        for req in &trace.requests {
            sequential.access(req);
        }

        let batched = build();
        let mut outcomes = Vec::new();
        for chunk in trace.requests.chunks(64) {
            outcomes.clear();
            batched.access_shard_batch(0, chunk, &mut outcomes);
            assert_eq!(outcomes.len(), chunk.len());
        }

        assert_eq!(batched.requests_seen(), sequential.requests_seen());
        let got = batched.snapshot();
        let expected = sequential.snapshot();
        assert_eq!(got.stats, expected.stats);
        assert_eq!(got.per_client, expected.per_client);

        // Multi-shard batches still account for every request.
        let sharded = ShardedClic::new(
            ShardedClicConfig::new(128)
                .with_shards(4)
                .with_clic(config)
                .with_merge_every(700),
        );
        for chunk in trace.requests.chunks(64) {
            for shard in 0..sharded.shard_count() {
                let sub: Vec<Request> = chunk
                    .iter()
                    .filter(|r| sharded.shard_of(r.page) == shard)
                    .copied()
                    .collect();
                outcomes.clear();
                sharded.access_shard_batch(shard, &sub, &mut outcomes);
                assert_eq!(outcomes.len(), sub.len());
            }
        }
        assert_eq!(sharded.requests_seen(), trace.len() as u64);
        assert_eq!(sharded.snapshot().stats.requests(), trace.len() as u64);
        assert!(sharded.merges_completed() > 0);
    }

    #[test]
    fn data_plane_matches_policy_only_statistics_and_serves_bytes() {
        let dir =
            std::env::temp_dir().join(format!("clic-sharded-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let trace = {
            let mut b = TraceBuilder::new();
            let c = b.add_client("db", &[("kind", 2)]);
            let hot = b.intern_hints(c, &[0]);
            let cold = b.intern_hints(c, &[1]);
            for i in 0..2_000u64 {
                b.push(c, i % 64, AccessKind::Write, None, hot);
                b.push(c, i % 64, AccessKind::Read, None, hot);
                b.push(c, 1_000_000 + i, AccessKind::Read, None, cold);
            }
            b.build()
        };
        let config = ClicConfig::default().with_window(1_000);

        // Policy-only reference.
        let reference = ShardedClic::new(
            ShardedClicConfig::new(128)
                .with_clic(config)
                .with_merge_every(500),
        );
        let mut outcomes = Vec::new();
        for chunk in trace.requests.chunks(64) {
            outcomes.clear();
            reference.access_shard_batch(0, chunk, &mut outcomes);
        }

        // Same single-shard cache over a real store (tiny pages keep the
        // test fast).
        let sharded = ShardedClic::new(
            ShardedClicConfig::new(128)
                .with_clic(config)
                .with_merge_every(500)
                .with_store(StoreConfig::new(&dir, 128).with_page_size(64)),
        );
        assert!(sharded.has_store());
        let mut data = Vec::new();
        for chunk in trace.requests.chunks(64) {
            outcomes.clear();
            data.clear();
            let payloads = vec![None; chunk.len()];
            sharded
                .access_shard_batch_data(0, chunk, &payloads, &mut outcomes, &mut data)
                .unwrap();
            assert_eq!(data.len(), chunk.len());
            for (req, bytes) in chunk.iter().zip(&data) {
                assert_eq!(req.is_read(), bytes.is_some());
            }
        }

        // The data plane must not change policy behaviour.
        let got = sharded.snapshot();
        let expected = reference.snapshot();
        assert_eq!(got.stats, expected.stats);
        assert_eq!(got.per_client, expected.per_client);

        // Bytes actually moved, and a read of a written page returns its
        // deterministic payload.
        let io = sharded.io_stats().unwrap();
        assert!(io.disk_reads > 0, "cold misses must hit the disk tier");
        assert!(io.wal_records > 0, "writes must be logged");
        let store = sharded.shard_store(0).unwrap();
        let mut buf = Vec::new();
        store.read(PageId(3), &mut buf).unwrap();
        assert_eq!(buf, page_payload(PageId(3), 64));

        // Checkpoint writes the dirty hot pages back and leaves nothing
        // dirty. (Dirty *eviction* flushes are exercised in clic-store's
        // replay tests, where the cache is smaller than the write set.)
        assert!(store.dirty_len() > 0, "hot written pages should be dirty");
        sharded.checkpoint_store().unwrap();
        assert_eq!(store.dirty_len(), 0);
        assert!(sharded.io_stats().unwrap().pages_flushed > 0);
        drop(sharded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_window_merge_tracks_workload_shift_faster() {
        // Phase 1 hammers shard 0 with hint OLD until its priority is high
        // and the shard has a large cumulative request count. Phase 2 shifts
        // the workload entirely to shard 1 with hint NEW. At the next merge,
        // per-window weighting must let the fresh shard dominate (NEW
        // outranks OLD everywhere), while cumulative weighting still lets
        // shard 0's stale history dilute the shift.
        let config = ClicConfig::default()
            .with_window(500)
            .with_metadata_charging(false);
        let run = |weighting: MergeWeighting| -> (f64, f64) {
            let sharded = ShardedClic::new(
                ShardedClicConfig::new(64)
                    .with_shards(2)
                    .with_clic(config)
                    .with_merge_every(0) // merges are triggered manually
                    .with_merge_weighting(weighting),
            );
            let pages_of = |shard: usize, n: usize| -> Vec<u64> {
                (0u64..)
                    .filter(|&p| sharded.shard_of(PageId(p)) == shard)
                    .take(n)
                    .collect()
            };
            let mut b = TraceBuilder::new();
            let c = b.add_client("db", &[("phase", 2)]);
            let old_hint = b.intern_hints(c, &[0]);
            let new_hint = b.intern_hints(c, &[1]);

            // Phase 1: 4_000 write+read pairs over shard-0 pages, hint OLD.
            let shard0 = pages_of(0, 16);
            for i in 0..4_000u64 {
                let page = shard0[(i % 16) as usize];
                b.push(c, page, AccessKind::Write, None, old_hint);
                b.push(c, page, AccessKind::Read, None, old_hint);
            }
            // Phase 2: 400 write+read pairs over shard-1 pages, hint NEW —
            // enough for at least one per-shard priority window (250).
            let shard1 = pages_of(1, 16);
            for i in 0..400u64 {
                let page = shard1[(i % 16) as usize];
                b.push(c, page, AccessKind::Write, None, new_hint);
                b.push(c, page, AccessKind::Read, None, new_hint);
            }
            let trace = b.build();
            let phase1_len = 8_000;
            for req in &trace.requests[..phase1_len] {
                sharded.access(req);
            }
            sharded.merge_priorities(); // end of phase 1: sets the markers
            for req in &trace.requests[phase1_len..] {
                sharded.access(req);
            }
            sharded.merge_priorities(); // the merge under test
            let shard0 = recover_lock(&sharded.shards[0]);
            (
                shard0.clic.priority_of(new_hint),
                shard0.clic.priority_of(old_hint),
            )
        };

        let (pw_new, pw_old) = run(MergeWeighting::PerWindow);
        let (cum_new, cum_old) = run(MergeWeighting::Cumulative);
        assert!(
            pw_new > cum_new,
            "per-window weighting must propagate the shifted workload's hint \
             faster (per-window NEW {pw_new:.6} vs cumulative NEW {cum_new:.6})"
        );
        assert!(
            pw_new > pw_old,
            "after the shift, per-window merging must rank the new hint \
             above the stale one ({pw_new:.6} vs {pw_old:.6})"
        );
        assert!(
            cum_old > cum_new,
            "sanity: cumulative weighting still favours the stale hint \
             ({cum_old:.6} vs {cum_new:.6}), which is exactly the problem"
        );
    }
}
