//! Open-loop Poisson load generation against a network front-end.
//!
//! The closed-loop harness in [`crate::harness`] measures *service
//! capacity*: each client thread waits for its batch before sending the
//! next, so the offered load adapts to whatever the server sustains. That
//! regime can never observe queueing delay — the very thing a latency
//! curve is about. This module drives the opposite regime: an **open
//! loop**, where request *arrival times* come from a seeded Poisson
//! process fixed before the run starts, independent of how the server is
//! doing.
//!
//! Two properties matter for honest percentiles:
//!
//! * **Deterministic schedules.** The arrival offsets and the operation
//!   mix are both drawn from a seeded [`rand::rngs::StdRng`] before the
//!   first byte is sent, so two runs at the same (seed, rate, count)
//!   offer the identical workload and differ only in what the server
//!   makes of it.
//! * **No coordinated omission.** Latency is measured from each request's
//!   *scheduled* send time, not the instant it actually left the socket
//!   ([`clic_obs::LatencyHistogram::record_scheduled`]). When the server
//!   (or the TCP window, which is the server's back-pressure reaching the
//!   generator) stalls the writer, the requests queued behind the stall
//!   are charged the stall too — exactly what a client arriving at the
//!   scheduled moment would have experienced. A generator that timestamps
//!   at actual send silently erases every queueing episode from its tail.
//!
//! The generator splits one TCP connection into a paced writer thread and
//! a decoding reader; `seq` numbers index the schedule, so responses may
//! complete out of order without confusing attribution.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use cache_sim::{ClientId, HintSetId, PageId};
use clic_obs::LatencyHistogram;
use clic_store::page_payload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::harness::LatencySummary;
use crate::protocol::ServerRequest;
use crate::wire;

/// An open-loop run: how fast, how much, and what shape of traffic.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Offered load in requests per second (the Poisson arrival rate).
    pub rate: f64,
    /// Total requests to schedule.
    pub requests: u64,
    /// Seed for both the arrival schedule and the operation mix.
    pub seed: u64,
    /// Number of distinct clients to attribute requests to (round-robin
    /// of the low bits of a per-request draw).
    pub clients: u16,
    /// Page universe: pages are drawn uniformly from `0..pages`.
    pub pages: u64,
    /// Distinct hint sets; each page's hint is `page % hint_sets`, so a
    /// page keeps a stable hint across the run (hints describe pages).
    pub hint_sets: u32,
    /// Fraction of requests that are writes, in `[0, 1]`.
    pub write_fraction: f64,
    /// `Some(page_size)` attaches deterministic page payloads to writes
    /// (for store-backed servers); `None` sends policy-only writes.
    pub payload: Option<usize>,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            rate: 10_000.0,
            requests: 10_000,
            seed: 42,
            clients: 4,
            pages: 1 << 16,
            hint_sets: 16,
            write_fraction: 0.25,
            payload: None,
        }
    }
}

/// What an open-loop run measured.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The configured Poisson arrival rate (requests/s).
    pub offered_rps: f64,
    /// Completions divided by wall-clock time (requests/s). Tracking
    /// `offered_rps` means the server kept up; falling below it means the
    /// offered load exceeded capacity and latency is mostly queueing.
    pub achieved_rps: f64,
    /// Requests written to the socket (falls short of the schedule when
    /// the connection died mid-run; the report then covers the partial
    /// run instead of being discarded).
    pub sent: u64,
    /// Successful responses received and decoded. Only these are recorded
    /// into the latency histogram.
    pub completed: u64,
    /// Error responses with a non-retryable code (`Io`, `Corrupt`,
    /// `Shutdown`, `Internal`): the data plane failed the operation.
    pub errored: u64,
    /// Error responses with the `Busy` code: the server shed the
    /// operation under load instead of queueing it.
    pub shed: u64,
    /// Wall-clock duration from first scheduled send to last response.
    pub elapsed: Duration,
    /// Coordinated-omission-safe latency percentiles, measured from each
    /// request's *scheduled* send time (microseconds).
    pub latency: LatencySummary,
}

/// Draws the Poisson arrival schedule: `requests` offsets in nanoseconds
/// from run start, strictly non-decreasing, with exponential
/// inter-arrival times of mean `1/rate`.
fn poisson_schedule(rate: f64, requests: u64, rng: &mut StdRng) -> Vec<u64> {
    assert!(rate > 0.0, "offered rate must be positive");
    let mut schedule = Vec::with_capacity(requests as usize);
    let mut at_ns = 0.0f64;
    for _ in 0..requests {
        // Inverse-CDF sampling; 1 - u avoids ln(0).
        let u: f64 = rng.gen();
        at_ns += -(1.0 - u).ln() / rate * 1e9;
        schedule.push(at_ns as u64);
    }
    schedule
}

/// Draws the operation mix for one run.
fn operations(config: &OpenLoopConfig, rng: &mut StdRng) -> Vec<ServerRequest> {
    let clients = config.clients.max(1);
    let hint_sets = config.hint_sets.max(1);
    (0..config.requests)
        .map(|_| {
            let page = PageId(rng.gen_range(0..config.pages.max(1)));
            let client = ClientId(rng.gen_range(0..clients));
            let hint = HintSetId((page.0 % u64::from(hint_sets)) as u32);
            if rng.gen_bool(config.write_fraction.clamp(0.0, 1.0)) {
                ServerRequest::Put {
                    client,
                    page,
                    hint,
                    write_hint: None,
                    data: config.payload.map(|size| page_payload(page, size)),
                }
            } else {
                ServerRequest::Get {
                    client,
                    page,
                    hint,
                    prefetch: false,
                }
            }
        })
        .collect()
}

/// Runs one open-loop experiment against the TCP front-end at `addr` and
/// returns the coordinated-omission-safe latency report.
///
/// The writer thread paces requests to the precomputed schedule (sleeping
/// until each scheduled instant, writing immediately when behind); the
/// calling thread decodes responses and records `completed - scheduled`
/// for each. The connection's write half is shut down after the last
/// request so the server observes EOF, finishes the in-flight tail, and
/// tears the connection down cleanly.
///
/// The generator degrades rather than aborts under faults: error
/// responses are tallied into [`OpenLoopReport::errored`] and
/// [`OpenLoopReport::shed`] without polluting the latency histogram, and
/// a connection that dies mid-run (reset, injected fault, early server
/// close) yields a *partial* report — `sent`/`completed` record how far
/// the run got. `Err` is reserved for failing to connect at all.
pub fn run_open_loop(addr: SocketAddr, config: &OpenLoopConfig) -> io::Result<OpenLoopReport> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schedule = Arc::new(poisson_schedule(config.rate, config.requests, &mut rng));
    let ops = operations(config, &mut rng);
    let total = ops.len() as u64;

    let mut reader = TcpStream::connect(addr)?;
    reader.set_nodelay(true)?;
    let mut writer = reader.try_clone()?;
    let start = Instant::now();

    let writer_schedule = Arc::clone(&schedule);
    let writer_thread = thread::spawn(move || -> u64 {
        let mut frame = Vec::new();
        let mut sent = 0u64;
        for (i, op) in ops.iter().enumerate() {
            let scheduled = Duration::from_nanos(writer_schedule[i]);
            let now = start.elapsed();
            if now < scheduled {
                thread::sleep(scheduled - now);
            }
            frame.clear();
            wire::encode_request(i as u64, op, &mut frame);
            // A dead socket (reset mid-run) ends the schedule early; the
            // run is reported as partial rather than thrown away.
            if writer.write_all(&frame).is_err() {
                break;
            }
            sent += 1;
        }
        let _ = writer.shutdown(Shutdown::Write);
        sent
    });

    let histogram = LatencyHistogram::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut completed = 0u64;
    let mut errored = 0u64;
    let mut shed = 0u64;
    'recv: while completed + errored + shed < total {
        loop {
            let (consumed, payload) = match wire::take_frame(&buf) {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                // Framing desynchronized (e.g. the connection died inside
                // a frame): nothing further is decodable.
                Err(_) => break 'recv,
            };
            let Ok((seq, response)) = wire::decode_response(payload) else {
                break 'recv;
            };
            buf.drain(..consumed);
            let Some(&scheduled_ns) = schedule.get(seq as usize) else {
                break 'recv; // corrupt seq; stop attributing latencies
            };
            match response.error_code() {
                Some(code) if code.is_retryable() => shed += 1,
                Some(_) => errored += 1,
                None => {
                    let scheduled_us = scheduled_ns / 1_000;
                    let now_us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    histogram.record_scheduled(scheduled_us, now_us);
                    completed += 1;
                }
            }
        }
        if completed + errored + shed == total {
            break;
        }
        match reader.read(&mut chunk) {
            Ok(0) => break, // server closed early; report the partial run
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break, // reset mid-run; report the partial run
        }
    }
    let elapsed = start.elapsed();
    let sent = writer_thread
        .join()
        .map_err(|_| io::Error::other("open-loop writer panicked"))?;

    Ok(OpenLoopReport {
        offered_rps: config.rate,
        achieved_rps: completed as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
        sent,
        completed,
        errored,
        shed,
        elapsed,
        latency: LatencySummary::from_histogram(&histogram.snapshot()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_match_the_rate() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let sa = poisson_schedule(50_000.0, 20_000, &mut a);
        let sb = poisson_schedule(50_000.0, 20_000, &mut b);
        assert_eq!(sa, sb);
        assert!(
            sa.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be sorted"
        );
        // 20k arrivals at 50k/s should span ~0.4 s; allow generous slack
        // (the variance of a Poisson horizon is small at this n).
        let horizon_s = *sa.last().unwrap() as f64 / 1e9;
        assert!(
            (0.3..0.5).contains(&horizon_s),
            "horizon {horizon_s} s is off the expected ~0.4 s"
        );
    }

    #[test]
    fn operation_mix_is_deterministic_and_respects_bounds() {
        let config = OpenLoopConfig {
            requests: 5_000,
            pages: 100,
            clients: 3,
            hint_sets: 7,
            write_fraction: 0.5,
            ..OpenLoopConfig::default()
        };
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let ops_a = operations(&config, &mut a);
        let ops_b = operations(&config, &mut b);
        assert_eq!(ops_a, ops_b);
        let writes = ops_a
            .iter()
            .filter(|op| matches!(op, ServerRequest::Put { .. }))
            .count();
        assert!((1_500..3_500).contains(&writes), "writes {writes}");
        for op in &ops_a {
            let page = op.page().expect("only data ops are generated");
            assert!(page.0 < 100);
        }
    }
}
