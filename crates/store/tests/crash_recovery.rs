//! Crash-recovery properties of the disk-backed page store, per
//! [`Durability`] level.
//!
//! Two crash models are exercised:
//!
//! * **Process crash** — the store is dropped without a checkpoint. Every
//!   acknowledged (`stage`-returned) write is in the WAL file and must be
//!   replayed on reopen, at *every* durability level: the OS page cache
//!   survives the process.
//! * **Kernel crash** — on top of the process crash, bytes the OS had
//!   buffered but not synced are lost. This is modeled by truncating the
//!   WAL to [`PageStore::wal_synced_len`], the prefix the store knows
//!   reached the device. [`Durability::Strict`] must lose nothing;
//!   [`Durability::GroupCommit`] must lose at most the current (unsynced)
//!   group and recover exactly the records up to the last group-commit
//!   boundary; [`Durability::Buffered`] makes no promise.
//!
//! Torn frames (bytes corrupted on disk after the fact) must be detected by
//! CRC verification, never silently returned, and a torn WAL tail must not
//! take the earlier acknowledged writes down with it.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;

use cache_sim::PageId;
use clic_store::{
    Durability, FaultInjector, FaultPoint, PageStore, ReadSource, StoreConfig, INJECTED_FAULT,
};

const PAGE_SIZE: usize = 64;

/// A fresh scratch directory per test case (proptest runs many cases per
/// process, so the pid alone is not unique).
fn scratch_dir(label: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "clic-store-crash-{}-{}-{}",
        label,
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn payload(tag: u8) -> Vec<u8> {
    vec![tag; PAGE_SIZE]
}

/// Byte offset of `page`'s data inside the backing file, found by scanning
/// slot metadata — the sharded allocation bitmap spreads pages across
/// stripes, so slot order is not stage order.
fn slot_data_offset(pages_file: &Path, page: u64, page_size: usize) -> u64 {
    const HEADER: usize = 16;
    const META: usize = 16;
    let bytes = std::fs::read(pages_file).expect("read backing file");
    let slot_len = META + page_size;
    let mut offset = HEADER;
    while offset + slot_len <= bytes.len() {
        let meta = &bytes[offset..offset + META];
        let id = u64::from_le_bytes(meta[..8].try_into().unwrap());
        let flags = u32::from_le_bytes(meta[12..16].try_into().unwrap());
        if flags & 1 != 0 && id == page {
            return (offset + META) as u64;
        }
        offset += slot_len;
    }
    panic!("page {page} not found in the backing file");
}

/// Truncates the WAL file to `len` bytes — the kernel-crash model: bytes
/// beyond the synced prefix never reached the device.
fn truncate_wal(dir: &Path, len: u64) {
    let wal = dir.join("store.wal");
    let file = OpenOptions::new().write(true).open(&wal).expect("open wal");
    file.set_len(len).expect("truncate wal");
}

/// Stages every (page, tag) write through a store whose arena holds only
/// `frames` pages, evicting the oldest-staged resident page whenever the
/// arena is full — the moves a replacement policy would make. Returns the
/// expected final contents (last write per page wins).
fn stage_all(store: &PageStore, ops: &[(u64, u8)], frames: usize) -> HashMap<u64, u8> {
    let mut expected = HashMap::new();
    let mut resident: Vec<u64> = Vec::new();
    for &(page, tag) in ops {
        if !store.contains_buffered(PageId(page)) && store.buffered_len() >= frames {
            let victim = resident.remove(0);
            store.evict(PageId(victim)).expect("evict flushes if dirty");
        }
        store
            .stage(PageId(page), &payload(tag))
            .expect("stage is acknowledged");
        resident.retain(|&p| p != page);
        resident.push(page);
        expected.insert(page, tag);
    }
    expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Drop without a checkpoint (a process crash) after an arbitrary write
    /// sequence: the WAL replay restores the last acknowledged value of
    /// every page, no matter how many overwrites or dirty evictions
    /// happened in between — at every durability level, since the OS page
    /// cache survives a process crash.
    #[test]
    fn acknowledged_writes_survive_a_process_crash(
        ops in vec((0u64..24, any::<u8>()), 1..120),
        frames in 4usize..12,
        durability_pick in 0usize..3,
    ) {
        let durability = [
            Durability::Buffered,
            Durability::group_commit(),
            Durability::Strict,
        ][durability_pick];
        let dir = scratch_dir("crash");
        let config = StoreConfig::new(&dir, frames)
            .with_page_size(PAGE_SIZE)
            .with_durability(durability);
        let expected = {
            let store = PageStore::open(config.clone()).expect("open");
            stage_all(&store, &ops, frames)
            // The store is dropped here without flush_all/checkpoint: any
            // frame still dirty is lost, only disk + WAL remain.
        };

        let store = PageStore::open(config).expect("reopen replays the WAL");
        prop_assert_eq!(store.recovered_writes(), ops.len() as u64);
        let mut buf = Vec::new();
        for (&page, &tag) in &expected {
            let source = store.read(PageId(page), &mut buf).expect("read back");
            prop_assert_ne!(source, ReadSource::Zero, "page {} must be stored", page);
            prop_assert_eq!(&buf, &payload(tag), "page {} content", page);
        }
        // A page never written reads as zeroes, explicitly flagged.
        let source = store.read(PageId(999), &mut buf).expect("zero read");
        prop_assert_eq!(source, ReadSource::Zero);
        prop_assert!(buf.iter().all(|&b| b == 0));
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A clean checkpoint before the drop leaves nothing for the WAL to
    /// replay, and the contents still read back exactly.
    #[test]
    fn checkpointed_writes_recover_without_the_wal(
        ops in vec((0u64..24, any::<u8>()), 1..120),
        frames in 4usize..12,
    ) {
        let dir = scratch_dir("clean");
        let config = StoreConfig::new(&dir, frames).with_page_size(PAGE_SIZE);
        let expected = {
            let store = PageStore::open(config.clone()).expect("open");
            let expected = stage_all(&store, &ops, frames);
            store.checkpoint().expect("checkpoint");
            expected
        };

        let store = PageStore::open(config).expect("reopen");
        prop_assert_eq!(store.recovered_writes(), 0);
        let mut buf = Vec::new();
        for (&page, &tag) in &expected {
            store.read(PageId(page), &mut buf).expect("read back");
            prop_assert_eq!(&buf, &payload(tag), "page {} content", page);
        }
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Kernel crash under group commit: the WAL is cut at an arbitrary
    /// point at or beyond the last group-commit sync (the synced prefix is
    /// device-durable; the tail beyond it may survive partially in any
    /// torn state). Recovery must replay exactly the complete records
    /// before the cut — the longest valid prefix — and in particular never
    /// fewer than the last group-commit boundary.
    #[test]
    fn group_commit_kernel_crash_recovers_the_longest_valid_prefix(
        ops in vec((0u64..16, any::<u8>()), 1..60),
        max_batch in 2usize..6,
        tail_keep_pct in 0u64..100,
    ) {
        let dir = scratch_dir("group-crash");
        let config = StoreConfig::new(&dir, 32)
            .with_page_size(PAGE_SIZE)
            .with_durability(Durability::GroupCommit {
                max_batch,
                max_wait: Duration::from_secs(3600),
            });
        let (synced_len, total_len) = {
            let store = PageStore::open(config.clone()).expect("open");
            // 32 frames over 16 pages: no evictions, every write lives
            // only in the WAL, so recovery is exactly WAL replay.
            stage_all(&store, &ops, 32);
            (store.wal_synced_len(), store.wal_len())
        };
        // Group commit syncs every max_batch appends; the synced prefix is
        // a whole number of groups.
        let record_len = total_len / ops.len() as u64;
        let synced_records = (ops.len() / max_batch) * max_batch;
        prop_assert_eq!(synced_len, synced_records as u64 * record_len);

        // The crash keeps the synced prefix plus an arbitrary slice of the
        // OS-buffered tail (possibly tearing a record mid-write).
        let cut = synced_len + (total_len - synced_len) * tail_keep_pct / 100;
        truncate_wal(&dir, cut);

        let store = PageStore::open(config).expect("reopen");
        let survived = (cut / record_len) as usize;
        prop_assert_eq!(store.recovered_writes(), survived as u64);
        prop_assert!(survived >= synced_records, "synced groups never regress");
        let mut expected: HashMap<u64, u8> = HashMap::new();
        for &(page, tag) in &ops[..survived] {
            expected.insert(page, tag);
        }
        let mut buf = Vec::new();
        for &(page, _) in &ops {
            let source = store.read(PageId(page), &mut buf).expect("read");
            match expected.get(&page) {
                Some(&tag) => {
                    prop_assert_eq!(&buf, &payload(tag), "page {} content", page);
                }
                None => prop_assert_eq!(source, ReadSource::Zero),
            }
        }
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash recovery *under fire*: a seeded [`FaultInjector`] tears WAL
    /// appends and fails fsyncs mid-run at every durability level, and the
    /// kernel-crash cut (truncate to the synced prefix) must still recover
    /// a consistent prefix:
    ///
    /// * a torn or failed append does not advance the WAL, so the record
    ///   never counts — the next append overwrites the garbage;
    /// * a failed fsync leaves the record *appended but unsynced*; a later
    ///   successful sync (of a later write) makes it durable retroactively,
    ///   because fsync covers the whole file;
    /// * recovery replays exactly the records inside the synced prefix, in
    ///   order, and nothing after it.
    ///
    /// The acknowledged/failed split observed by the caller (via the
    /// injector's error labels) must exactly reconcile with the store's own
    /// `wal_len`/`wal_synced_len` accounting — any drift between the two
    /// is a lost or phantom write.
    #[test]
    fn injected_wal_faults_preserve_the_synced_prefix(
        ops in vec((0u64..16, any::<u8>()), 1..60),
        durability_pick in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let durability = [
            Durability::Buffered,
            Durability::group_commit(),
            Durability::Strict,
        ][durability_pick];
        let dir = scratch_dir("injected");
        let fault = FaultInjector::seeded(seed)
            .with_rate(FaultPoint::WalAppend, 0.2)
            .with_rate(FaultPoint::WalSync, 0.2);
        let config = StoreConfig::new(&dir, 32)
            .with_page_size(PAGE_SIZE)
            .with_durability(durability)
            .with_fault_injector(fault.clone());
        // 32 frames over 16 pages: no evictions, so recovery is exactly
        // WAL replay and the backing file stays out of the picture.
        let mut appended: Vec<(u64, u8)> = Vec::new();
        let (synced_len, total_len) = {
            let store = PageStore::open(config.clone()).expect("open");
            for &(page, tag) in &ops {
                match store.stage(PageId(page), &payload(tag)) {
                    Ok(()) => appended.push((page, tag)),
                    Err(err) => {
                        let msg = err.to_string();
                        prop_assert!(
                            msg.contains(INJECTED_FAULT),
                            "only injected faults may fail a stage: {msg}"
                        );
                        // A failed *sync* still appended the record; a
                        // failed or torn *append* did not advance the WAL.
                        if msg.contains(FaultPoint::WalSync.label()) {
                            appended.push((page, tag));
                        }
                    }
                }
            }
            (store.wal_synced_len(), store.wal_len())
        };
        if appended.is_empty() {
            prop_assert_eq!(total_len, 0);
            std::fs::remove_dir_all(&dir).ok();
            return Ok(());
        }
        // Records are uniform (fixed page size), so byte lengths reconcile
        // the caller's view with the WAL's own accounting.
        let record_len = total_len / appended.len() as u64;
        prop_assert_eq!(
            total_len,
            record_len * appended.len() as u64,
            "appended-record count must explain the WAL length exactly"
        );
        let synced_records = synced_len.checked_div(record_len).unwrap_or(0) as usize;
        prop_assert_eq!(synced_len, synced_records as u64 * record_len);

        truncate_wal(&dir, synced_len);
        let reopened = StoreConfig::new(&dir, 32)
            .with_page_size(PAGE_SIZE)
            .with_durability(durability);
        let store = PageStore::open(reopened).expect("recovery runs fault-free");
        prop_assert_eq!(store.recovered_writes(), synced_records as u64);
        let mut expected: HashMap<u64, u8> = HashMap::new();
        for &(page, tag) in &appended[..synced_records] {
            expected.insert(page, tag);
        }
        let mut buf = Vec::new();
        for page in 0u64..16 {
            let source = store.read(PageId(page), &mut buf).expect("read back");
            match expected.get(&page) {
                Some(&tag) => {
                    prop_assert_eq!(&buf, &payload(tag), "page {} content", page);
                }
                None => prop_assert_eq!(source, ReadSource::Zero),
            }
        }
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The same seed injects the same fault schedule: two identical runs
    /// agree on every acknowledgement, every injector count, and the
    /// recovered contents — the property that makes a chaos failure
    /// replayable from its seed alone.
    #[test]
    fn fault_schedules_replay_deterministically(
        ops in vec((0u64..8, any::<u8>()), 1..40),
        seed in 0u64..1_000,
    ) {
        type RunOutcome = (Vec<bool>, Vec<(FaultPoint, u64, u64)>, u64);
        let mut outcomes: Vec<RunOutcome> = Vec::new();
        for run in 0..2 {
            let dir = scratch_dir(&format!("det-{run}"));
            let fault = FaultInjector::seeded(seed)
                .with_rate(FaultPoint::WalAppend, 0.25)
                .with_rate(FaultPoint::WalSync, 0.25);
            let config = StoreConfig::new(&dir, 16)
                .with_page_size(PAGE_SIZE)
                .with_durability(Durability::Strict)
                .with_fault_injector(fault.clone());
            let store = PageStore::open(config).expect("open");
            let acks: Vec<bool> = ops
                .iter()
                .map(|&(page, tag)| store.stage(PageId(page), &payload(tag)).is_ok())
                .collect();
            let synced = store.wal_synced_len();
            outcomes.push((acks, fault.counts(), synced));
            drop(store);
            std::fs::remove_dir_all(&dir).ok();
        }
        prop_assert_eq!(&outcomes[0].0, &outcomes[1].0, "ack sequences diverged");
        prop_assert_eq!(&outcomes[0].1, &outcomes[1].1, "injector counts diverged");
        prop_assert_eq!(outcomes[0].2, outcomes[1].2, "synced prefixes diverged");
    }

    /// Strict durability: every acknowledged write is synced before `stage`
    /// returns, so even the kernel-crash cut (truncate to the synced
    /// prefix) loses nothing.
    #[test]
    fn strict_never_loses_an_acknowledged_write(
        ops in vec((0u64..16, any::<u8>()), 1..40),
    ) {
        let dir = scratch_dir("strict-crash");
        let config = StoreConfig::new(&dir, 32)
            .with_page_size(PAGE_SIZE)
            .with_durability(Durability::Strict);
        let expected = {
            let store = PageStore::open(config.clone()).expect("open");
            let expected = stage_all(&store, &ops, 32);
            prop_assert_eq!(
                store.wal_synced_len(),
                store.wal_len(),
                "strict leaves no unsynced tail"
            );
            truncate_wal(&dir, store.wal_synced_len());
            expected
        };

        let store = PageStore::open(config).expect("reopen");
        prop_assert_eq!(store.recovered_writes(), ops.len() as u64);
        let mut buf = Vec::new();
        for (&page, &tag) in &expected {
            store.read(PageId(page), &mut buf).expect("read back");
            prop_assert_eq!(&buf, &payload(tag), "page {} content", page);
        }
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Buffered durability promises nothing across a kernel crash: with no sync
/// ever issued, the synced prefix is empty and recovery finds no records.
/// (The process-crash property above shows the same log recovers fully when
/// the OS cache survives — the gap between the two is exactly what the
/// stronger levels buy.)
#[test]
fn buffered_kernel_crash_may_lose_everything() {
    let dir = scratch_dir("buffered-crash");
    let config = StoreConfig::new(&dir, 8).with_page_size(PAGE_SIZE);
    {
        let store = PageStore::open(config.clone()).expect("open");
        for tag in 0..5u8 {
            store
                .stage(PageId(u64::from(tag)), &payload(tag))
                .expect("stage");
        }
        assert_eq!(store.wal_synced_len(), 0, "buffered never syncs inline");
        truncate_wal(&dir, 0);
    }
    let store = PageStore::open(config).expect("reopen");
    assert_eq!(store.recovered_writes(), 0);
    let mut buf = Vec::new();
    assert_eq!(
        store.read(PageId(0), &mut buf).expect("read"),
        ReadSource::Zero
    );
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

/// Flipping a byte inside a checkpointed frame must surface as
/// `InvalidData` on the next read of that page — never as silently wrong
/// bytes — while other pages stay readable.
#[test]
fn torn_frame_is_detected_by_crc() {
    let dir = scratch_dir("torn-frame");
    let config = StoreConfig::new(&dir, 8).with_page_size(PAGE_SIZE);
    {
        let store = PageStore::open(config.clone()).expect("open");
        store.stage(PageId(1), &payload(0x11)).expect("stage");
        store.stage(PageId(2), &payload(0x22)).expect("stage");
        store.checkpoint().expect("checkpoint");
    }

    // Find page 1's slot by scanning the metadata (the sharded bitmap
    // decides slot placement, not stage order) and corrupt one byte in the
    // middle of its data.
    let pages = dir.join("store.pages");
    let offset = slot_data_offset(&pages, 1, PAGE_SIZE) + (PAGE_SIZE as u64) / 2;
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&pages)
        .expect("open backing file");
    file.seek(SeekFrom::Start(offset)).expect("seek");
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte).expect("read");
    byte[0] ^= 0xFF;
    file.seek(SeekFrom::Start(offset)).expect("seek");
    file.write_all(&byte).expect("corrupt");
    drop(file);

    let store = PageStore::open(config).expect("reopen");
    let mut buf = Vec::new();
    let err = store
        .read(PageId(1), &mut buf)
        .expect_err("torn frame must not read back");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    // The sibling page is untouched and still verifies.
    store.read(PageId(2), &mut buf).expect("clean page reads");
    assert_eq!(buf, payload(0x22));
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

/// A torn WAL tail (the crash hit mid-append) loses only the torn record:
/// recovery replays the longest valid prefix.
#[test]
fn torn_wal_tail_keeps_the_valid_prefix() {
    let dir = scratch_dir("torn-wal");
    let config = StoreConfig::new(&dir, 8).with_page_size(PAGE_SIZE);
    {
        let store = PageStore::open(config.clone()).expect("open");
        for tag in 0..5u8 {
            store
                .stage(PageId(u64::from(tag)), &payload(tag))
                .expect("stage");
        }
        // Crash without checkpoint: all five live only in the WAL.
    }

    // Chop the last few bytes off the WAL, tearing the final record.
    let wal = dir.join("store.wal");
    let len = std::fs::metadata(&wal).expect("wal exists").len();
    truncate_wal(&dir, len - 3);

    let store = PageStore::open(config).expect("reopen");
    assert_eq!(store.recovered_writes(), 4, "the torn record is dropped");
    let mut buf = Vec::new();
    for tag in 0..4u8 {
        store.read(PageId(u64::from(tag)), &mut buf).expect("read");
        assert_eq!(buf, payload(tag));
    }
    assert_eq!(
        store
            .read(PageId(4), &mut buf)
            .expect("torn page was never applied"),
        ReadSource::Zero
    );
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
