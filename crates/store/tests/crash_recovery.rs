//! Crash-recovery properties of the disk-backed page store.
//!
//! The contract under test: once `stage` returns, the write is
//! *acknowledged* — it is in the WAL and must survive a crash (dropping the
//! store without a checkpoint), whatever mix of overwrites, evictions, and
//! inline flushes preceded it. Torn frames (bytes corrupted on disk after
//! the fact) must be detected by CRC verification, never silently returned,
//! and a torn WAL tail must not take the earlier acknowledged writes down
//! with it.

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::collection::vec;
use proptest::prelude::*;

use cache_sim::PageId;
use clic_store::{PageStore, ReadSource, StoreConfig};

const PAGE_SIZE: usize = 64;

/// A fresh scratch directory per test case (proptest runs many cases per
/// process, so the pid alone is not unique).
fn scratch_dir(label: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "clic-store-crash-{}-{}-{}",
        label,
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn payload(tag: u8) -> Vec<u8> {
    vec![tag; PAGE_SIZE]
}

/// Stages every (page, tag) write through a store whose arena holds only
/// `frames` pages, evicting the oldest-staged resident page whenever the
/// arena is full — the moves a replacement policy would make. Returns the
/// expected final contents (last write per page wins).
fn stage_all(store: &PageStore, ops: &[(u64, u8)], frames: usize) -> HashMap<u64, u8> {
    let mut expected = HashMap::new();
    let mut resident: Vec<u64> = Vec::new();
    for &(page, tag) in ops {
        if !store.contains_buffered(PageId(page)) && store.buffered_len() >= frames {
            let victim = resident.remove(0);
            store.evict(PageId(victim)).expect("evict flushes if dirty");
        }
        store
            .stage(PageId(page), &payload(tag))
            .expect("stage is acknowledged");
        resident.retain(|&p| p != page);
        resident.push(page);
        expected.insert(page, tag);
    }
    expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Drop without a checkpoint (a crash) after an arbitrary write
    /// sequence: the WAL replay restores the last acknowledged value of
    /// every page, no matter how many overwrites or dirty evictions
    /// happened in between.
    #[test]
    fn acknowledged_writes_survive_a_crash(
        ops in vec((0u64..24, any::<u8>()), 1..120),
        frames in 4usize..12,
    ) {
        let dir = scratch_dir("crash");
        let config = StoreConfig::new(&dir, frames).with_page_size(PAGE_SIZE);
        let expected = {
            let store = PageStore::open(config.clone()).expect("open");
            stage_all(&store, &ops, frames)
            // The store is dropped here without flush_all/checkpoint: any
            // frame still dirty is lost, only disk + WAL remain.
        };

        let store = PageStore::open(config).expect("reopen replays the WAL");
        prop_assert_eq!(store.recovered_writes(), ops.len() as u64);
        let mut buf = Vec::new();
        for (&page, &tag) in &expected {
            let source = store.read(PageId(page), &mut buf).expect("read back");
            prop_assert_ne!(source, ReadSource::Zero, "page {} must be stored", page);
            prop_assert_eq!(&buf, &payload(tag), "page {} content", page);
        }
        // A page never written reads as zeroes, explicitly flagged.
        let source = store.read(PageId(999), &mut buf).expect("zero read");
        prop_assert_eq!(source, ReadSource::Zero);
        prop_assert!(buf.iter().all(|&b| b == 0));
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A clean checkpoint before the drop leaves nothing for the WAL to
    /// replay, and the contents still read back exactly.
    #[test]
    fn checkpointed_writes_recover_without_the_wal(
        ops in vec((0u64..24, any::<u8>()), 1..120),
        frames in 4usize..12,
    ) {
        let dir = scratch_dir("clean");
        let config = StoreConfig::new(&dir, frames).with_page_size(PAGE_SIZE);
        let expected = {
            let store = PageStore::open(config.clone()).expect("open");
            let expected = stage_all(&store, &ops, frames);
            store.checkpoint().expect("checkpoint");
            expected
        };

        let store = PageStore::open(config).expect("reopen");
        prop_assert_eq!(store.recovered_writes(), 0);
        let mut buf = Vec::new();
        for (&page, &tag) in &expected {
            store.read(PageId(page), &mut buf).expect("read back");
            prop_assert_eq!(&buf, &payload(tag), "page {} content", page);
        }
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Flipping a byte inside a checkpointed frame must surface as
/// `InvalidData` on the next read of that page — never as silently wrong
/// bytes — while other pages stay readable.
#[test]
fn torn_frame_is_detected_by_crc() {
    let dir = scratch_dir("torn-frame");
    let config = StoreConfig::new(&dir, 8).with_page_size(PAGE_SIZE);
    {
        let store = PageStore::open(config.clone()).expect("open");
        store.stage(PageId(1), &payload(0x11)).expect("stage");
        store.stage(PageId(2), &payload(0x22)).expect("stage");
        store.checkpoint().expect("checkpoint");
    }

    // File layout: 16-byte header, then per slot 16 bytes of meta followed
    // by the page bytes; pages were allocated first-fit in stage order, so
    // page 1 owns slot 0. Corrupt one byte in the middle of its data.
    let pages = dir.join("store.pages");
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&pages)
        .expect("open backing file");
    let offset = 16 + 16 + (PAGE_SIZE as u64) / 2;
    file.seek(SeekFrom::Start(offset)).expect("seek");
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte).expect("read");
    byte[0] ^= 0xFF;
    file.seek(SeekFrom::Start(offset)).expect("seek");
    file.write_all(&byte).expect("corrupt");
    drop(file);

    let store = PageStore::open(config).expect("reopen");
    let mut buf = Vec::new();
    let err = store
        .read(PageId(1), &mut buf)
        .expect_err("torn frame must not read back");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    // The sibling page is untouched and still verifies.
    store.read(PageId(2), &mut buf).expect("clean page reads");
    assert_eq!(buf, payload(0x22));
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

/// A torn WAL tail (the crash hit mid-append) loses only the torn record:
/// recovery replays the longest valid prefix.
#[test]
fn torn_wal_tail_keeps_the_valid_prefix() {
    let dir = scratch_dir("torn-wal");
    let config = StoreConfig::new(&dir, 8).with_page_size(PAGE_SIZE);
    {
        let store = PageStore::open(config.clone()).expect("open");
        for tag in 0..5u8 {
            store
                .stage(PageId(u64::from(tag)), &payload(tag))
                .expect("stage");
        }
        // Crash without checkpoint: all five live only in the WAL.
    }

    // Chop the last few bytes off the WAL, tearing the final record.
    let wal = dir.join("store.wal");
    let len = std::fs::metadata(&wal).expect("wal exists").len();
    let file = OpenOptions::new().write(true).open(&wal).expect("open wal");
    file.set_len(len - 3).expect("tear the tail");
    drop(file);

    let store = PageStore::open(config).expect("reopen");
    assert_eq!(store.recovered_writes(), 4, "the torn record is dropped");
    let mut buf = Vec::new();
    for tag in 0..4u8 {
        store.read(PageId(u64::from(tag)), &mut buf).expect("read");
        assert_eq!(buf, payload(tag));
    }
    assert_eq!(
        store
            .read(PageId(4), &mut buf)
            .expect("torn page was never applied"),
        ReadSource::Zero
    );
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
