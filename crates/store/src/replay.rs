//! Storage-coupled trace replay: runs a replacement policy over a trace while
//! moving *real bytes* through a [`PageStore`] — the data-plane analogue of
//! `cache_sim::simulate`.
//!
//! The policy stays the source of truth for cache contents: the driver
//! mirrors every admission into a buffer frame, every policy eviction into
//! [`PageStore::evict`] (forcing dirty write-back), and every bypass around
//! the buffer. On top of the usual hit/miss statistics it therefore measures
//! what the paper's Section 6 argues actually matters — disk reads — and
//! verifies end-to-end that every byte read back is the byte that was
//! written.
//!
//! [`replay_storage_partitioned`] is the sharded-server shape of the same
//! replay: the trace is split by page hash into partitions, each replayed
//! against its *own* policy instance and its own [`PageStore`] (per-shard
//! subdirectories via [`StoreConfig::for_shard`]), then merged in partition
//! order. Like `simulate_partitioned_parallel` it is **bit-identical**
//! regardless of how many worker threads replay the partitions, which is
//! what lets the bench harness sweep shard counts under `--jobs` without
//! losing determinism. Durability is a [`StoreConfig`] knob
//! ([`StoreConfig::with_durability`]), so both replays are parameterized
//! over it for free.

use std::collections::BTreeMap;
use std::io;

use cache_sim::{
    record_outcome, CachePolicy, CacheStats, ClientId, FastHashSet, IoStats, PageId, PolicyFactory,
    Request, SimulationResult, ThreadPool, Trace, REPLAY_CHUNK,
};
use clic_obs::HistogramSnapshot;

use crate::store::{PageStore, ReadSource, StoreConfig};

/// Histogram name under which the replay records per-chunk service
/// latencies (microseconds per [`cache_sim::REPLAY_CHUNK`] requests) into
/// the store's [`clic_obs::Recorder`], when one is enabled.
pub const REPLAY_CHUNK_HISTOGRAM: &str = "store.replay_chunk_us";

/// Deterministic page payload: the first 8 bytes are the page id
/// (little-endian) — the *stamp* the replay verifies on every read of a
/// written page — and the rest is a fixed byte pattern derived from the id,
/// so torn or misdirected I/O shows up as a content mismatch rather than a
/// silent wrong answer.
pub fn page_payload(page: PageId, page_size: usize) -> Vec<u8> {
    let mut data = vec![0u8; page_size];
    let id = page.0.to_le_bytes();
    let n = id.len().min(page_size);
    data[..n].copy_from_slice(&id[..n]);
    for (i, byte) in data.iter_mut().enumerate().skip(n) {
        *byte = (page.0 as u8).wrapping_mul(31).wrapping_add(i as u8);
    }
    data
}

/// The outcome of [`replay_storage`]: the usual policy-level statistics plus
/// the byte-level I/O counters the store accumulated.
#[derive(Debug, Clone)]
pub struct StorageReplayReport {
    /// Hit/miss/eviction statistics, identical in meaning to
    /// `cache_sim::simulate`'s result.
    pub result: SimulationResult,
    /// The store's byte-level counters at the end of the replay (the store
    /// should be freshly opened, so these cover exactly this replay).
    pub io: IoStats,
    /// Per-chunk replay latencies (microseconds per
    /// [`cache_sim::REPLAY_CHUNK`] requests, final partial chunk included),
    /// recorded when the store was opened with an enabled
    /// [`clic_obs::Recorder`] ([`crate::StoreConfig::with_recorder`]).
    /// Empty when the recorder is disabled. The snapshot covers everything
    /// the recorder's [`REPLAY_CHUNK_HISTOGRAM`] accumulated, so use a
    /// fresh recorder per replay for per-replay numbers.
    pub latency: HistogramSnapshot,
}

impl StorageReplayReport {
    /// Disk-tier reads per request — the cost metric of the paper's Figure
    /// 11 discussion, here measured against a real disk file rather than
    /// inferred from miss counts.
    pub fn disk_reads_per_request(&self) -> f64 {
        let requests = self.result.stats.requests();
        if requests == 0 {
            0.0
        } else {
            self.io.disk_reads as f64 / requests as f64
        }
    }
}

fn unsupported_policy(name: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::Unsupported,
        format!(
            "policy {name} does not report eviction identities; \
             it cannot drive a real data plane"
        ),
    )
}

/// The shared per-request loop of both replays: drives `requests` (with
/// their global sequence numbers) through `policy` and `store`, verifying
/// read-back content. The caller has already enabled eviction recording.
fn replay_requests(
    policy: &mut dyn CachePolicy,
    store: &PageStore,
    requests: impl Iterator<Item = (u64, Request)>,
) -> io::Result<(CacheStats, BTreeMap<ClientId, CacheStats>)> {
    let page_size = store.page_size();
    let mut stats = CacheStats::new();
    let mut per_client = BTreeMap::new();
    let mut evicted: Vec<PageId> = Vec::new();
    let mut buf: Vec<u8> = Vec::with_capacity(page_size);
    let mut written: FastHashSet<PageId> = FastHashSet::default();
    // Per-chunk service latency, recorded at REPLAY_CHUNK granularity so an
    // enabled recorder costs two clock reads per 256 requests, not per
    // request. All three handles are `None` when the recorder is disabled.
    let recorder = store.recorder();
    let chunk_hist = recorder.histogram(crate::replay::REPLAY_CHUNK_HISTOGRAM);
    let mut chunk_len = 0usize;
    let mut chunk_start_ns = recorder.clock().map(|clock| clock.now_nanos());
    for (seq, req) in requests {
        let outcome = policy.access(&req, seq);
        // Free the victims' frames before touching the new page, flushing
        // dirty ones — eviction order is write-back order.
        policy.drain_evictions(&mut evicted);
        for victim in evicted.drain(..) {
            store.evict(victim)?;
        }
        if req.is_read() {
            let source = store.read(req.page, &mut buf)?;
            debug_assert_eq!(
                outcome.hit,
                source == ReadSource::Buffer,
                "policy hit/miss and buffer residency disagree for {}",
                req.page
            );
            if written.contains(&req.page) && buf != page_payload(req.page, page_size) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "read of {} returned bytes that were never written",
                        req.page
                    ),
                ));
            }
            if !outcome.hit && !outcome.bypassed {
                store.admit(req.page, &buf)?;
            }
        } else {
            let data = page_payload(req.page, page_size);
            if outcome.bypassed {
                store.write_through(req.page, &data)?;
            } else {
                store.stage(req.page, &data)?;
            }
            written.insert(req.page);
        }
        record_outcome(&mut stats, &mut per_client, &req, outcome);
        chunk_len += 1;
        if chunk_len == REPLAY_CHUNK {
            if let (Some(hist), Some(start_ns), Some(clock)) =
                (chunk_hist.as_deref(), chunk_start_ns, recorder.clock())
            {
                let end_ns = clock.now_nanos();
                hist.record(end_ns.saturating_sub(start_ns) / 1_000);
                chunk_start_ns = Some(end_ns);
            }
            chunk_len = 0;
        }
    }
    if chunk_len > 0 {
        if let (Some(hist), Some(start_ns), Some(clock)) =
            (chunk_hist.as_deref(), chunk_start_ns, recorder.clock())
        {
            hist.record(clock.now_nanos().saturating_sub(start_ns) / 1_000);
        }
    }
    Ok((stats, per_client))
}

/// Replays `trace` through `policy`, mirroring its admission/eviction
/// decisions onto `store`:
///
/// * a **read** fetches the page's bytes (buffer frame or disk tier) and, if
///   the policy admitted the miss, installs them as a clean frame;
/// * a **write** stages the page's deterministic [`page_payload`] write-back
///   through the WAL when admitted (or resident), and writes it straight
///   through to disk when the policy bypassed it;
/// * every page the policy **evicts** is evicted from the store first, so a
///   dirty victim is flushed before its frame is reused.
///
/// Reads of previously written pages are verified byte-for-byte against
/// [`page_payload`]; a mismatch is an `InvalidData` error.
///
/// Fails with `Unsupported` if the policy does not implement eviction
/// identity reporting (`CachePolicy::record_evictions`).
pub fn replay_storage(
    policy: &mut dyn CachePolicy,
    store: &PageStore,
    trace: &Trace,
) -> io::Result<StorageReplayReport> {
    if !policy.record_evictions(true) {
        return Err(unsupported_policy(&policy.name()));
    }
    let requests = trace
        .requests
        .iter()
        .enumerate()
        .map(|(seq, req)| (seq as u64, *req));
    let (stats, per_client) = replay_requests(policy, store, requests)?;
    policy.record_evictions(false);
    Ok(StorageReplayReport {
        result: SimulationResult {
            policy: policy.name(),
            capacity: policy.capacity(),
            stats,
            per_client,
        },
        io: store.io_stats(),
        latency: replay_latency_snapshot(store.recorder()),
    })
}

/// Reads the [`REPLAY_CHUNK_HISTOGRAM`] snapshot out of `recorder`, or an
/// empty snapshot when the recorder is disabled.
fn replay_latency_snapshot(recorder: &clic_obs::Recorder) -> HistogramSnapshot {
    recorder
        .histogram(REPLAY_CHUNK_HISTOGRAM)
        .map(|hist| hist.snapshot())
        .unwrap_or_default()
}

/// [`replay_storage`] in the sharded-server shape: the trace is split by
/// page hash into `partitions`, each partition gets its own policy instance
/// (capacity split evenly, remainder to the low partitions) and its own
/// freshly opened [`PageStore`] under `store_config.for_shard(i,
/// partitions)`, and the partitions replay concurrently on `pool`'s
/// workers. Requests keep their global sequence numbers, like shards of a
/// server drawing from one global sequencer.
///
/// Partitions are disjoint by construction and merged in partition order,
/// so the result — policy statistics *and* I/O counters — is
/// **bit-identical** to a serial replay and independent of the pool's job
/// count.
///
/// # Panics
///
/// Panics if `partitions` is zero or exceeds `capacity`.
pub fn replay_storage_partitioned(
    pool: &ThreadPool,
    factory: &(dyn PolicyFactory + Sync),
    trace: &Trace,
    capacity: usize,
    partitions: usize,
    store_config: &StoreConfig,
) -> io::Result<StorageReplayReport> {
    assert!(partitions > 0, "at least one partition is required");
    assert!(
        capacity >= partitions,
        "capacity ({capacity}) must be at least one page per partition ({partitions})"
    );
    let mut split: Vec<Vec<(u64, Request)>> = vec![Vec::new(); partitions];
    for (seq, req) in trace.requests.iter().enumerate() {
        split[cache_sim::page_partition(req.page, partitions)].push((seq as u64, *req));
    }
    let base = capacity / partitions;
    let remainder = capacity % partitions;
    let indexed: Vec<(usize, Vec<(u64, Request)>)> = split.into_iter().enumerate().collect();
    let partials = pool.par_map(&indexed, |_, (index, requests)| {
        let partition_capacity = base + usize::from(*index < remainder);
        let mut policy = factory.build(partition_capacity);
        if !policy.record_evictions(true) {
            return Err(unsupported_policy(&policy.name()));
        }
        let mut config = store_config.for_shard(*index, partitions);
        config.frames = config.frames.max(partition_capacity).max(1);
        let store = PageStore::open(config)?;
        let (stats, per_client) =
            replay_requests(policy.as_mut(), &store, requests.iter().copied())?;
        Ok(SimulationResult {
            policy: policy.name(),
            capacity: partition_capacity,
            stats,
            per_client,
        })
        .map(|result| (result, store.io_stats()))
    });
    let mut result = SimulationResult {
        policy: format!("Partitioned<{}x{partitions}>", factory.name()),
        capacity,
        ..SimulationResult::default()
    };
    let mut io = IoStats::new();
    for partial in partials {
        let (partial_result, partial_io) = partial?;
        result.merge_from(&partial_result);
        io += partial_io;
    }
    // Every shard store cloned the same recorder handle out of
    // `store_config`, so one snapshot covers all partitions.
    let latency = replay_latency_snapshot(&store_config.recorder);
    Ok(StorageReplayReport {
        result,
        io,
        latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use cache_sim::policies::Lru;
    use cache_sim::{simulate, simulate_partitioned, AccessKind, BoxedPolicy, TraceBuilder};

    fn mixed_trace(pages: u64, rounds: usize) -> Trace {
        let mut b = TraceBuilder::new().with_name("mixed");
        let c = b.add_client("t", &[("x", 1)]);
        let h = b.intern_hints(c, &[0]);
        for round in 0..rounds {
            for p in 0..pages {
                let kind = if (p + round as u64).is_multiple_of(3) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                b.push(c, p, kind, None, h);
            }
        }
        b.build()
    }

    fn temp_store(tag: &str, frames: usize) -> (std::path::PathBuf, PageStore) {
        let dir =
            std::env::temp_dir().join(format!("clic-replay-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = PageStore::open(StoreConfig::new(&dir, frames).with_page_size(64)).unwrap();
        (dir, store)
    }

    #[test]
    fn replay_matches_pure_simulation_statistics() {
        let trace = mixed_trace(32, 4);
        let (dir, store) = temp_store("match", 8);
        let report = replay_storage(&mut Lru::new(8), &store, &trace).unwrap();
        let pure = simulate(&mut Lru::new(8), &trace);
        assert_eq!(
            report.result.stats, pure.stats,
            "data plane must not change policy behaviour"
        );
        assert_eq!(report.result.per_client, pure.per_client);
        // Every buffer miss on a read went to the disk tier.
        assert_eq!(report.io.disk_reads, report.io.buffer_misses);
        assert!(report.io.bytes_moved() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn buffer_residency_tracks_policy_cache_exactly() {
        let trace = mixed_trace(20, 3);
        let (dir, store) = temp_store("resident", 6);
        let mut lru = Lru::new(6);
        let _ = replay_storage(&mut lru, &store, &trace).unwrap();
        assert_eq!(store.buffered_len(), lru.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn written_bytes_survive_eviction_and_read_back() {
        // Cache of 2 over 10 pages: every written page is evicted (dirty →
        // flushed) and later read back from disk; the payload check inside
        // replay_storage verifies content on every such read.
        let trace = mixed_trace(10, 5);
        let (dir, store) = temp_store("writeback", 2);
        let report = replay_storage(&mut Lru::new(2), &store, &trace).unwrap();
        assert!(report.io.eviction_flushes > 0, "dirty evictions must flush");
        assert!(report.io.wal_records > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_records_chunk_latencies_only_when_recorder_enabled() {
        let trace = mixed_trace(32, 4); // 128 requests: one partial chunk
        let (dir, store) = temp_store("latency-off", 8);
        let report = replay_storage(&mut Lru::new(8), &store, &trace).unwrap();
        assert!(
            report.latency.is_empty(),
            "disabled recorder records nothing"
        );
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);

        let dir = std::env::temp_dir().join(format!(
            "clic-replay-test-{}-latency-on",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = clic_obs::Recorder::enabled();
        let config = StoreConfig::new(&dir, 8)
            .with_page_size(64)
            .with_recorder(recorder);
        let store = PageStore::open(config).unwrap();
        let report = replay_storage(&mut Lru::new(8), &store, &trace).unwrap();
        assert_eq!(
            report.latency.count(),
            1,
            "128 requests land in one final partial chunk"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_stamp_is_the_page_id() {
        let p = page_payload(PageId(0x0123_4567_89ab_cdef), 64);
        assert_eq!(&p[..8], &0x0123_4567_89ab_cdef_u64.to_le_bytes());
        assert_ne!(page_payload(PageId(1), 64), page_payload(PageId(2), 64));
        assert_eq!(page_payload(PageId(1), 64), page_payload(PageId(1), 64));
    }

    struct LruFactory;

    impl PolicyFactory for LruFactory {
        fn build(&self, capacity: usize) -> BoxedPolicy {
            Box::new(Lru::new(capacity))
        }

        fn name(&self) -> String {
            "LRU".to_string()
        }
    }

    #[test]
    fn partitioned_replay_is_job_count_invariant_and_matches_pure_partitioning() {
        let trace = mixed_trace(48, 4);
        let base = std::env::temp_dir().join(format!("clic-replay-part-{}", std::process::id()));
        let reports: Vec<StorageReplayReport> = [1usize, 4]
            .iter()
            .map(|&jobs| {
                let dir = base.join(format!("jobs-{jobs}"));
                let _ = std::fs::remove_dir_all(&dir);
                let pool = ThreadPool::new(jobs);
                let config = StoreConfig::new(&dir, 4).with_page_size(64);
                let report =
                    replay_storage_partitioned(&pool, &LruFactory, &trace, 12, 3, &config).unwrap();
                let _ = std::fs::remove_dir_all(&dir);
                report
            })
            .collect();
        assert_eq!(
            reports[0].result.stats, reports[1].result.stats,
            "policy statistics must not depend on the job count"
        );
        assert_eq!(reports[0].result.per_client, reports[1].result.per_client);
        assert_eq!(
            reports[0].io, reports[1].io,
            "I/O counters must not depend on the job count"
        );
        let pure = simulate_partitioned(&LruFactory, &trace, 12, 3);
        assert_eq!(reports[0].result.stats, pure.stats);
        assert_eq!(reports[0].result.per_client, pure.per_client);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn partitioned_replay_uses_per_shard_directories() {
        let trace = mixed_trace(16, 2);
        let dir =
            std::env::temp_dir().join(format!("clic-replay-shard-dirs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let pool = ThreadPool::new(2);
        let config = StoreConfig::new(&dir, 4).with_page_size(64);
        replay_storage_partitioned(&pool, &LruFactory, &trace, 8, 2, &config).unwrap();
        assert!(dir.join("shard-0").join("store.pages").exists());
        assert!(dir.join("shard-1").join("store.pages").exists());
        assert!(
            !dir.join("store.pages").exists(),
            "multi-shard replay must not write the base dir"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
