//! [`Wal`]: the optional write-ahead log that makes staged (write-back)
//! writes crash-consistent, with selectable [`Durability`] levels.
//!
//! # Record format
//!
//! The log is a flat sequence of length-prefixed records:
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][payload: len bytes]
//! payload = [kind: u8][page: u64 LE][page bytes]
//! ```
//!
//! The CRC covers the payload. The only record kind today is a full-page
//! write (`kind = 1`); the byte exists so future kinds (checkpoint markers,
//! partial-page deltas) stay backward-readable.
//!
//! # Durability contract
//!
//! [`Wal::append`] hands the record to the OS with an ordinary buffered
//! write — at that point the write is *acknowledged*: it survives a process
//! crash (the failure mode this crate models and the crash-recovery tests
//! exercise). What survives a *kernel* crash is governed by the log's
//! [`Durability`] level:
//!
//! * [`Durability::Buffered`] never syncs on the append path — acknowledged
//!   writes are only device-durable after an explicit checkpoint;
//! * [`Durability::Strict`] syncs after every append — one `fsync` per
//!   acknowledged write, the textbook cost of strict write-ahead logging;
//! * [`Durability::GroupCommit`] acknowledges immediately but syncs only
//!   when `max_batch` appends have accumulated or `max_wait` has elapsed
//!   since the last sync, so one `fsync` covers the whole pending group —
//!   bounded staleness at a fraction of `Strict`'s sync count.
//!
//! [`Wal::synced_len`] reports the prefix known device-durable, which the
//! durability-level crash tests use as the truncation point that models a
//! kernel crash losing OS-buffered log bytes.
//!
//! # Replay
//!
//! [`Wal::open`] parses the longest valid prefix: it stops at the first
//! record that is short (a crash truncated the tail mid-append) or whose CRC
//! disagrees (a torn in-place write), returning every record before it.
//! After the recovered pages are re-applied to the data file and synced, the
//! caller truncates the log ([`Wal::truncate`]); the same happens at every
//! checkpoint, which is what keeps the log short.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::{Duration, Instant};

use cache_sim::PageId;

use crate::crc::crc32;
use crate::fault::{FaultInjector, FaultPoint, InjectedFault};

/// Record kind: a full-page write.
const KIND_PAGE_WRITE: u8 = 1;
/// Record kind: a page delete (the page is freed in the backing file).
const KIND_PAGE_DELETE: u8 = 2;
/// Bytes of record framing (length + CRC) before the payload.
const FRAME_LEN: usize = 8;
/// Bytes of payload header (kind + page id) before the page bytes.
const PAYLOAD_HEADER: usize = 9;

/// When (relative to an append) the log is flushed to the device. See the
/// module docs for the exact contract of each level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Acknowledge on the OS buffered write; sync only at checkpoints.
    #[default]
    Buffered,
    /// Acknowledge immediately; sync once `max_batch` appends are pending
    /// or `max_wait` has elapsed since the last sync, whichever comes
    /// first. One sync covers the whole pending group.
    GroupCommit {
        /// Pending appends that force a sync.
        max_batch: usize,
        /// Maximum staleness of an acknowledged append before the next
        /// append forces a sync.
        max_wait: Duration,
    },
    /// Sync after every append.
    Strict,
}

impl Durability {
    /// A group-commit level with the defaults the bench harness sweeps:
    /// sync every 8 appends or 2 ms, whichever comes first.
    pub fn group_commit() -> Durability {
        Durability::GroupCommit {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
        }
    }

    /// Short stable name for reports (`buffered`, `group-commit`,
    /// `strict`).
    pub fn label(&self) -> &'static str {
        match self {
            Durability::Buffered => "buffered",
            Durability::GroupCommit { .. } => "group-commit",
            Durability::Strict => "strict",
        }
    }
}

/// One recovered log record: an acknowledged operation that may not have
/// reached the backing file before the crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The page the record operates on.
    pub page: PageId,
    /// What the record does to that page on replay.
    pub op: WalOp,
}

/// The operation a recovered [`WalRecord`] replays, in log order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A full-page write of these bytes.
    Write(Vec<u8>),
    /// A page delete: the page is freed in the backing file, so a deleted
    /// page cannot be resurrected by a crash between the acknowledged
    /// delete and the next checkpoint.
    Delete,
}

/// What one [`Wal::append`] did, so the caller can account for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Log bytes appended (framing included).
    pub bytes: u64,
    /// Whether this append triggered an `fsync`.
    pub synced: bool,
    /// Whether that sync covered more than one pending append (a group
    /// commit in the narrow sense).
    pub group_commit: bool,
    /// Appends covered by the sync (this one included); 0 when the append
    /// did not sync. This is the group-commit batch size the trace spans
    /// report.
    pub batch: u64,
}

/// An append-only write-ahead log over one file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    durability: Durability,
    /// Bytes of valid log (append position).
    len: u64,
    records: u64,
    /// Bytes known flushed to the device.
    synced_len: u64,
    /// Appends acknowledged since the last sync.
    pending: usize,
    last_sync: Instant,
    fault: FaultInjector,
}

impl Wal {
    /// Opens (or creates) the log at `path` with the given [`Durability`]
    /// and replays it: returns the records of the longest valid prefix,
    /// oldest first. A torn tail — short or CRC-corrupt final record, the
    /// signature of a crash mid-append — is silently discarded (subsequent
    /// appends overwrite it).
    pub fn open(path: &Path, durability: Durability) -> io::Result<(Wal, Vec<WalRecord>)> {
        Wal::open_with(path, durability, FaultInjector::disabled())
    }

    /// [`Wal::open`] with a [`FaultInjector`] armed at the
    /// [`FaultPoint::WalAppend`] and [`FaultPoint::WalSync`] points.
    // invariant: the three `try_into().unwrap()`s below convert slices
    // whose length the replay loop has already checked (>= FRAME_LEN /
    // >= PAYLOAD_HEADER) into fixed-size arrays — they cannot fail.
    #[cfg_attr(not(test), allow(clippy::unwrap_used))]
    pub fn open_with(
        path: &Path,
        durability: Durability,
        fault: FaultInjector,
    ) -> io::Result<(Wal, Vec<WalRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;
        let mut records = Vec::new();
        let mut offset = 0usize;
        while bytes.len() - offset >= FRAME_LEN {
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
            let payload_start = offset + FRAME_LEN;
            if len < PAYLOAD_HEADER || bytes.len() - payload_start < len {
                break; // short record: torn tail
            }
            let payload = &bytes[payload_start..payload_start + len];
            if crc32(payload) != crc {
                break; // corrupt record: torn tail
            }
            let page = PageId(u64::from_le_bytes(payload[1..9].try_into().unwrap()));
            match payload[0] {
                KIND_PAGE_WRITE => records.push(WalRecord {
                    page,
                    op: WalOp::Write(payload[PAYLOAD_HEADER..].to_vec()),
                }),
                KIND_PAGE_DELETE => records.push(WalRecord {
                    page,
                    op: WalOp::Delete,
                }),
                _ => {} // unknown kind: skip, stay backward-readable
            }
            offset = payload_start + len;
        }
        let wal = Wal {
            file,
            durability,
            len: offset as u64,
            records: records.len() as u64,
            synced_len: 0,
            pending: 0,
            last_sync: Instant::now(),
            fault,
        };
        Ok((wal, records))
    }

    /// Appends a full-page write record; the write is acknowledged once
    /// this returns, and the log's [`Durability`] level decides whether the
    /// append also synced (see [`AppendOutcome`]).
    pub fn append(&mut self, page: PageId, data: &[u8]) -> io::Result<AppendOutcome> {
        self.append_record(KIND_PAGE_WRITE, page, data)
    }

    /// Appends a page-delete record; same acknowledgement and durability
    /// contract as [`Wal::append`]. On replay the page is freed in the
    /// backing file instead of written.
    pub fn append_delete(&mut self, page: PageId) -> io::Result<AppendOutcome> {
        self.append_record(KIND_PAGE_DELETE, page, &[])
    }

    fn append_record(&mut self, kind: u8, page: PageId, data: &[u8]) -> io::Result<AppendOutcome> {
        let len = PAYLOAD_HEADER + data.len();
        let mut record = Vec::with_capacity(FRAME_LEN + len);
        record.extend_from_slice(&(len as u32).to_le_bytes());
        record.extend_from_slice(&[0u8; 4]); // CRC patched below
        record.push(kind);
        record.extend_from_slice(&page.0.to_le_bytes());
        record.extend_from_slice(data);
        let crc = crc32(&record[FRAME_LEN..]);
        record[4..8].copy_from_slice(&crc.to_le_bytes());
        self.file.seek(SeekFrom::Start(self.len))?;
        match self.fault.decide(FaultPoint::WalAppend, record.len()) {
            InjectedFault::None => self.file.write_all(&record)?,
            InjectedFault::Torn(n) => {
                // A torn append persists a garbage prefix but never
                // advances `len`: the next append overwrites it, and if
                // the process dies first, replay's longest-valid-prefix
                // rule discards it — a crash mid-append in miniature.
                self.file.write_all(&record[..n])?;
                return Err(FaultInjector::error(FaultPoint::WalAppend));
            }
            _ => return Err(FaultInjector::error(FaultPoint::WalAppend)),
        }
        self.len += record.len() as u64;
        self.records += 1;
        self.pending += 1;
        let sync_now = match self.durability {
            Durability::Buffered => false,
            Durability::Strict => true,
            Durability::GroupCommit {
                max_batch,
                max_wait,
            } => self.pending >= max_batch || self.last_sync.elapsed() >= max_wait,
        };
        let mut outcome = AppendOutcome {
            bytes: record.len() as u64,
            synced: false,
            group_commit: false,
            batch: 0,
        };
        if sync_now {
            outcome.group_commit = self.pending > 1;
            outcome.batch = self.pending as u64;
            self.sync()?;
            outcome.synced = true;
        }
        Ok(outcome)
    }

    /// Flushes the log to the device and resets the pending group. An
    /// injected [`FaultPoint::WalSync`] failure leaves [`Wal::synced_len`]
    /// unchanged: the appended bytes stay OS-buffered (they may still
    /// become durable under a later successful sync) but are *not*
    /// acknowledged as device-durable.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.fault.decide(FaultPoint::WalSync, 0) != InjectedFault::None {
            return Err(FaultInjector::error(FaultPoint::WalSync));
        }
        self.file.sync_data()?;
        self.synced_len = self.len;
        self.pending = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Syncs only if acknowledged appends are not yet device-durable.
    /// Returns whether a sync was issued — checkpoints and shutdown use
    /// this to close the group-commit window.
    pub fn sync_pending(&mut self) -> io::Result<bool> {
        if self.synced_len < self.len {
            self.sync()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Empties the log (after a checkpoint has made its records redundant).
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.len = 0;
        self.records = 0;
        self.synced_len = 0;
        self.pending = 0;
        Ok(())
    }

    /// Bytes of valid log.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Bytes of log known flushed to the device — the prefix that survives
    /// even a kernel crash. Always a record boundary, because syncs happen
    /// only between appends.
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// Records appended since open/truncate plus those recovered at open.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's durability level.
    pub fn durability(&self) -> Durability {
        self.durability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(tag: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("clic-wal-test-{}-{tag}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_then_replay_roundtrip() {
        let path = temp_wal("roundtrip");
        {
            let (mut wal, recovered) = Wal::open(&path, Durability::Buffered).unwrap();
            assert!(recovered.is_empty());
            wal.append(PageId(1), &[0xaa; 32]).unwrap();
            wal.append(PageId(2), &[0xbb; 32]).unwrap();
            assert_eq!(wal.records(), 2);
        } // dropped without sync: buffered writes still reach the OS
        let (wal, recovered) = Wal::open(&path, Durability::Buffered).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].page, PageId(1));
        assert_eq!(recovered[0].op, WalOp::Write(vec![0xaa; 32]));
        assert_eq!(recovered[1].page, PageId(2));
        assert_eq!(wal.records(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn delete_records_replay_in_log_order() {
        let path = temp_wal("delete");
        {
            let (mut wal, recovered) = Wal::open(&path, Durability::Buffered).unwrap();
            assert!(recovered.is_empty());
            wal.append(PageId(7), &[0xcc; 16]).unwrap();
            wal.append_delete(PageId(7)).unwrap();
            wal.append(PageId(8), &[0xdd; 16]).unwrap();
            assert_eq!(wal.records(), 3);
        }
        let (_, recovered) = Wal::open(&path, Durability::Buffered).unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(recovered[0].op, WalOp::Write(vec![0xcc; 16]));
        assert_eq!(recovered[1].page, PageId(7));
        assert_eq!(recovered[1].op, WalOp::Delete);
        assert_eq!(recovered[2].page, PageId(8));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_discarded_and_overwritten() {
        let path = temp_wal("torn");
        {
            let (mut wal, _) = Wal::open(&path, Durability::Buffered).unwrap();
            wal.append(PageId(1), &[1; 16]).unwrap();
            wal.append(PageId(2), &[2; 16]).unwrap();
        }
        // Truncate mid-way through the second record: a crash mid-append.
        let full = std::fs::read(&path).unwrap();
        let record_len = FRAME_LEN + PAYLOAD_HEADER + 16;
        std::fs::write(&path, &full[..record_len + 5]).unwrap();
        let (mut wal, recovered) = Wal::open(&path, Durability::Buffered).unwrap();
        assert_eq!(recovered.len(), 1, "only the intact record replays");
        assert_eq!(recovered[0].page, PageId(1));
        // New appends overwrite the torn tail.
        wal.append(PageId(3), &[3; 16]).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&path, Durability::Buffered).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[1].page, PageId(3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let path = temp_wal("corrupt");
        {
            let (mut wal, _) = Wal::open(&path, Durability::Buffered).unwrap();
            wal.append(PageId(1), &[1; 16]).unwrap();
            wal.append(PageId(2), &[2; 16]).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let second_payload = FRAME_LEN + PAYLOAD_HEADER + 16 + FRAME_LEN + 3;
        bytes[second_payload] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, recovered) = Wal::open(&path, Durability::Buffered).unwrap();
        assert_eq!(recovered.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = temp_wal("truncate");
        let (mut wal, _) = Wal::open(&path, Durability::Buffered).unwrap();
        wal.append(PageId(1), &[1; 8]).unwrap();
        assert!(wal.len_bytes() > 0);
        wal.truncate().unwrap();
        assert_eq!(wal.len_bytes(), 0);
        assert_eq!(wal.records(), 0);
        drop(wal);
        let (_, recovered) = Wal::open(&path, Durability::Buffered).unwrap();
        assert!(recovered.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn buffered_appends_never_sync() {
        let path = temp_wal("buffered");
        let (mut wal, _) = Wal::open(&path, Durability::Buffered).unwrap();
        for p in 0..5u64 {
            let outcome = wal.append(PageId(p), &[p as u8; 8]).unwrap();
            assert!(!outcome.synced);
            assert!(!outcome.group_commit);
        }
        assert_eq!(wal.synced_len(), 0);
        assert!(wal.sync_pending().unwrap(), "checkpoint closes the window");
        assert_eq!(wal.synced_len(), wal.len_bytes());
        assert!(!wal.sync_pending().unwrap(), "nothing left to sync");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn strict_syncs_every_append() {
        let path = temp_wal("strict");
        let (mut wal, _) = Wal::open(&path, Durability::Strict).unwrap();
        for p in 0..3u64 {
            let outcome = wal.append(PageId(p), &[p as u8; 8]).unwrap();
            assert!(outcome.synced);
            assert!(!outcome.group_commit, "a group of one is not a group");
            assert_eq!(wal.synced_len(), wal.len_bytes());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_commit_coalesces_appends_into_one_sync() {
        let path = temp_wal("group");
        let durability = Durability::GroupCommit {
            max_batch: 4,
            max_wait: Duration::from_secs(3600), // never trips in this test
        };
        let (mut wal, _) = Wal::open(&path, durability).unwrap();
        for p in 0..3u64 {
            let outcome = wal.append(PageId(p), &[p as u8; 8]).unwrap();
            assert!(!outcome.synced, "append {p} rides the pending group");
        }
        assert_eq!(wal.synced_len(), 0);
        let outcome = wal.append(PageId(3), &[3; 8]).unwrap();
        assert!(outcome.synced, "batch boundary forces the sync");
        assert!(outcome.group_commit, "the sync covered four appends");
        assert_eq!(wal.synced_len(), wal.len_bytes());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_commit_max_wait_bounds_staleness() {
        let path = temp_wal("groupwait");
        let durability = Durability::GroupCommit {
            max_batch: 1_000_000,
            max_wait: Duration::ZERO, // every append is already stale
        };
        let (mut wal, _) = Wal::open(&path, durability).unwrap();
        let outcome = wal.append(PageId(1), &[1; 8]).unwrap();
        assert!(outcome.synced, "elapsed max_wait forces the sync");
        assert!(!outcome.group_commit);
        assert_eq!(wal.synced_len(), wal.len_bytes());
        let _ = std::fs::remove_file(&path);
    }
}
