//! [`Wal`]: the optional write-ahead log that makes staged (write-back)
//! writes crash-consistent.
//!
//! # Record format
//!
//! The log is a flat sequence of length-prefixed records:
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][payload: len bytes]
//! payload = [kind: u8][page: u64 LE][page bytes]
//! ```
//!
//! The CRC covers the payload. The only record kind today is a full-page
//! write (`kind = 1`); the byte exists so future kinds (checkpoint markers,
//! partial-page deltas) stay backward-readable.
//!
//! # Durability contract
//!
//! [`Wal::append`] hands the record to the OS with an ordinary buffered
//! write — at that point the write is *acknowledged*: it survives a process
//! crash (the failure mode this crate models and the crash-recovery tests
//! exercise), though not a kernel panic unless [`Wal::sync`] is also called.
//!
//! # Replay
//!
//! [`Wal::open`] parses the longest valid prefix: it stops at the first
//! record that is short (a crash truncated the tail mid-append) or whose CRC
//! disagrees (a torn in-place write), returning every record before it.
//! After the recovered pages are re-applied to the data file and synced, the
//! caller truncates the log ([`Wal::truncate`]); the same happens at every
//! checkpoint, which is what keeps the log short.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use cache_sim::PageId;

use crate::crc::crc32;

/// Record kind: a full-page write.
const KIND_PAGE_WRITE: u8 = 1;
/// Bytes of record framing (length + CRC) before the payload.
const FRAME_LEN: usize = 8;
/// Bytes of payload header (kind + page id) before the page bytes.
const PAYLOAD_HEADER: usize = 9;

/// One recovered log record: a full-page write that had been acknowledged
/// before the crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The page the record writes.
    pub page: PageId,
    /// The page bytes.
    pub data: Vec<u8>,
}

/// An append-only write-ahead log over one file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    /// Bytes of valid log (append position).
    len: u64,
    records: u64,
}

impl Wal {
    /// Opens (or creates) the log at `path` and replays it: returns the
    /// records of the longest valid prefix, oldest first. A torn tail —
    /// short or CRC-corrupt final record, the signature of a crash
    /// mid-append — is silently discarded (subsequent appends overwrite it).
    pub fn open(path: &Path) -> io::Result<(Wal, Vec<WalRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;
        let mut records = Vec::new();
        let mut offset = 0usize;
        while bytes.len() - offset >= FRAME_LEN {
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
            let payload_start = offset + FRAME_LEN;
            if len < PAYLOAD_HEADER || bytes.len() - payload_start < len {
                break; // short record: torn tail
            }
            let payload = &bytes[payload_start..payload_start + len];
            if crc32(payload) != crc {
                break; // corrupt record: torn tail
            }
            if payload[0] == KIND_PAGE_WRITE {
                let page = PageId(u64::from_le_bytes(payload[1..9].try_into().unwrap()));
                records.push(WalRecord {
                    page,
                    data: payload[PAYLOAD_HEADER..].to_vec(),
                });
            }
            offset = payload_start + len;
        }
        let wal = Wal {
            file,
            len: offset as u64,
            records: records.len() as u64,
        };
        Ok((wal, records))
    }

    /// Appends a full-page write record; the write is acknowledged once this
    /// returns. Returns the number of log bytes appended (framing included).
    pub fn append(&mut self, page: PageId, data: &[u8]) -> io::Result<u64> {
        let len = PAYLOAD_HEADER + data.len();
        let mut record = Vec::with_capacity(FRAME_LEN + len);
        record.extend_from_slice(&(len as u32).to_le_bytes());
        record.extend_from_slice(&[0u8; 4]); // CRC patched below
        record.push(KIND_PAGE_WRITE);
        record.extend_from_slice(&page.0.to_le_bytes());
        record.extend_from_slice(data);
        let crc = crc32(&record[FRAME_LEN..]);
        record[4..8].copy_from_slice(&crc.to_le_bytes());
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(&record)?;
        self.len += record.len() as u64;
        self.records += 1;
        Ok(record.len() as u64)
    }

    /// Flushes the log to the device.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Empties the log (after a checkpoint has made its records redundant).
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.len = 0;
        self.records = 0;
        Ok(())
    }

    /// Bytes of valid log.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Records appended since open/truncate plus those recovered at open.
    pub fn records(&self) -> u64 {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(tag: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("clic-wal-test-{}-{tag}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_then_replay_roundtrip() {
        let path = temp_wal("roundtrip");
        {
            let (mut wal, recovered) = Wal::open(&path).unwrap();
            assert!(recovered.is_empty());
            wal.append(PageId(1), &[0xaa; 32]).unwrap();
            wal.append(PageId(2), &[0xbb; 32]).unwrap();
            assert_eq!(wal.records(), 2);
        } // dropped without sync: buffered writes still reach the OS
        let (wal, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].page, PageId(1));
        assert_eq!(recovered[0].data, vec![0xaa; 32]);
        assert_eq!(recovered[1].page, PageId(2));
        assert_eq!(wal.records(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_discarded_and_overwritten() {
        let path = temp_wal("torn");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(PageId(1), &[1; 16]).unwrap();
            wal.append(PageId(2), &[2; 16]).unwrap();
        }
        // Truncate mid-way through the second record: a crash mid-append.
        let full = std::fs::read(&path).unwrap();
        let record_len = FRAME_LEN + PAYLOAD_HEADER + 16;
        std::fs::write(&path, &full[..record_len + 5]).unwrap();
        let (mut wal, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.len(), 1, "only the intact record replays");
        assert_eq!(recovered[0].page, PageId(1));
        // New appends overwrite the torn tail.
        wal.append(PageId(3), &[3; 16]).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[1].page, PageId(3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let path = temp_wal("corrupt");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(PageId(1), &[1; 16]).unwrap();
            wal.append(PageId(2), &[2; 16]).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let second_payload = FRAME_LEN + PAYLOAD_HEADER + 16 + FRAME_LEN + 3;
        bytes[second_payload] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, recovered) = Wal::open(&path).unwrap();
        assert_eq!(recovered.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = temp_wal("truncate");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(PageId(1), &[1; 8]).unwrap();
        assert!(wal.len_bytes() > 0);
        wal.truncate().unwrap();
        assert_eq!(wal.len_bytes(), 0);
        assert_eq!(wal.records(), 0);
        drop(wal);
        let (_, recovered) = Wal::open(&path).unwrap();
        assert!(recovered.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
