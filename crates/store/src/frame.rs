//! [`FrameArena`]: in-memory buffer frames with pin counts, dirty bits, and
//! RAII page guards.
//!
//! The arena owns one contiguous allocation of `frames × page_size` bytes
//! plus per-frame metadata (resident page, pin state, dirty bit) and a
//! `page → frame` directory. See the crate docs for the frame lifecycle and
//! the pin/unpin rules; the short version:
//!
//! * [`FrameArena::read`] pins a frame shared (any number of concurrent read
//!   guards), [`FrameArena::write`] pins it exclusive and marks it dirty;
//!   dropping the guard unpins.
//! * Structural mutation ([`FrameArena::install`], [`FrameArena::evict_into`])
//!   takes `&mut self`, so the borrow checker statically rules out live
//!   guards across it — a pinned frame can never be evicted.
//! * Pin-state violations *within* a shared borrow (e.g. `write` while a
//!   read guard is live) are caught at runtime and panic, mirroring
//!   `RefCell`.
//!
//! The arena is intentionally `!Sync` (pin state lives in `Cell`s): it is
//! always owned by a single-threaded section — in practice behind the
//! [`crate::PageStore`] mutex — which is what makes the `UnsafeCell` buffer
//! sound: two guards alias the buffer only for *distinct* frames (disjoint
//! byte ranges) or as multiple shared readers of one frame.

use std::cell::{Cell, UnsafeCell};
use std::ops::{Deref, DerefMut};

use cache_sim::{FastHashMap, PageId};

/// Pin state: `0` = unpinned, `> 0` = that many read guards, `-1` = one
/// write guard.
const WRITE_PINNED: i32 = -1;

#[derive(Debug)]
struct FrameMeta {
    page: Option<PageId>,
    pins: Cell<i32>,
    dirty: Cell<bool>,
}

/// A fixed-capacity arena of page-sized buffer frames.
#[derive(Debug)]
pub struct FrameArena {
    page_size: usize,
    /// The frame bytes. `UnsafeCell` per byte (layout-identical to `[u8]`)
    /// lets guards derive their slices from the shared base pointer without
    /// ever materializing a reference to the whole buffer, which would alias
    /// other live guards.
    buf: Box<[UnsafeCell<u8>]>,
    frames: Vec<FrameMeta>,
    directory: FastHashMap<PageId, usize>,
    free: Vec<usize>,
    dirty_count: Cell<usize>,
}

impl FrameArena {
    /// An arena of `frames` frames of `page_size` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(frames: usize, page_size: usize) -> Self {
        assert!(frames > 0, "at least one frame is required");
        assert!(page_size > 0, "page size must be positive");
        FrameArena {
            page_size,
            buf: std::iter::repeat_with(|| UnsafeCell::new(0u8))
                .take(frames * page_size)
                .collect(),
            frames: (0..frames)
                .map(|_| FrameMeta {
                    page: None,
                    pins: Cell::new(0),
                    dirty: Cell::new(false),
                })
                .collect(),
            directory: FastHashMap::default(),
            // Popped from the back; reversed so frames are first handed out
            // in index order (deterministic, cache-friendly).
            free: (0..frames).rev().collect(),
            dirty_count: Cell::new(0),
        }
    }

    /// Frame capacity.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Bytes per frame.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// Whether no page is resident.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Number of resident dirty frames.
    pub fn dirty_len(&self) -> usize {
        self.dirty_count.get()
    }

    /// Whether `page` is resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.directory.contains_key(&page)
    }

    /// Raw pointer to frame `frame`'s bytes; callers uphold the pin
    /// discipline before turning it into a reference.
    fn frame_ptr(&self, frame: usize) -> *mut u8 {
        // SAFETY: the offset stays inside the single allocation (frame <
        // capacity). Taking the base pointer through `&self.buf` is fine —
        // shared references to `UnsafeCell`s coexist with mutation through
        // them; dereferencing is guarded by the pin protocol at call sites.
        unsafe { (self.buf.as_ptr() as *mut u8).add(frame * self.page_size) }
    }

    /// Installs `data` as a new resident frame for `page` with the given
    /// dirty bit. Returns `false` (and installs nothing) if every frame is
    /// occupied — the caller must evict first.
    ///
    /// # Panics
    ///
    /// Panics if `page` is already resident (overwrite through
    /// [`FrameArena::write`] instead) or `data` is not one page.
    pub fn install(&mut self, page: PageId, data: &[u8], dirty: bool) -> bool {
        assert_eq!(data.len(), self.page_size, "data must be one page");
        assert!(
            !self.directory.contains_key(&page),
            "page {} is already resident",
            page.0
        );
        let Some(frame) = self.free.pop() else {
            return false;
        };
        let meta = &mut self.frames[frame];
        debug_assert_eq!(meta.pins.get(), 0, "free frame cannot be pinned");
        meta.page = Some(page);
        meta.dirty.set(dirty);
        if dirty {
            self.dirty_count.set(self.dirty_count.get() + 1);
        }
        // SAFETY: `&mut self` guarantees no guard borrows the arena.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.frame_ptr(frame), self.page_size);
        }
        self.directory.insert(page, frame);
        true
    }

    /// Pins `page`'s frame shared and returns a read guard over its bytes,
    /// or `None` if the page is not resident.
    ///
    /// # Panics
    ///
    /// Panics if the frame is write-pinned.
    pub fn read(&self, page: PageId) -> Option<PageReadGuard<'_>> {
        let &frame = self.directory.get(&page)?;
        let pins = &self.frames[frame].pins;
        assert!(
            pins.get() != WRITE_PINNED,
            "page {} is write-pinned",
            page.0
        );
        pins.set(pins.get() + 1);
        Some(PageReadGuard { arena: self, frame })
    }

    /// Pins `page`'s frame exclusive, marks it dirty, and returns a write
    /// guard over its bytes, or `None` if the page is not resident.
    ///
    /// # Panics
    ///
    /// Panics if the frame is pinned in any way.
    pub fn write(&self, page: PageId) -> Option<PageWriteGuard<'_>> {
        let &frame = self.directory.get(&page)?;
        let meta = &self.frames[frame];
        assert_eq!(meta.pins.get(), 0, "page {} is pinned", page.0);
        meta.pins.set(WRITE_PINNED);
        if !meta.dirty.replace(true) {
            self.dirty_count.set(self.dirty_count.get() + 1);
        }
        Some(PageWriteGuard { arena: self, frame })
    }

    /// Copies `page`'s resident bytes into `out` (one page long). Returns
    /// `false` if the page is not resident.
    pub fn copy_out(&self, page: PageId, out: &mut [u8]) -> bool {
        match self.read(page) {
            Some(guard) => {
                out.copy_from_slice(&guard);
                true
            }
            None => false,
        }
    }

    /// Whether `page`'s resident frame is dirty (`None` if not resident).
    pub fn is_dirty(&self, page: PageId) -> Option<bool> {
        let &frame = self.directory.get(&page)?;
        Some(self.frames[frame].dirty.get())
    }

    /// Clears `page`'s dirty bit after a successful write-back. Returns
    /// `false` if the page is not resident.
    ///
    /// # Panics
    ///
    /// Panics if the frame is write-pinned (the flusher must not race a
    /// writer's in-flight mutation).
    pub fn mark_clean(&self, page: PageId) -> bool {
        let Some(&frame) = self.directory.get(&page) else {
            return false;
        };
        let meta = &self.frames[frame];
        assert!(
            meta.pins.get() != WRITE_PINNED,
            "page {} is write-pinned",
            page.0
        );
        if meta.dirty.replace(false) {
            self.dirty_count.set(self.dirty_count.get() - 1);
        }
        true
    }

    /// Appends up to `max` dirty, unpinned resident pages to `out` in frame
    /// order (deterministic).
    pub fn dirty_pages(&self, max: usize, out: &mut Vec<PageId>) {
        if max == 0 {
            return;
        }
        let mut taken = 0;
        for meta in &self.frames {
            if let Some(page) = meta.page {
                if meta.dirty.get() && meta.pins.get() == 0 {
                    out.push(page);
                    taken += 1;
                    if taken == max {
                        return;
                    }
                }
            }
        }
    }

    /// Removes `page` from the arena. When the frame was dirty its bytes are
    /// copied into `out` (one page long) so the caller can write them back;
    /// the returned flag says whether that happened. Returns `None` if the
    /// page is not resident.
    ///
    /// Live guards cannot exist here (`&mut self`), so the frame is
    /// guaranteed unpinned unless a guard was leaked via `mem::forget`.
    pub fn evict_into(&mut self, page: PageId, out: &mut [u8]) -> Option<bool> {
        let frame = self.directory.remove(&page)?;
        let meta = &mut self.frames[frame];
        assert_eq!(
            meta.pins.get(),
            0,
            "evicting a pinned frame (leaked guard?)"
        );
        meta.page = None;
        let dirty = meta.dirty.replace(false);
        if dirty {
            assert_eq!(out.len(), self.page_size, "out must be one page");
            self.dirty_count.set(self.dirty_count.get() - 1);
            // SAFETY: `&mut self` guarantees no guard borrows the arena.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    self.frame_ptr(frame),
                    out.as_mut_ptr(),
                    self.page_size,
                );
            }
        }
        self.free.push(frame);
        Some(dirty)
    }
}

/// A shared RAII pin on one resident frame; dereferences to the page bytes.
#[derive(Debug)]
pub struct PageReadGuard<'a> {
    arena: &'a FrameArena,
    frame: usize,
}

impl Deref for PageReadGuard<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: the frame is read-pinned, so no write guard aliases it;
        // other read guards only produce shared references.
        unsafe {
            std::slice::from_raw_parts(self.arena.frame_ptr(self.frame), self.arena.page_size)
        }
    }
}

impl Drop for PageReadGuard<'_> {
    fn drop(&mut self) {
        let pins = &self.arena.frames[self.frame].pins;
        pins.set(pins.get() - 1);
    }
}

/// An exclusive RAII pin on one resident frame; dereferences mutably to the
/// page bytes. Acquiring it marks the frame dirty.
#[derive(Debug)]
pub struct PageWriteGuard<'a> {
    arena: &'a FrameArena,
    frame: usize,
}

impl Deref for PageWriteGuard<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: the frame is write-pinned, so this guard is the only
        // reference to its bytes.
        unsafe {
            std::slice::from_raw_parts(self.arena.frame_ptr(self.frame), self.arena.page_size)
        }
    }
}

impl DerefMut for PageWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        // SAFETY: as in `deref`; exclusivity is enforced by the pin state.
        unsafe {
            std::slice::from_raw_parts_mut(self.arena.frame_ptr(self.frame), self.arena.page_size)
        }
    }
}

impl Drop for PageWriteGuard<'_> {
    fn drop(&mut self) {
        self.arena.frames[self.frame].pins.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_read_write_evict_lifecycle() {
        let mut arena = FrameArena::new(2, 16);
        assert!(arena.install(PageId(1), &[1u8; 16], false));
        assert!(arena.install(PageId(2), &[2u8; 16], true));
        assert!(!arena.install(PageId(3), &[3u8; 16], false), "arena full");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.dirty_len(), 1);
        assert_eq!(arena.is_dirty(PageId(1)), Some(false));

        {
            let a = arena.read(PageId(1)).unwrap();
            let b = arena.read(PageId(1)).unwrap(); // shared pins coexist
            assert_eq!(&a[..4], &[1, 1, 1, 1]);
            assert_eq!(a[0], b[0]);
        }
        {
            let mut w = arena.write(PageId(1)).unwrap();
            w[0] = 9;
        }
        assert_eq!(arena.is_dirty(PageId(1)), Some(true));
        assert_eq!(arena.dirty_len(), 2);
        let g = arena.read(PageId(1)).unwrap();
        assert_eq!(g[0], 9);
        drop(g);

        assert!(arena.mark_clean(PageId(1)));
        assert_eq!(arena.dirty_len(), 1);

        let mut out = vec![0u8; 16];
        assert_eq!(arena.evict_into(PageId(1), &mut out), Some(false));
        assert_eq!(arena.evict_into(PageId(2), &mut out), Some(true));
        assert_eq!(out, vec![2u8; 16]);
        assert_eq!(arena.evict_into(PageId(2), &mut out), None);
        assert!(arena.is_empty());
        assert_eq!(arena.dirty_len(), 0);
        // Freed frames are reusable.
        assert!(arena.install(PageId(4), &[4u8; 16], false));
    }

    #[test]
    fn dirty_pages_lists_in_frame_order_up_to_max() {
        let mut arena = FrameArena::new(4, 8);
        for p in 1..=4u64 {
            assert!(arena.install(PageId(p), &[p as u8; 8], p % 2 == 0));
        }
        let mut dirty = Vec::new();
        arena.dirty_pages(10, &mut dirty);
        assert_eq!(dirty, vec![PageId(2), PageId(4)]);
        dirty.clear();
        arena.dirty_pages(1, &mut dirty);
        assert_eq!(dirty, vec![PageId(2)]);
        // A pinned frame is skipped by the flusher's listing.
        let _guard = arena.write(PageId(2)).unwrap();
        dirty.clear();
        arena.dirty_pages(10, &mut dirty);
        assert_eq!(dirty, vec![PageId(4)]);
    }

    #[test]
    #[should_panic(expected = "write-pinned")]
    fn read_while_write_pinned_panics() {
        let mut arena = FrameArena::new(1, 8);
        arena.install(PageId(1), &[0u8; 8], false);
        let _w = arena.write(PageId(1)).unwrap();
        let _ = arena.read(PageId(1));
    }

    #[test]
    #[should_panic(expected = "is pinned")]
    fn write_while_read_pinned_panics() {
        let mut arena = FrameArena::new(1, 8);
        arena.install(PageId(1), &[0u8; 8], false);
        let _r = arena.read(PageId(1)).unwrap();
        let _ = arena.write(PageId(1));
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_install_panics() {
        let mut arena = FrameArena::new(2, 8);
        arena.install(PageId(1), &[0u8; 8], false);
        arena.install(PageId(1), &[0u8; 8], false);
    }
}
