//! [`FrameArena`]: in-memory buffer frames with atomic pin counts,
//! per-frame latches, dirty bits, and RAII page guards.
//!
//! The arena owns one contiguous allocation of `frames × page_size` bytes
//! plus per-frame metadata (resident page, latch word, dirty bit), a
//! striped `page → frame` directory, and a free list. Unlike its earlier
//! single-threaded incarnation the arena is `Sync`: all synchronization is
//! per-frame (an atomic latch word) or per-directory-stripe (an `RwLock`
//! around one hash map), so threads reading *distinct* pages never touch a
//! shared lock and threads reading the *same* clean page share only that
//! frame's latch word.
//!
//! # Latch protocol
//!
//! Each frame carries a latch word: `0` = unlatched, `n > 0` = `n` read
//! pins, `-1` = one write pin.
//!
//! * [`FrameArena::read`] looks the page up under its stripe's read lock
//!   and increments the latch *before* releasing the stripe — eviction
//!   removes the directory entry under the stripe's write lock, so a frame
//!   can never be recycled between lookup and pin.
//! * [`FrameArena::write`] does the same but latches exclusive (`0 → -1`),
//!   spinning while readers drain.
//! * [`FrameArena::evict`] removes the directory entry first (no new pins
//!   can arrive), then latches exclusive and hands back an [`EvictGuard`]
//!   exposing the frame's bytes for write-back; dropping the guard recycles
//!   the frame onto the free list.
//! * [`FrameArena::install`] pops a free frame and fills it *before*
//!   publishing it in the directory, so the copy races nothing.
//!
//! Latch acquisition spins (with exponential backoff to `yield_now`); the
//! caller must therefore never request a second guard for a page while
//! holding one with a conflicting mode on the same thread — that is the
//! classic latch discipline, and the store upholds it by taking at most one
//! guard per operation.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicI32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};

use cache_sim::sync::{read_lock, recover_lock, write_lock};
use cache_sim::{page_partition, FastHashMap, PageId};
use clic_obs::{Recorder, SpanKind};

/// Latch value: one exclusive (write) pin.
const WRITE_LATCHED: i32 = -1;
/// Sentinel in a frame's `page` word: the frame holds no page. Page ids
/// are dense trace offsets, so `u64::MAX` is safely out of band.
const NO_PAGE: u64 = u64::MAX;
/// Directory stripes: page lookups hash-partition across this many maps.
const DIRECTORY_STRIPES: usize = 16;

#[derive(Debug)]
struct Frame {
    /// `0` = unlatched, `> 0` = that many read pins, `-1` = write-latched.
    latch: AtomicI32,
    dirty: AtomicBool,
    /// Resident page id, or [`NO_PAGE`]. Written only while the frame is
    /// unpublished (install) or write-latched (evict teardown).
    page: AtomicU64,
}

/// A fixed-capacity arena of page-sized buffer frames, safe to share
/// across threads (see the module docs for the latch protocol).
#[derive(Debug)]
pub struct FrameArena {
    page_size: usize,
    /// The frame bytes. `UnsafeCell` per byte (layout-identical to `[u8]`)
    /// lets guards derive their slices from the shared base pointer without
    /// ever materializing a reference to the whole buffer, which would alias
    /// other live guards.
    buf: Box<[UnsafeCell<u8>]>,
    frames: Box<[Frame]>,
    directory: Box<[RwLock<FastHashMap<PageId, u32>>]>,
    free: Mutex<Vec<u32>>,
    dirty_count: AtomicUsize,
    /// Records contended latch acquisitions as
    /// [`SpanKind::FrameLatchWait`] spans; uncontended pins never touch it
    /// beyond one `Option` check, and a disabled recorder costs nothing.
    recorder: Recorder,
}

// SAFETY: the `UnsafeCell` buffer is the only reason the type is not
// automatically `Sync`. Access to frame bytes is mediated by the per-frame
// latch word: shared slices exist only under a read pin (excluding the one
// writer), exclusive slices only under the write latch (excluding
// everyone), and unpublished frames (install) are reachable by exactly one
// thread — the one that popped them off the free list.
unsafe impl Sync for FrameArena {}

impl FrameArena {
    /// An arena of `frames` frames of `page_size` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(frames: usize, page_size: usize) -> Self {
        assert!(frames > 0, "at least one frame is required");
        assert!(page_size > 0, "page size must be positive");
        assert!(u32::try_from(frames).is_ok(), "frame count exceeds u32");
        FrameArena {
            page_size,
            buf: std::iter::repeat_with(|| UnsafeCell::new(0u8))
                .take(frames * page_size)
                .collect(),
            frames: (0..frames)
                .map(|_| Frame {
                    latch: AtomicI32::new(0),
                    dirty: AtomicBool::new(false),
                    page: AtomicU64::new(NO_PAGE),
                })
                .collect(),
            directory: (0..DIRECTORY_STRIPES)
                .map(|_| RwLock::new(FastHashMap::default()))
                .collect(),
            // Popped from the back; reversed so frames are first handed out
            // in index order (deterministic, cache-friendly).
            free: Mutex::new((0..frames as u32).rev().collect()),
            dirty_count: AtomicUsize::new(0),
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches an observability [`Recorder`]; contended latch
    /// acquisitions then record [`SpanKind::FrameLatchWait`] spans (detail:
    /// spin iterations).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Frame capacity.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Bytes per frame.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.directory
            .iter()
            .map(|stripe| read_lock(stripe).len())
            .sum()
    }

    /// Whether no page is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of resident dirty frames.
    pub fn dirty_len(&self) -> usize {
        self.dirty_count.load(Ordering::Acquire)
    }

    /// Whether `page` is resident.
    pub fn contains(&self, page: PageId) -> bool {
        read_lock(self.stripe_of(page)).contains_key(&page)
    }

    fn stripe_of(&self, page: PageId) -> &RwLock<FastHashMap<PageId, u32>> {
        &self.directory[page_partition(page, self.directory.len())]
    }

    /// Raw pointer to frame `frame`'s bytes; callers uphold the latch
    /// discipline before turning it into a reference.
    fn frame_ptr(&self, frame: u32) -> *mut u8 {
        // SAFETY: the offset stays inside the single allocation (frame <
        // capacity). Taking the base pointer through `&self.buf` is fine —
        // shared references to `UnsafeCell`s coexist with mutation through
        // them; dereferencing is guarded by the latch protocol at call
        // sites.
        unsafe { (self.buf.as_ptr() as *mut u8).add(frame as usize * self.page_size) }
    }

    /// Spin-acquires one read pin on `frame` (waits out a write latch).
    fn pin_read(&self, frame: u32) {
        let latch = &self.frames[frame as usize].latch;
        let mut spins = 0u32;
        let mut wait_start_ns: Option<u64> = None;
        loop {
            let state = latch.load(Ordering::Acquire);
            if state >= 0
                && latch
                    .compare_exchange_weak(state, state + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                self.record_latch_wait(wait_start_ns, spins);
                return;
            }
            if wait_start_ns.is_none() {
                // Contended: stamp the wait's start (only with an enabled
                // recorder — `clock()` is `None` otherwise).
                wait_start_ns = self.recorder.clock().map(|clock| clock.now_nanos());
            }
            backoff(&mut spins);
        }
    }

    /// Spin-acquires the write latch on `frame` (waits for readers to
    /// drain and any writer to finish).
    fn pin_write(&self, frame: u32) {
        let latch = &self.frames[frame as usize].latch;
        let mut spins = 0u32;
        let mut wait_start_ns: Option<u64> = None;
        while latch
            .compare_exchange_weak(0, WRITE_LATCHED, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            if wait_start_ns.is_none() {
                wait_start_ns = self.recorder.clock().map(|clock| clock.now_nanos());
            }
            backoff(&mut spins);
        }
        self.record_latch_wait(wait_start_ns, spins);
    }

    /// Emits a [`SpanKind::FrameLatchWait`] event for a contended
    /// acquisition; a no-op for the uncontended fast path (no start stamp).
    fn record_latch_wait(&self, wait_start_ns: Option<u64>, spins: u32) {
        if let (Some(start_ns), Some(clock)) = (wait_start_ns, self.recorder.clock()) {
            self.recorder.event(
                SpanKind::FrameLatchWait,
                start_ns,
                clock.now_nanos(),
                spins as u64,
            );
        }
    }

    /// Installs `data` as a new resident frame for `page` with the given
    /// dirty bit. Returns `false` (and installs nothing) if every frame is
    /// occupied — the caller must evict first.
    ///
    /// # Panics
    ///
    /// Panics if `page` is already resident (overwrite through
    /// [`FrameArena::write`] instead) or `data` is not one page.
    pub fn install(&self, page: PageId, data: &[u8], dirty: bool) -> bool {
        assert_eq!(data.len(), self.page_size, "data must be one page");
        assert_ne!(page.0, NO_PAGE, "page id {NO_PAGE} is reserved");
        let Some(frame) = recover_lock(&self.free).pop() else {
            return false;
        };
        let meta = &self.frames[frame as usize];
        debug_assert_eq!(
            meta.latch.load(Ordering::Relaxed),
            0,
            "free frame cannot be latched"
        );
        // SAFETY: the frame came off the free list and is not yet published
        // in the directory, so this thread is the only one that can reach
        // its bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.frame_ptr(frame), self.page_size);
        }
        meta.dirty.store(dirty, Ordering::Release);
        meta.page.store(page.0, Ordering::Release);
        if dirty {
            self.dirty_count.fetch_add(1, Ordering::AcqRel);
        }
        let previous = write_lock(self.stripe_of(page)).insert(page, frame);
        assert!(previous.is_none(), "page {} is already resident", page.0);
        true
    }

    /// Pins `page`'s frame shared and returns a read guard over its bytes,
    /// or `None` if the page is not resident. Blocks (spinning) while the
    /// frame is write-latched.
    pub fn read(&self, page: PageId) -> Option<PageReadGuard<'_>> {
        let stripe = read_lock(self.stripe_of(page));
        let &frame = stripe.get(&page)?;
        // Pin before releasing the stripe lock: eviction removes the entry
        // under the stripe's write lock, so the frame cannot be recycled
        // between this lookup and the pin.
        self.pin_read(frame);
        drop(stripe);
        Some(PageReadGuard { arena: self, frame })
    }

    /// Latches `page`'s frame exclusive, marks it dirty, and returns a
    /// write guard over its bytes, or `None` if the page is not resident.
    /// Blocks (spinning) while other pins drain.
    pub fn write(&self, page: PageId) -> Option<PageWriteGuard<'_>> {
        let stripe = read_lock(self.stripe_of(page));
        let &frame = stripe.get(&page)?;
        self.pin_write(frame);
        drop(stripe);
        if !self.frames[frame as usize]
            .dirty
            .swap(true, Ordering::AcqRel)
        {
            self.dirty_count.fetch_add(1, Ordering::AcqRel);
        }
        Some(PageWriteGuard { arena: self, frame })
    }

    /// Copies `page`'s resident bytes into `out` (one page long). Returns
    /// `false` if the page is not resident.
    pub fn copy_out(&self, page: PageId, out: &mut [u8]) -> bool {
        match self.read(page) {
            Some(guard) => {
                out.copy_from_slice(&guard);
                true
            }
            None => false,
        }
    }

    /// Whether `page`'s resident frame is dirty (`None` if not resident).
    pub fn is_dirty(&self, page: PageId) -> Option<bool> {
        let stripe = read_lock(self.stripe_of(page));
        let &frame = stripe.get(&page)?;
        Some(self.frames[frame as usize].dirty.load(Ordering::Acquire))
    }

    /// Clears `page`'s dirty bit after a successful write-back (by taking a
    /// short read pin — see [`PageReadGuard::mark_clean`] for the flush
    /// path that already holds one). Returns `false` if the page is not
    /// resident.
    pub fn mark_clean(&self, page: PageId) -> bool {
        match self.read(page) {
            Some(guard) => {
                guard.mark_clean();
                true
            }
            None => false,
        }
    }

    /// Appends up to `max` dirty, unlatched resident pages to `out` in
    /// frame order (deterministic). Racy by design: a page may be evicted
    /// or re-latched before the caller flushes it, in which case the flush
    /// simply skips it.
    pub fn dirty_pages(&self, max: usize, out: &mut Vec<PageId>) {
        if max == 0 {
            return;
        }
        let mut taken = 0;
        for meta in self.frames.iter() {
            let page = meta.page.load(Ordering::Acquire);
            if page != NO_PAGE
                && meta.dirty.load(Ordering::Acquire)
                && meta.latch.load(Ordering::Acquire) == 0
            {
                out.push(PageId(page));
                taken += 1;
                if taken == max {
                    return;
                }
            }
        }
    }

    /// Removes `page` from the arena, write-latching its frame, and
    /// returns an [`EvictGuard`] exposing the frame's bytes (and whether
    /// they were dirty) so the caller can write them back without a copy.
    /// Dropping the guard recycles the frame. Returns `None` if the page
    /// is not resident.
    ///
    /// Blocks (spinning) while existing pins drain; new pins cannot arrive
    /// because the directory entry is removed first.
    pub fn evict(&self, page: PageId) -> Option<EvictGuard<'_>> {
        let frame = write_lock(self.stripe_of(page)).remove(&page)?;
        self.pin_write(frame);
        let meta = &self.frames[frame as usize];
        let dirty = meta.dirty.swap(false, Ordering::AcqRel);
        if dirty {
            self.dirty_count.fetch_sub(1, Ordering::AcqRel);
        }
        Some(EvictGuard {
            arena: self,
            frame,
            dirty,
        })
    }

    /// [`FrameArena::evict`], copying the bytes into `out` when the frame
    /// was dirty. The returned flag says whether that happened; `None`
    /// means the page was not resident.
    pub fn evict_into(&self, page: PageId, out: &mut [u8]) -> Option<bool> {
        let guard = self.evict(page)?;
        if guard.dirty() {
            assert_eq!(out.len(), self.page_size, "out must be one page");
            out.copy_from_slice(&guard);
        }
        Some(guard.dirty())
    }
}

fn backoff(spins: &mut u32) {
    *spins += 1;
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// A shared RAII pin on one resident frame; dereferences to the page bytes.
#[derive(Debug)]
pub struct PageReadGuard<'a> {
    arena: &'a FrameArena,
    frame: u32,
}

impl PageReadGuard<'_> {
    /// Clears the frame's dirty bit. Sound while read-pinned: a writer
    /// needs the latch at `0` to re-dirty the frame, so the clear cannot
    /// race an in-flight mutation — exactly what the flush path needs after
    /// writing these bytes back.
    pub fn mark_clean(&self) {
        let meta = &self.arena.frames[self.frame as usize];
        if meta.dirty.swap(false, Ordering::AcqRel) {
            self.arena.dirty_count.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

impl Deref for PageReadGuard<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: the frame is read-pinned, so no write guard aliases it;
        // other read guards only produce shared references.
        unsafe {
            std::slice::from_raw_parts(self.arena.frame_ptr(self.frame), self.arena.page_size)
        }
    }
}

impl Drop for PageReadGuard<'_> {
    fn drop(&mut self) {
        self.arena.frames[self.frame as usize]
            .latch
            .fetch_sub(1, Ordering::Release);
    }
}

/// An exclusive RAII pin on one resident frame; dereferences mutably to the
/// page bytes. Acquiring it marks the frame dirty.
#[derive(Debug)]
pub struct PageWriteGuard<'a> {
    arena: &'a FrameArena,
    frame: u32,
}

impl Deref for PageWriteGuard<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: the frame is write-latched, so this guard is the only
        // reference to its bytes.
        unsafe {
            std::slice::from_raw_parts(self.arena.frame_ptr(self.frame), self.arena.page_size)
        }
    }
}

impl DerefMut for PageWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut [u8] {
        // SAFETY: as in `deref`; exclusivity is enforced by the latch.
        unsafe {
            std::slice::from_raw_parts_mut(self.arena.frame_ptr(self.frame), self.arena.page_size)
        }
    }
}

impl Drop for PageWriteGuard<'_> {
    fn drop(&mut self) {
        self.arena.frames[self.frame as usize]
            .latch
            .store(0, Ordering::Release);
    }
}

/// The result of [`FrameArena::evict`]: an exclusive hold on the evicted
/// frame, no longer reachable through the directory. Dereferences to the
/// departing bytes so a dirty victim can be written back straight from the
/// frame; dropping the guard resets the frame and returns it to the free
/// list.
#[derive(Debug)]
pub struct EvictGuard<'a> {
    arena: &'a FrameArena,
    frame: u32,
    dirty: bool,
}

impl EvictGuard<'_> {
    /// Whether the frame held un-flushed writes when it was evicted.
    pub fn dirty(&self) -> bool {
        self.dirty
    }
}

impl Deref for EvictGuard<'_> {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: the frame is write-latched and unpublished; this guard is
        // the only reference to its bytes.
        unsafe {
            std::slice::from_raw_parts(self.arena.frame_ptr(self.frame), self.arena.page_size)
        }
    }
}

impl Drop for EvictGuard<'_> {
    fn drop(&mut self) {
        let meta = &self.arena.frames[self.frame as usize];
        meta.page.store(NO_PAGE, Ordering::Release);
        meta.latch.store(0, Ordering::Release);
        recover_lock(&self.arena.free).push(self.frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_read_write_evict_lifecycle() {
        let arena = FrameArena::new(2, 16);
        assert!(arena.install(PageId(1), &[1u8; 16], false));
        assert!(arena.install(PageId(2), &[2u8; 16], true));
        assert!(!arena.install(PageId(3), &[3u8; 16], false), "arena full");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.dirty_len(), 1);
        assert_eq!(arena.is_dirty(PageId(1)), Some(false));

        {
            let a = arena.read(PageId(1)).unwrap();
            let b = arena.read(PageId(1)).unwrap(); // shared pins coexist
            assert_eq!(&a[..4], &[1, 1, 1, 1]);
            assert_eq!(a[0], b[0]);
        }
        {
            let mut w = arena.write(PageId(1)).unwrap();
            w[0] = 9;
        }
        assert_eq!(arena.is_dirty(PageId(1)), Some(true));
        assert_eq!(arena.dirty_len(), 2);
        let g = arena.read(PageId(1)).unwrap();
        assert_eq!(g[0], 9);
        drop(g);

        assert!(arena.mark_clean(PageId(1)));
        assert_eq!(arena.dirty_len(), 1);

        let mut out = vec![0u8; 16];
        assert_eq!(arena.evict_into(PageId(1), &mut out), Some(false));
        assert_eq!(arena.evict_into(PageId(2), &mut out), Some(true));
        assert_eq!(out, vec![2u8; 16]);
        assert_eq!(arena.evict_into(PageId(2), &mut out), None);
        assert!(arena.is_empty());
        assert_eq!(arena.dirty_len(), 0);
        // Freed frames are reusable.
        assert!(arena.install(PageId(4), &[4u8; 16], false));
    }

    #[test]
    fn evict_guard_exposes_bytes_without_a_copy() {
        let arena = FrameArena::new(1, 8);
        assert!(arena.install(PageId(7), &[7u8; 8], true));
        let guard = arena.evict(PageId(7)).unwrap();
        assert!(guard.dirty());
        assert_eq!(&guard[..], &[7u8; 8]);
        assert!(!arena.contains(PageId(7)));
        assert!(
            !arena.install(PageId(8), &[8u8; 8], false),
            "frame is recycled only when the evict guard drops"
        );
        drop(guard);
        assert!(arena.install(PageId(8), &[8u8; 8], false));
    }

    #[test]
    fn dirty_pages_lists_in_frame_order_up_to_max() {
        let arena = FrameArena::new(4, 8);
        for p in 1..=4u64 {
            assert!(arena.install(PageId(p), &[p as u8; 8], p % 2 == 0));
        }
        let mut dirty = Vec::new();
        arena.dirty_pages(10, &mut dirty);
        assert_eq!(dirty, vec![PageId(2), PageId(4)]);
        dirty.clear();
        arena.dirty_pages(1, &mut dirty);
        assert_eq!(dirty, vec![PageId(2)]);
        // A latched frame is skipped by the flusher's listing.
        let _guard = arena.write(PageId(2)).unwrap();
        dirty.clear();
        arena.dirty_pages(10, &mut dirty);
        assert_eq!(dirty, vec![PageId(4)]);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_install_panics() {
        let arena = FrameArena::new(2, 8);
        arena.install(PageId(1), &[0u8; 8], false);
        arena.install(PageId(1), &[0u8; 8], false);
    }

    #[test]
    fn write_latch_excludes_readers_until_dropped() {
        let arena = FrameArena::new(1, 8);
        assert!(arena.install(PageId(1), &[0u8; 8], false));
        let mut w = arena.write(PageId(1)).unwrap();
        w[0] = 42;
        let observed = std::sync::atomic::AtomicU8::new(0);
        std::thread::scope(|scope| {
            let reader = scope.spawn(|| {
                // Blocks until the writer drops, then sees its byte.
                let g = arena.read(PageId(1)).unwrap();
                observed.store(g[0], Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(
                observed.load(Ordering::SeqCst),
                0,
                "reader must wait out the write latch"
            );
            w[1] = 7;
            drop(w);
            reader.join().unwrap();
        });
        assert_eq!(observed.load(Ordering::SeqCst), 42);
    }

    #[test]
    fn concurrent_threads_on_disjoint_pages_share_no_lock_state() {
        const THREADS: u64 = 4;
        const PAGES_PER_THREAD: u64 = 8;
        let arena = FrameArena::new((THREADS * PAGES_PER_THREAD) as usize, 16);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let arena = &arena;
                scope.spawn(move || {
                    for round in 0..50u64 {
                        for i in 0..PAGES_PER_THREAD {
                            let page = PageId(t * 1_000 + i);
                            let stamp = (t * PAGES_PER_THREAD + i) as u8;
                            if round == 0 {
                                assert!(arena.install(page, &[stamp; 16], false));
                            } else {
                                let mut w = arena.write(page).unwrap();
                                assert_eq!(w[0], stamp);
                                w[15] = round as u8;
                            }
                            let r = arena.read(page).unwrap();
                            assert_eq!(r[0], stamp);
                        }
                    }
                    // Tear half of this thread's pages back down.
                    let mut out = vec![0u8; 16];
                    for i in 0..PAGES_PER_THREAD / 2 {
                        let page = PageId(t * 1_000 + i);
                        assert_eq!(arena.evict_into(page, &mut out), Some(true));
                        assert_eq!(out[0], (t * PAGES_PER_THREAD + i) as u8);
                    }
                });
            }
        });
        assert_eq!(arena.len(), (THREADS * PAGES_PER_THREAD / 2) as usize);
        assert_eq!(arena.dirty_len(), (THREADS * PAGES_PER_THREAD / 2) as usize);
    }
}
