//! [`PageStore`]: the thread-safe façade over [`DiskManager`] +
//! [`FrameArena`] + [`Wal`], with byte-level I/O accounting.
//!
//! There is **no store-wide lock**. Each layer synchronizes itself (see the
//! crate docs for the full locking architecture):
//!
//! * reads prefer the arena — a clean-page buffer hit takes one directory
//!   stripe read-lock and the frame's latch word, nothing else — and fall
//!   back to the disk tier through [`DiskManager`]'s striped directory and
//!   positioned I/O;
//! * writes are staged write-back: the WAL append under the log's own
//!   mutex is the acknowledgement point (with [`Durability`] deciding when
//!   the log also syncs), then the frame is latched and overwritten or
//!   installed dirty;
//! * evicting a dirty page writes it back straight from the departing
//!   frame's [`EvictGuard`](crate::frame::EvictGuard) bytes;
//! * flush passes serialize on a dedicated flush mutex (so the background
//!   flusher and inline threshold flushes do not double-write) but take
//!   only per-frame read pins while writing back;
//! * a checkpoint flushes everything, syncs the data file, and truncates
//!   the WAL.
//!
//! Every operation updates a set of shared atomic counters that callers
//! snapshot with [`PageStore::io_stats`]; the snapshot covers activity
//! since the store was opened (WAL recovery I/O is not counted).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use cache_sim::sync::{checked_lock, recover_lock};
use cache_sim::{IoStats, PageId};
use clic_obs::{Counter, MetricsRegistry, MetricsSnapshot, Recorder, SpanKind};

use crate::disk::DiskManager;
use crate::error::StoreError;
use crate::fault::FaultInjector;
use crate::frame::FrameArena;
use crate::wal::{Durability, Wal};

/// The paper-typical page size: 4 KiB.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Configuration for a [`PageStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the backing files (`store.pages`, `store.wal`);
    /// created if missing.
    pub dir: PathBuf,
    /// Bytes per page/frame.
    pub page_size: usize,
    /// Buffer-frame capacity. Must be at least the replacement policy's
    /// capacity: the store trusts the policy to evict before admitting, and
    /// staging into a full arena is an error, not an implicit eviction.
    pub frames: usize,
    /// Whether staged writes go through the write-ahead log (on by
    /// default). Without it, a crash loses dirty frames.
    pub wal: bool,
    /// When the log also reaches the device: see [`Durability`]. Only
    /// meaningful while `wal` is on.
    pub durability: Durability,
    /// When non-zero, a staging call that finds at least this many dirty
    /// frames flushes a batch *inline* — deterministic write-back, used by
    /// the benchmarks. Zero leaves write-back to evictions, checkpoints, and
    /// the background [`crate::Flusher`].
    pub flush_threshold: usize,
    /// Dirty frames written back per flush pass (inline or background).
    pub flush_batch: usize,
    /// Background flusher period, when the embedding layer (e.g. the server
    /// cache) is asked to run one. The store itself does not spawn threads;
    /// see [`crate::Flusher`].
    pub flush_interval: Option<Duration>,
    /// Observability handle: trace spans (WAL append/fsync, group commit,
    /// flush passes, frame-latch waits) and latency histograms record here
    /// when enabled. Disabled by default, which costs nothing — the
    /// always-on [`IoStats`] counters do not depend on it.
    pub recorder: Recorder,
    /// Deterministic fault schedule armed at the disk and WAL I/O points
    /// ([`crate::FaultPoint`]). Disabled by default — one `Option` check
    /// per I/O. Faults injected here bump `store.injected_faults` in the
    /// store's metrics registry.
    pub fault: FaultInjector,
}

impl StoreConfig {
    /// A write-back store with `frames` buffer frames of
    /// [`DEFAULT_PAGE_SIZE`] bytes under `dir`, WAL on at
    /// [`Durability::Buffered`], no inline or background flushing.
    pub fn new(dir: impl AsRef<Path>, frames: usize) -> Self {
        StoreConfig {
            dir: dir.as_ref().to_path_buf(),
            page_size: DEFAULT_PAGE_SIZE,
            frames,
            wal: true,
            durability: Durability::Buffered,
            flush_threshold: 0,
            flush_batch: 64,
            flush_interval: None,
            recorder: Recorder::disabled(),
            fault: FaultInjector::disabled(),
        }
    }

    /// Sets the page size in bytes.
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        self.page_size = page_size;
        self
    }

    /// Enables or disables the write-ahead log.
    pub fn with_wal(mut self, wal: bool) -> Self {
        self.wal = wal;
        self
    }

    /// Sets the WAL durability level.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Sets the inline flush threshold (0 disables inline flushing).
    pub fn with_flush_threshold(mut self, threshold: usize) -> Self {
        self.flush_threshold = threshold;
        self
    }

    /// Sets the per-pass flush batch size (clamped to at least 1).
    pub fn with_flush_batch(mut self, batch: usize) -> Self {
        self.flush_batch = batch.max(1);
        self
    }

    /// Sets the background flusher period (picked up by embedding layers
    /// that spawn a [`crate::Flusher`]).
    pub fn with_flush_interval(mut self, interval: Duration) -> Self {
        self.flush_interval = Some(interval);
        self
    }

    /// Attaches an observability [`Recorder`]. Shards created through
    /// [`StoreConfig::for_shard`] share it (a `Recorder` clone shares the
    /// underlying registry and trace rings), so one recorder sees the whole
    /// deployment.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Arms a [`FaultInjector`] at the store's disk and WAL I/O points.
    /// Shards created through [`StoreConfig::for_shard`] share it (a clone
    /// shares the schedule and its counters), so one injector drives — and
    /// one set of counts observes — the whole deployment.
    pub fn with_fault_injector(mut self, fault: FaultInjector) -> Self {
        self.fault = fault;
        self
    }

    /// The configuration for shard `shard` of `shards`: identical except
    /// that multi-shard deployments place each shard's files in their own
    /// `shard-N` subdirectory. A single-shard deployment keeps the base
    /// directory itself, so existing single-store layouts (and their
    /// recovery paths) are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shards`.
    pub fn for_shard(&self, shard: usize, shards: usize) -> StoreConfig {
        assert!(shard < shards, "shard {shard} out of range for {shards}");
        let mut config = self.clone();
        if shards > 1 {
            config.dir = self.dir.join(format!("shard-{shard}"));
        }
        config
    }
}

/// Where a [`PageStore::read`] found its bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// Served from a resident buffer frame — no disk access.
    Buffer,
    /// Read from the backing file (a disk-tier access).
    Disk,
    /// The disk tier holds no copy: the read went to the disk and came back
    /// empty, so the page reads as zeroes (counted as a disk access — a
    /// real server would fetch the page from the underlying device all the
    /// same).
    Zero,
}

/// Registry-backed mirror of [`IoStats`]: the handles live in the store's
/// own [`MetricsRegistry`] under `store.*` names, cached here at open so
/// every hot-path bump is still one relaxed `fetch_add` — accounting never
/// serializes concurrent operations, and the same cells feed both
/// [`PageStore::io_stats`] (exact, always on) and
/// [`PageStore::metrics`] snapshots.
#[derive(Debug)]
struct IoCounters {
    bytes_read: Counter,
    bytes_written: Counter,
    buffer_hits: Counter,
    buffer_misses: Counter,
    disk_reads: Counter,
    disk_writes: Counter,
    disk_bytes_read: Counter,
    disk_bytes_written: Counter,
    pages_flushed: Counter,
    eviction_flushes: Counter,
    wal_records: Counter,
    wal_bytes: Counter,
    data_syncs: Counter,
    wal_syncs: Counter,
    group_commits: Counter,
    /// Registry-only (not part of [`IoStats`]): pages deleted via
    /// [`PageStore::delete`], surfaced through [`PageStore::metrics`].
    page_deletes: Counter,
}

impl IoCounters {
    fn new(registry: &MetricsRegistry) -> IoCounters {
        IoCounters {
            bytes_read: registry.counter("store.bytes_read"),
            bytes_written: registry.counter("store.bytes_written"),
            buffer_hits: registry.counter("store.buffer_hits"),
            buffer_misses: registry.counter("store.buffer_misses"),
            disk_reads: registry.counter("store.disk_reads"),
            disk_writes: registry.counter("store.disk_writes"),
            disk_bytes_read: registry.counter("store.disk_bytes_read"),
            disk_bytes_written: registry.counter("store.disk_bytes_written"),
            pages_flushed: registry.counter("store.pages_flushed"),
            eviction_flushes: registry.counter("store.eviction_flushes"),
            wal_records: registry.counter("store.wal_records"),
            wal_bytes: registry.counter("store.wal_bytes"),
            data_syncs: registry.counter("store.data_syncs"),
            wal_syncs: registry.counter("store.wal_syncs"),
            group_commits: registry.counter("store.group_commits"),
            page_deletes: registry.counter("store.page_deletes"),
        }
    }

    fn snapshot(&self) -> IoStats {
        IoStats {
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
            buffer_hits: self.buffer_hits.get(),
            buffer_misses: self.buffer_misses.get(),
            disk_reads: self.disk_reads.get(),
            disk_writes: self.disk_writes.get(),
            disk_bytes_read: self.disk_bytes_read.get(),
            disk_bytes_written: self.disk_bytes_written.get(),
            pages_flushed: self.pages_flushed.get(),
            eviction_flushes: self.eviction_flushes.get(),
            wal_records: self.wal_records.get(),
            wal_bytes: self.wal_bytes.get(),
            data_syncs: self.data_syncs.get(),
            wal_syncs: self.wal_syncs.get(),
            group_commits: self.group_commits.get(),
        }
    }
}

/// The disk-backed page store: buffer frames over a backing file, staged
/// write-back with optional WAL, forced flush on dirty eviction.
///
/// `Sync` with no store-wide lock — share it behind an `Arc` between
/// request threads and a [`crate::Flusher`]. Callers must serialize
/// operations on the *same* page (the sharded server does: one worker owns
/// each page's shard); operations on distinct pages run concurrently.
pub struct PageStore {
    disk: DiskManager,
    arena: FrameArena,
    wal: Option<Mutex<Wal>>,
    /// The store's own metrics registry — always on, backing
    /// [`PageStore::io_stats`] / [`PageStore::metrics`].
    registry: MetricsRegistry,
    io: IoCounters,
    /// Trace spans and histograms; zero-cost when disabled.
    recorder: Recorder,
    /// Serializes flush passes (inline-threshold and background), so two
    /// passes never double-write the same dirty set.
    flush_pass: Mutex<()>,
    flush_threshold: usize,
    flush_batch: usize,
    page_size: usize,
    durability: Durability,
    flush_interval: Option<Duration>,
    recovered_writes: u64,
}

impl std::fmt::Debug for PageStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageStore")
            .field("page_size", &self.page_size)
            .field("durability", &self.durability)
            .field("recovered_writes", &self.recovered_writes)
            .finish_non_exhaustive()
    }
}

/// Locks the WAL, surfacing poison as a clean I/O error instead of a
/// cascading panic.
fn wal_guard(wal: &Mutex<Wal>) -> io::Result<MutexGuard<'_, Wal>> {
    checked_lock(wal).map_err(|poisoned| io::Error::from(StoreError::from(poisoned)))
}

impl PageStore {
    /// Opens the store: creates `config.dir` if needed, opens the backing
    /// file, and — when the WAL is enabled — replays acknowledged writes
    /// that never reached the backing file, syncs them, and truncates the
    /// log. [`PageStore::recovered_writes`] reports how many records that
    /// replay applied.
    pub fn open(config: StoreConfig) -> io::Result<PageStore> {
        assert!(config.frames > 0, "at least one buffer frame is required");
        std::fs::create_dir_all(&config.dir)?;
        let registry = MetricsRegistry::new();
        config
            .fault
            .attach_counter(registry.counter("store.injected_faults"));
        let disk = DiskManager::open_with(
            &config.dir.join("store.pages"),
            config.page_size,
            config.fault.clone(),
        )?;
        let mut recovered_writes = 0u64;
        let wal = if config.wal {
            let (mut wal, records) = Wal::open_with(
                &config.dir.join("store.wal"),
                config.durability,
                config.fault.clone(),
            )?;
            for record in &records {
                match &record.op {
                    crate::wal::WalOp::Write(data) => {
                        if data.len() != config.page_size {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "WAL record page size disagrees with the store page size",
                            ));
                        }
                        disk.write_page(record.page, data)?;
                    }
                    crate::wal::WalOp::Delete => {
                        disk.free_page(record.page)?;
                    }
                }
                recovered_writes += 1;
            }
            if recovered_writes > 0 {
                disk.sync()?;
            }
            wal.truncate()?;
            Some(Mutex::new(wal))
        } else {
            None
        };
        let io = IoCounters::new(&registry);
        Ok(PageStore {
            disk,
            arena: FrameArena::new(config.frames, config.page_size)
                .with_recorder(config.recorder.clone()),
            wal,
            registry,
            io,
            recorder: config.recorder,
            flush_pass: Mutex::new(()),
            flush_threshold: config.flush_threshold,
            flush_batch: config.flush_batch,
            page_size: config.page_size,
            durability: config.durability,
            flush_interval: config.flush_interval,
            recovered_writes,
        })
    }

    /// Bytes per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The WAL durability level the store was opened with.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// The configured background flusher period, if any.
    pub fn flush_interval(&self) -> Option<Duration> {
        self.flush_interval
    }

    /// Acknowledged writes replayed from the WAL when the store was opened
    /// (zero after a clean shutdown, whose checkpoint empties the log).
    pub fn recovered_writes(&self) -> u64 {
        self.recovered_writes
    }

    /// Reads `page` into `out` (resized to one page): from its buffer frame
    /// if resident, otherwise from the disk tier. See [`ReadSource`] for the
    /// three outcomes; torn frames surface as
    /// [`io::ErrorKind::InvalidData`].
    ///
    /// A buffer hit touches one directory stripe and the frame's latch —
    /// no store-wide or disk-manager lock.
    pub fn read(&self, page: PageId, out: &mut Vec<u8>) -> io::Result<ReadSource> {
        out.clear();
        out.resize(self.page_size, 0);
        self.io.bytes_read.add(self.page_size as u64);
        if let Some(frame) = self.arena.read(page) {
            out.copy_from_slice(&frame);
            self.io.buffer_hits.inc();
            return Ok(ReadSource::Buffer);
        }
        self.io.buffer_misses.inc();
        self.io.disk_reads.inc();
        self.io.disk_bytes_read.add(self.page_size as u64);
        if self.disk.read_page(page, out)? {
            Ok(ReadSource::Disk)
        } else {
            Ok(ReadSource::Zero)
        }
    }

    /// Installs `data` as a *clean* resident frame for `page` (bytes just
    /// read from disk that the policy decided to admit). Fails if the arena
    /// is full — the policy must have evicted first.
    pub fn admit(&self, page: PageId, data: &[u8]) -> io::Result<()> {
        if !self.arena.install(page, data, false) {
            return Err(io::Error::other(
                "frame arena full: the policy must evict before admitting",
            ));
        }
        Ok(())
    }

    /// Stages a write-back write of `data` to `page`: appends a WAL record
    /// (the acknowledgement point — once this returns, the write survives a
    /// process crash, and the [`Durability`] level says when it also
    /// reaches the device), then installs or overwrites the page's frame
    /// dirty. When the inline flush threshold is reached, a batch of dirty
    /// frames is written back before returning.
    ///
    /// Fails if the page is not resident and the arena is full.
    pub fn stage(&self, page: PageId, data: &[u8]) -> io::Result<()> {
        assert_eq!(data.len(), self.page_size, "data must be one page");
        self.io.bytes_written.add(self.page_size as u64);
        if let Some(wal) = self.wal.as_ref() {
            let start_ns = self.recorder.clock().map(|clock| clock.now_nanos());
            let outcome = wal_guard(wal)?.append(page, data)?;
            self.io.wal_records.inc();
            self.io.wal_bytes.add(outcome.bytes);
            if outcome.synced {
                self.io.wal_syncs.inc();
            }
            if outcome.group_commit {
                self.io.group_commits.inc();
            }
            if let (Some(start_ns), Some(clock)) = (start_ns, self.recorder.clock()) {
                // One timed window covers append + (when it happened) the
                // sync: the fsync dominates, so the same interval is
                // reported under both kinds rather than re-latching the WAL
                // to time them separately.
                let end_ns = clock.now_nanos();
                self.recorder
                    .event(SpanKind::WalAppend, start_ns, end_ns, outcome.bytes);
                if outcome.synced {
                    self.recorder
                        .event(SpanKind::WalFsync, start_ns, end_ns, outcome.batch);
                }
                if outcome.group_commit {
                    self.recorder
                        .event(SpanKind::GroupCommit, start_ns, end_ns, outcome.batch);
                }
            }
        }
        let staged = match self.arena.write(page) {
            Some(mut frame) => {
                frame.copy_from_slice(data);
                true
            }
            None => false,
        };
        if !staged && !self.arena.install(page, data, true) {
            return Err(io::Error::other(
                "frame arena full: the policy must evict before staging",
            ));
        }
        if self.flush_threshold > 0 && self.arena.dirty_len() >= self.flush_threshold {
            self.flush_some(self.flush_batch)?;
        }
        Ok(())
    }

    /// Writes `data` straight to the backing file, bypassing the buffer
    /// (used when the policy declines to admit the page). The page must not
    /// be resident — a resident page is written through [`PageStore::stage`].
    pub fn write_through(&self, page: PageId, data: &[u8]) -> io::Result<()> {
        assert_eq!(data.len(), self.page_size, "data must be one page");
        debug_assert!(
            !self.arena.contains(page),
            "write_through on a resident page"
        );
        self.io.bytes_written.add(self.page_size as u64);
        self.disk.write_page(page, data)?;
        self.io.disk_writes.inc();
        self.io.disk_bytes_written.add(self.page_size as u64);
        Ok(())
    }

    /// Drops `page`'s buffer frame because the policy evicted it. A dirty
    /// frame is written back first — straight from the departing frame's
    /// bytes, no intermediate copy — and that is reported as `Ok(true)`.
    /// A no-op returning `Ok(false)` if the page is not resident.
    pub fn evict(&self, page: PageId) -> io::Result<bool> {
        match self.arena.evict(page) {
            Some(frame) if frame.dirty() => {
                self.disk.write_page(page, &frame)?;
                self.io.disk_writes.inc();
                self.io.disk_bytes_written.add(self.page_size as u64);
                self.io.pages_flushed.inc();
                self.io.eviction_flushes.inc();
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Deletes `page` from the store: any resident frame is discarded
    /// *without* write-back (deleted bytes must not resurrect via a flush),
    /// a WAL delete record is appended when the log is on (so crash
    /// recovery replays the delete instead of resurrecting the page from an
    /// earlier staged write), and the page is freed in the backing file.
    /// Returns whether the backing file held the page.
    ///
    /// Same caller contract as every other per-page operation: operations
    /// on the same page must be serialized by the caller.
    pub fn delete(&self, page: PageId) -> io::Result<bool> {
        // Evict first: the guard drains pins, so no concurrent flush pass
        // can still be holding the frame to write it back after the free.
        let _ = self.arena.evict(page);
        if let Some(wal) = self.wal.as_ref() {
            let outcome = wal_guard(wal)?.append_delete(page)?;
            self.io.wal_records.inc();
            self.io.wal_bytes.add(outcome.bytes);
            if outcome.synced {
                self.io.wal_syncs.inc();
            }
            if outcome.group_commit {
                self.io.group_commits.inc();
            }
        }
        self.io.page_deletes.inc();
        self.disk.free_page(page)
    }

    /// Writes back up to `max` dirty frames (marking them clean, keeping
    /// them resident). Returns how many were flushed. This is the background
    /// [`crate::Flusher`]'s entry point; passes serialize on the flush
    /// mutex but hold only per-frame read pins while writing.
    pub fn flush_some(&self, max: usize) -> io::Result<usize> {
        let _pass = recover_lock(&self.flush_pass);
        let mut span = self.recorder.span(SpanKind::FlushPass);
        let mut list = Vec::new();
        self.arena.dirty_pages(max, &mut list);
        let mut flushed = 0usize;
        for &page in &list {
            // The page may have been evicted (and even re-installed clean)
            // since the listing; a read pin pins down whatever is resident
            // now, and writing a clean copy back is harmless.
            let Some(frame) = self.arena.read(page) else {
                continue;
            };
            self.disk.write_page(page, &frame)?;
            frame.mark_clean();
            drop(frame);
            self.io.disk_writes.inc();
            self.io.disk_bytes_written.add(self.page_size as u64);
            self.io.pages_flushed.inc();
            flushed += 1;
        }
        if flushed == 0 {
            // Idle flusher wake-ups would otherwise flood the trace ring.
            span.cancel();
        } else {
            span.set_detail(flushed as u64);
        }
        Ok(flushed)
    }

    /// Writes back every dirty frame. Returns how many were flushed.
    pub fn flush_all(&self) -> io::Result<usize> {
        self.flush_some(self.arena.capacity())
    }

    /// Clean shutdown / durability point: flushes every dirty frame, syncs
    /// the backing file, and truncates the WAL (its records are now
    /// redundant). Returns how many frames the flush wrote back.
    pub fn checkpoint(&self) -> io::Result<usize> {
        let flushed = self.flush_all()?;
        self.disk.sync()?;
        self.io.data_syncs.inc();
        if let Some(wal) = self.wal.as_ref() {
            let mut wal = wal_guard(wal)?;
            wal.truncate()?;
            wal.sync()?;
            self.io.wal_syncs.inc();
        }
        Ok(flushed)
    }

    /// A snapshot of the byte-level I/O counters (activity since open).
    pub fn io_stats(&self) -> IoStats {
        self.io.snapshot()
    }

    /// A named snapshot of the store's own metrics registry (the `store.*`
    /// counters behind [`PageStore::io_stats`]). Always available —
    /// counters do not depend on a [`Recorder`] being attached — and
    /// mergeable across shard stores via
    /// [`MetricsSnapshot::merge`].
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The observability recorder the store was opened with (disabled by
    /// default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Number of resident buffer frames.
    pub fn buffered_len(&self) -> usize {
        self.arena.len()
    }

    /// Number of resident dirty frames.
    pub fn dirty_len(&self) -> usize {
        self.arena.dirty_len()
    }

    /// Whether `page` is resident in a buffer frame.
    pub fn contains_buffered(&self, page: PageId) -> bool {
        self.arena.contains(page)
    }

    /// Number of live pages in the backing file.
    pub fn pages_on_disk(&self) -> usize {
        self.disk.allocated_pages()
    }

    /// Bytes of acknowledged WAL (zero when the WAL is off).
    pub fn wal_len(&self) -> u64 {
        match self.wal.as_ref() {
            Some(wal) => recover_lock(wal).len_bytes(),
            None => 0,
        }
    }

    /// Bytes of WAL known flushed to the device — what survives even a
    /// kernel crash, always a record boundary (zero when the WAL is off).
    /// The durability-level crash tests truncate the log here to model
    /// losing OS-buffered bytes.
    pub fn wal_synced_len(&self) -> u64 {
        match self.wal.as_ref() {
            Some(wal) => recover_lock(wal).synced_len(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clic-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn payload(seed: u8, page_size: usize) -> Vec<u8> {
        (0..page_size).map(|i| seed.wrapping_add(i as u8)).collect()
    }

    #[test]
    fn read_paths_and_byte_accounting() {
        let dir = temp_dir("paths");
        let store = PageStore::open(StoreConfig::new(&dir, 4).with_page_size(64)).unwrap();
        let mut out = Vec::new();
        // Never-written page: disk tier comes back empty, reads as zeroes.
        assert_eq!(store.read(PageId(9), &mut out).unwrap(), ReadSource::Zero);
        assert_eq!(out, vec![0u8; 64]);
        // Staged write is a buffer hit...
        store.stage(PageId(1), &payload(1, 64)).unwrap();
        assert_eq!(store.read(PageId(1), &mut out).unwrap(), ReadSource::Buffer);
        assert_eq!(out, payload(1, 64));
        // ...and once evicted (dirty → forced flush) it comes from disk.
        assert!(store.evict(PageId(1)).unwrap());
        assert_eq!(store.read(PageId(1), &mut out).unwrap(), ReadSource::Disk);
        assert_eq!(out, payload(1, 64));
        let io = store.io_stats();
        assert_eq!(io.buffer_hits, 1);
        assert_eq!(io.buffer_misses, 2);
        assert_eq!(io.disk_reads, 2);
        assert_eq!(io.disk_writes, 1);
        assert_eq!(io.eviction_flushes, 1);
        assert_eq!(io.bytes_read, 3 * 64);
        assert_eq!(io.bytes_written, 64);
        assert_eq!(io.wal_records, 1);
        assert_eq!(io.wal_syncs, 0, "buffered durability never syncs inline");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admit_is_clean_and_bounded_by_the_arena() {
        let dir = temp_dir("admit");
        let store = PageStore::open(StoreConfig::new(&dir, 2).with_page_size(32)).unwrap();
        store.admit(PageId(1), &payload(1, 32)).unwrap();
        store.admit(PageId(2), &payload(2, 32)).unwrap();
        assert_eq!(store.dirty_len(), 0);
        let err = store.admit(PageId(3), &payload(3, 32)).unwrap_err();
        assert!(err.to_string().contains("evict"));
        // Clean eviction writes nothing back.
        assert!(!store.evict(PageId(1)).unwrap());
        assert_eq!(store.io_stats().disk_writes, 0);
        store.admit(PageId(3), &payload(3, 32)).unwrap();
        assert_eq!(store.buffered_len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inline_flush_threshold_bounds_dirty_frames() {
        let dir = temp_dir("threshold");
        let store = PageStore::open(
            StoreConfig::new(&dir, 8)
                .with_page_size(32)
                .with_flush_threshold(3)
                .with_flush_batch(2),
        )
        .unwrap();
        for p in 0..6u64 {
            store.stage(PageId(p), &payload(p as u8, 32)).unwrap();
        }
        // Every time the dirty count reaches 3 a batch of 2 is flushed, so
        // it can never exceed the threshold.
        assert!(store.dirty_len() <= 3);
        assert!(store.io_stats().pages_flushed >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_then_reopen_recovers_nothing() {
        let dir = temp_dir("checkpoint");
        {
            let store = PageStore::open(StoreConfig::new(&dir, 4).with_page_size(32)).unwrap();
            store.stage(PageId(7), &payload(7, 32)).unwrap();
            store.checkpoint().unwrap();
        }
        let store = PageStore::open(StoreConfig::new(&dir, 4).with_page_size(32)).unwrap();
        assert_eq!(store.recovered_writes(), 0, "clean shutdown leaves no WAL");
        let mut out = Vec::new();
        assert_eq!(store.read(PageId(7), &mut out).unwrap(), ReadSource::Disk);
        assert_eq!(out, payload(7, 32));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_without_checkpoint_recovers_from_wal() {
        let dir = temp_dir("crash");
        {
            let store = PageStore::open(StoreConfig::new(&dir, 4).with_page_size(32)).unwrap();
            store.stage(PageId(1), &payload(1, 32)).unwrap();
            store.stage(PageId(2), &payload(2, 32)).unwrap();
            store.stage(PageId(1), &payload(9, 32)).unwrap(); // overwrite
            assert_eq!(store.pages_on_disk(), 0, "nothing flushed yet");
        } // crash: dropped without checkpoint, dirty frames lost
        let store = PageStore::open(StoreConfig::new(&dir, 4).with_page_size(32)).unwrap();
        assert_eq!(store.recovered_writes(), 3);
        let mut out = Vec::new();
        assert_eq!(store.read(PageId(1), &mut out).unwrap(), ReadSource::Disk);
        assert_eq!(out, payload(9, 32), "last acknowledged write wins");
        assert_eq!(store.read(PageId(2), &mut out).unwrap(), ReadSource::Disk);
        assert_eq!(out, payload(2, 32));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delete_discards_frame_disk_copy_and_survives_a_crash() {
        let dir = temp_dir("delete");
        {
            let store = PageStore::open(StoreConfig::new(&dir, 4).with_page_size(32)).unwrap();
            // Flushed page: delete must free the disk copy.
            store.stage(PageId(1), &payload(1, 32)).unwrap();
            store.flush_all().unwrap();
            assert_eq!(store.pages_on_disk(), 1);
            assert!(store.delete(PageId(1)).unwrap());
            assert_eq!(store.pages_on_disk(), 0);
            assert!(!store.contains_buffered(PageId(1)));
            let mut out = Vec::new();
            assert_eq!(store.read(PageId(1), &mut out).unwrap(), ReadSource::Zero);
            assert_eq!(store.metrics().counter("store.page_deletes"), 1);
            // Dirty, never-flushed page: the WAL holds an acknowledged
            // write, so the delete record must win at replay.
            store.stage(PageId(2), &payload(2, 32)).unwrap();
            assert!(!store.delete(PageId(2)).unwrap(), "never reached disk");
        } // crash: no checkpoint, WAL replays on reopen
        let store = PageStore::open(StoreConfig::new(&dir, 4).with_page_size(32)).unwrap();
        let mut out = Vec::new();
        assert_eq!(
            store.read(PageId(2), &mut out).unwrap(),
            ReadSource::Zero,
            "replayed delete must not resurrect the staged write"
        );
        assert_eq!(store.read(PageId(1), &mut out).unwrap(), ReadSource::Zero);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn without_wal_a_crash_loses_staged_writes() {
        let dir = temp_dir("nowal");
        {
            let store =
                PageStore::open(StoreConfig::new(&dir, 4).with_page_size(32).with_wal(false))
                    .unwrap();
            store.stage(PageId(1), &payload(1, 32)).unwrap();
        }
        let store =
            PageStore::open(StoreConfig::new(&dir, 4).with_page_size(32).with_wal(false)).unwrap();
        let mut out = Vec::new();
        assert_eq!(store.read(PageId(1), &mut out).unwrap(), ReadSource::Zero);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durability_levels_account_their_syncs() {
        let page = |p: u64| PageId(p);
        // Strict: one WAL sync per staged write.
        let dir = temp_dir("strict");
        let store = PageStore::open(
            StoreConfig::new(&dir, 8)
                .with_page_size(32)
                .with_durability(Durability::Strict),
        )
        .unwrap();
        for p in 0..5u64 {
            store.stage(page(p), &payload(p as u8, 32)).unwrap();
        }
        let strict_io = store.io_stats();
        assert_eq!(strict_io.wal_syncs, 5);
        assert_eq!(strict_io.group_commits, 0);
        assert_eq!(store.wal_synced_len(), store.wal_len());
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);

        // Group commit: one sync per max_batch appends.
        let dir = temp_dir("group");
        let store = PageStore::open(
            StoreConfig::new(&dir, 8)
                .with_page_size(32)
                .with_durability(Durability::GroupCommit {
                    max_batch: 5,
                    max_wait: Duration::from_secs(3600),
                }),
        )
        .unwrap();
        for p in 0..5u64 {
            store.stage(page(p), &payload(p as u8, 32)).unwrap();
        }
        let group_io = store.io_stats();
        assert_eq!(group_io.wal_syncs, 1, "five appends share one sync");
        assert_eq!(group_io.group_commits, 1);
        assert!(group_io.fsyncs() < strict_io.fsyncs());
        assert_eq!(store.wal_synced_len(), store.wal_len());
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_readers_and_writers_on_disjoint_pages() {
        let dir = temp_dir("concurrent");
        let store = std::sync::Arc::new(
            PageStore::open(StoreConfig::new(&dir, 64).with_page_size(32)).unwrap(),
        );
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for i in 0..8u64 {
                        let page = PageId(t * 1_000 + i);
                        let data = payload((t * 8 + i) as u8, 32);
                        store.stage(page, &data).unwrap();
                        assert_eq!(store.read(page, &mut out).unwrap(), ReadSource::Buffer);
                        assert_eq!(out, data);
                    }
                });
            }
        });
        assert_eq!(store.buffered_len(), 32);
        let io = store.io_stats();
        assert_eq!(io.buffer_hits, 32);
        assert_eq!(io.wal_records, 32);
        assert_eq!(store.checkpoint().unwrap(), 32);
        assert_eq!(store.dirty_len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
