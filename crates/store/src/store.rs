//! [`PageStore`]: the thread-safe façade over [`DiskManager`] +
//! [`FrameArena`] + [`Wal`], with byte-level I/O accounting.
//!
//! One mutex guards the whole data plane — the policy layer above
//! (`ShardedClic`) already serializes per shard, and the paper's experiments
//! are disk-read-bound, not lock-bound. Reads prefer the arena and fall back
//! to the disk tier; writes are staged write-back (WAL append = the
//! acknowledgement point, then a dirty frame); evicting a dirty page forces
//! its write-back; a checkpoint flushes everything, syncs the data file, and
//! truncates the WAL. Every operation updates a [`IoStats`] that callers
//! snapshot with [`PageStore::io_stats`].

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use cache_sim::{IoStats, PageId};

use crate::disk::DiskManager;
use crate::frame::FrameArena;
use crate::wal::Wal;

/// The paper-typical page size: 4 KiB.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Configuration for a [`PageStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the backing files (`store.pages`, `store.wal`);
    /// created if missing.
    pub dir: PathBuf,
    /// Bytes per page/frame.
    pub page_size: usize,
    /// Buffer-frame capacity. Must be at least the replacement policy's
    /// capacity: the store trusts the policy to evict before admitting, and
    /// staging into a full arena is an error, not an implicit eviction.
    pub frames: usize,
    /// Whether staged writes go through the write-ahead log (on by
    /// default). Without it, a crash loses dirty frames.
    pub wal: bool,
    /// When non-zero, a staging call that finds at least this many dirty
    /// frames flushes a batch *inline* — deterministic write-back, used by
    /// the benchmarks. Zero leaves write-back to evictions, checkpoints, and
    /// the background [`crate::Flusher`].
    pub flush_threshold: usize,
    /// Dirty frames written back per flush pass (inline or background).
    pub flush_batch: usize,
    /// Background flusher period, when the embedding layer (e.g. the server
    /// cache) is asked to run one. The store itself does not spawn threads;
    /// see [`crate::Flusher`].
    pub flush_interval: Option<Duration>,
}

impl StoreConfig {
    /// A write-back store with `frames` buffer frames of
    /// [`DEFAULT_PAGE_SIZE`] bytes under `dir`, WAL on, no inline or
    /// background flushing.
    pub fn new(dir: impl AsRef<Path>, frames: usize) -> Self {
        StoreConfig {
            dir: dir.as_ref().to_path_buf(),
            page_size: DEFAULT_PAGE_SIZE,
            frames,
            wal: true,
            flush_threshold: 0,
            flush_batch: 64,
            flush_interval: None,
        }
    }

    /// Sets the page size in bytes.
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        self.page_size = page_size;
        self
    }

    /// Enables or disables the write-ahead log.
    pub fn with_wal(mut self, wal: bool) -> Self {
        self.wal = wal;
        self
    }

    /// Sets the inline flush threshold (0 disables inline flushing).
    pub fn with_flush_threshold(mut self, threshold: usize) -> Self {
        self.flush_threshold = threshold;
        self
    }

    /// Sets the per-pass flush batch size (clamped to at least 1).
    pub fn with_flush_batch(mut self, batch: usize) -> Self {
        self.flush_batch = batch.max(1);
        self
    }

    /// Sets the background flusher period (picked up by embedding layers
    /// that spawn a [`crate::Flusher`]).
    pub fn with_flush_interval(mut self, interval: Duration) -> Self {
        self.flush_interval = Some(interval);
        self
    }
}

/// Where a [`PageStore::read`] found its bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// Served from a resident buffer frame — no disk access.
    Buffer,
    /// Read from the backing file (a disk-tier access).
    Disk,
    /// The disk tier holds no copy: the read went to the disk and came back
    /// empty, so the page reads as zeroes (counted as a disk access — a
    /// real server would fetch the page from the underlying device all the
    /// same).
    Zero,
}

struct Inner {
    disk: DiskManager,
    arena: FrameArena,
    wal: Option<Wal>,
    io: IoStats,
    flush_threshold: usize,
    flush_batch: usize,
    /// Page-sized scratch for evictions and flushes.
    scratch: Vec<u8>,
    /// Page-id scratch for flush passes.
    flush_list: Vec<PageId>,
}

/// The disk-backed page store: buffer frames over a backing file, staged
/// write-back with optional WAL, forced flush on dirty eviction.
///
/// `Sync` — share it behind an `Arc` between the request path and a
/// [`crate::Flusher`].
pub struct PageStore {
    inner: Mutex<Inner>,
    page_size: usize,
    flush_interval: Option<Duration>,
    recovered_writes: u64,
}

impl std::fmt::Debug for PageStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageStore")
            .field("page_size", &self.page_size)
            .field("recovered_writes", &self.recovered_writes)
            .finish_non_exhaustive()
    }
}

impl PageStore {
    /// Opens the store: creates `config.dir` if needed, opens the backing
    /// file, and — when the WAL is enabled — replays acknowledged writes
    /// that never reached the backing file, syncs them, and truncates the
    /// log. [`PageStore::recovered_writes`] reports how many records that
    /// replay applied.
    pub fn open(config: StoreConfig) -> io::Result<PageStore> {
        assert!(config.frames > 0, "at least one buffer frame is required");
        std::fs::create_dir_all(&config.dir)?;
        let mut disk = DiskManager::open(&config.dir.join("store.pages"), config.page_size)?;
        let mut recovered_writes = 0u64;
        let wal = if config.wal {
            let (mut wal, records) = Wal::open(&config.dir.join("store.wal"))?;
            for record in &records {
                if record.data.len() != config.page_size {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "WAL record page size disagrees with the store page size",
                    ));
                }
                disk.write_page(record.page, &record.data)?;
                recovered_writes += 1;
            }
            if recovered_writes > 0 {
                disk.sync()?;
            }
            wal.truncate()?;
            Some(wal)
        } else {
            None
        };
        Ok(PageStore {
            inner: Mutex::new(Inner {
                disk,
                arena: FrameArena::new(config.frames, config.page_size),
                wal,
                io: IoStats::new(),
                flush_threshold: config.flush_threshold,
                flush_batch: config.flush_batch,
                scratch: vec![0u8; config.page_size],
                flush_list: Vec::new(),
            }),
            page_size: config.page_size,
            flush_interval: config.flush_interval,
            recovered_writes,
        })
    }

    /// Bytes per page.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The configured background flusher period, if any.
    pub fn flush_interval(&self) -> Option<Duration> {
        self.flush_interval
    }

    /// Acknowledged writes replayed from the WAL when the store was opened
    /// (zero after a clean shutdown, whose checkpoint empties the log).
    pub fn recovered_writes(&self) -> u64 {
        self.recovered_writes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("page store lock poisoned")
    }

    /// Reads `page` into `out` (resized to one page): from its buffer frame
    /// if resident, otherwise from the disk tier. See [`ReadSource`] for the
    /// three outcomes; torn frames surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn read(&self, page: PageId, out: &mut Vec<u8>) -> io::Result<ReadSource> {
        let mut inner = self.lock();
        out.clear();
        out.resize(self.page_size, 0);
        inner.io.bytes_read += self.page_size as u64;
        if inner.arena.copy_out(page, out) {
            inner.io.buffer_hits += 1;
            return Ok(ReadSource::Buffer);
        }
        inner.io.buffer_misses += 1;
        inner.io.disk_reads += 1;
        inner.io.disk_bytes_read += self.page_size as u64;
        if inner.disk.read_page(page, out)? {
            Ok(ReadSource::Disk)
        } else {
            Ok(ReadSource::Zero)
        }
    }

    /// Installs `data` as a *clean* resident frame for `page` (bytes just
    /// read from disk that the policy decided to admit). Fails if the arena
    /// is full — the policy must have evicted first.
    pub fn admit(&self, page: PageId, data: &[u8]) -> io::Result<()> {
        let mut inner = self.lock();
        if !inner.arena.install(page, data, false) {
            return Err(io::Error::other(
                "frame arena full: the policy must evict before admitting",
            ));
        }
        Ok(())
    }

    /// Stages a write-back write of `data` to `page`: appends a WAL record
    /// (the acknowledgement point — once this returns, the write survives a
    /// process crash), then installs or overwrites the page's frame dirty.
    /// When the inline flush threshold is reached, a batch of dirty frames
    /// is written back before returning.
    ///
    /// Fails if the page is not resident and the arena is full.
    pub fn stage(&self, page: PageId, data: &[u8]) -> io::Result<()> {
        assert_eq!(data.len(), self.page_size, "data must be one page");
        let mut inner = self.lock();
        inner.io.bytes_written += self.page_size as u64;
        if let Some(wal) = inner.wal.as_mut() {
            let appended = wal.append(page, data)?;
            inner.io.wal_records += 1;
            inner.io.wal_bytes += appended;
        }
        let staged = match inner.arena.write(page) {
            Some(mut frame) => {
                frame.copy_from_slice(data);
                true
            }
            None => false,
        };
        if !staged && !inner.arena.install(page, data, true) {
            return Err(io::Error::other(
                "frame arena full: the policy must evict before staging",
            ));
        }
        if inner.flush_threshold > 0 && inner.arena.dirty_len() >= inner.flush_threshold {
            let batch = inner.flush_batch;
            Self::flush_locked(&mut inner, batch)?;
        }
        Ok(())
    }

    /// Writes `data` straight to the backing file, bypassing the buffer
    /// (used when the policy declines to admit the page). The page must not
    /// be resident — a resident page is written through [`PageStore::stage`].
    pub fn write_through(&self, page: PageId, data: &[u8]) -> io::Result<()> {
        assert_eq!(data.len(), self.page_size, "data must be one page");
        let mut inner = self.lock();
        debug_assert!(
            !inner.arena.contains(page),
            "write_through on a resident page"
        );
        inner.io.bytes_written += self.page_size as u64;
        inner.disk.write_page(page, data)?;
        inner.io.disk_writes += 1;
        inner.io.disk_bytes_written += self.page_size as u64;
        Ok(())
    }

    /// Drops `page`'s buffer frame because the policy evicted it. A dirty
    /// frame is written back first (the forced flush of the paper's
    /// write-back model); returns whether that happened. A no-op returning
    /// `Ok(false)` if the page is not resident.
    pub fn evict(&self, page: PageId) -> io::Result<bool> {
        let mut inner = self.lock();
        let inner = &mut *inner;
        match inner.arena.evict_into(page, &mut inner.scratch) {
            Some(true) => {
                inner.disk.write_page(page, &inner.scratch)?;
                inner.io.disk_writes += 1;
                inner.io.disk_bytes_written += self.page_size as u64;
                inner.io.pages_flushed += 1;
                inner.io.eviction_flushes += 1;
                Ok(true)
            }
            Some(false) => Ok(false),
            None => Ok(false),
        }
    }

    fn flush_locked(inner: &mut Inner, max: usize) -> io::Result<usize> {
        inner.flush_list.clear();
        let Inner {
            disk,
            arena,
            io,
            scratch,
            flush_list,
            ..
        } = inner;
        arena.dirty_pages(max, flush_list);
        for &page in flush_list.iter() {
            if !arena.copy_out(page, scratch) {
                continue;
            }
            disk.write_page(page, scratch)?;
            arena.mark_clean(page);
            io.disk_writes += 1;
            io.disk_bytes_written += scratch.len() as u64;
            io.pages_flushed += 1;
        }
        Ok(flush_list.len())
    }

    /// Writes back up to `max` dirty frames (marking them clean, keeping
    /// them resident). Returns how many were flushed. This is the background
    /// [`crate::Flusher`]'s entry point.
    pub fn flush_some(&self, max: usize) -> io::Result<usize> {
        let mut inner = self.lock();
        Self::flush_locked(&mut inner, max)
    }

    /// Writes back every dirty frame. Returns how many were flushed.
    pub fn flush_all(&self) -> io::Result<usize> {
        let mut inner = self.lock();
        let all = inner.arena.capacity();
        Self::flush_locked(&mut inner, all)
    }

    /// Clean shutdown / durability point: flushes every dirty frame, syncs
    /// the backing file, and truncates the WAL (its records are now
    /// redundant). Returns how many frames the flush wrote back.
    pub fn checkpoint(&self) -> io::Result<usize> {
        let mut inner = self.lock();
        let all = inner.arena.capacity();
        let flushed = Self::flush_locked(&mut inner, all)?;
        inner.disk.sync()?;
        if let Some(wal) = inner.wal.as_mut() {
            wal.truncate()?;
            wal.sync()?;
        }
        Ok(flushed)
    }

    /// A snapshot of the byte-level I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.lock().io
    }

    /// Number of resident buffer frames.
    pub fn buffered_len(&self) -> usize {
        self.lock().arena.len()
    }

    /// Number of resident dirty frames.
    pub fn dirty_len(&self) -> usize {
        self.lock().arena.dirty_len()
    }

    /// Whether `page` is resident in a buffer frame.
    pub fn contains_buffered(&self, page: PageId) -> bool {
        self.lock().arena.contains(page)
    }

    /// Number of live pages in the backing file.
    pub fn pages_on_disk(&self) -> usize {
        self.lock().disk.allocated_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("clic-store-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn payload(seed: u8, page_size: usize) -> Vec<u8> {
        (0..page_size).map(|i| seed.wrapping_add(i as u8)).collect()
    }

    #[test]
    fn read_paths_and_byte_accounting() {
        let dir = temp_dir("paths");
        let store = PageStore::open(StoreConfig::new(&dir, 4).with_page_size(64)).unwrap();
        let mut out = Vec::new();
        // Never-written page: disk tier comes back empty, reads as zeroes.
        assert_eq!(store.read(PageId(9), &mut out).unwrap(), ReadSource::Zero);
        assert_eq!(out, vec![0u8; 64]);
        // Staged write is a buffer hit...
        store.stage(PageId(1), &payload(1, 64)).unwrap();
        assert_eq!(store.read(PageId(1), &mut out).unwrap(), ReadSource::Buffer);
        assert_eq!(out, payload(1, 64));
        // ...and once evicted (dirty → forced flush) it comes from disk.
        assert!(store.evict(PageId(1)).unwrap());
        assert_eq!(store.read(PageId(1), &mut out).unwrap(), ReadSource::Disk);
        assert_eq!(out, payload(1, 64));
        let io = store.io_stats();
        assert_eq!(io.buffer_hits, 1);
        assert_eq!(io.buffer_misses, 2);
        assert_eq!(io.disk_reads, 2);
        assert_eq!(io.disk_writes, 1);
        assert_eq!(io.eviction_flushes, 1);
        assert_eq!(io.bytes_read, 3 * 64);
        assert_eq!(io.bytes_written, 64);
        assert_eq!(io.wal_records, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn admit_is_clean_and_bounded_by_the_arena() {
        let dir = temp_dir("admit");
        let store = PageStore::open(StoreConfig::new(&dir, 2).with_page_size(32)).unwrap();
        store.admit(PageId(1), &payload(1, 32)).unwrap();
        store.admit(PageId(2), &payload(2, 32)).unwrap();
        assert_eq!(store.dirty_len(), 0);
        let err = store.admit(PageId(3), &payload(3, 32)).unwrap_err();
        assert!(err.to_string().contains("evict"));
        // Clean eviction writes nothing back.
        assert!(!store.evict(PageId(1)).unwrap());
        assert_eq!(store.io_stats().disk_writes, 0);
        store.admit(PageId(3), &payload(3, 32)).unwrap();
        assert_eq!(store.buffered_len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inline_flush_threshold_bounds_dirty_frames() {
        let dir = temp_dir("threshold");
        let store = PageStore::open(
            StoreConfig::new(&dir, 8)
                .with_page_size(32)
                .with_flush_threshold(3)
                .with_flush_batch(2),
        )
        .unwrap();
        for p in 0..6u64 {
            store.stage(PageId(p), &payload(p as u8, 32)).unwrap();
        }
        // Every time the dirty count reaches 3 a batch of 2 is flushed, so
        // it can never exceed the threshold.
        assert!(store.dirty_len() <= 3);
        assert!(store.io_stats().pages_flushed >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_then_reopen_recovers_nothing() {
        let dir = temp_dir("checkpoint");
        {
            let store = PageStore::open(StoreConfig::new(&dir, 4).with_page_size(32)).unwrap();
            store.stage(PageId(7), &payload(7, 32)).unwrap();
            store.checkpoint().unwrap();
        }
        let store = PageStore::open(StoreConfig::new(&dir, 4).with_page_size(32)).unwrap();
        assert_eq!(store.recovered_writes(), 0, "clean shutdown leaves no WAL");
        let mut out = Vec::new();
        assert_eq!(store.read(PageId(7), &mut out).unwrap(), ReadSource::Disk);
        assert_eq!(out, payload(7, 32));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_without_checkpoint_recovers_from_wal() {
        let dir = temp_dir("crash");
        {
            let store = PageStore::open(StoreConfig::new(&dir, 4).with_page_size(32)).unwrap();
            store.stage(PageId(1), &payload(1, 32)).unwrap();
            store.stage(PageId(2), &payload(2, 32)).unwrap();
            store.stage(PageId(1), &payload(9, 32)).unwrap(); // overwrite
            assert_eq!(store.pages_on_disk(), 0, "nothing flushed yet");
        } // crash: dropped without checkpoint, dirty frames lost
        let store = PageStore::open(StoreConfig::new(&dir, 4).with_page_size(32)).unwrap();
        assert_eq!(store.recovered_writes(), 3);
        let mut out = Vec::new();
        assert_eq!(store.read(PageId(1), &mut out).unwrap(), ReadSource::Disk);
        assert_eq!(out, payload(9, 32), "last acknowledged write wins");
        assert_eq!(store.read(PageId(2), &mut out).unwrap(), ReadSource::Disk);
        assert_eq!(out, payload(2, 32));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn without_wal_a_crash_loses_staged_writes() {
        let dir = temp_dir("nowal");
        {
            let store =
                PageStore::open(StoreConfig::new(&dir, 4).with_page_size(32).with_wal(false))
                    .unwrap();
            store.stage(PageId(1), &payload(1, 32)).unwrap();
        }
        let store =
            PageStore::open(StoreConfig::new(&dir, 4).with_page_size(32).with_wal(false)).unwrap();
        let mut out = Vec::new();
        assert_eq!(store.read(PageId(1), &mut out).unwrap(), ReadSource::Zero);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
