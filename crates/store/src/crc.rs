//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), used to detect torn disk
//! frames and torn write-ahead-log records.
//!
//! Hand-rolled because the workspace is dependency-free by construction: the
//! table is built at compile time and the streaming state is four bytes, so
//! this costs nothing over a crates.io implementation for our frame sizes.

/// The reflected CRC-32 polynomial (IEEE 802.3 / zlib / PNG).
const POLYNOMIAL: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLYNOMIAL
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 state: feed byte slices with [`Crc32::update`], read the
/// checksum with [`Crc32::finish`].
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state (equivalent to a checksum over zero bytes so far).
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &byte in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// The checksum over everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(data);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // The standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut streaming = Crc32::new();
        streaming.update(&data[..10]);
        streaming.update(&data[10..]);
        assert_eq!(streaming.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let mut data = vec![0u8; 4096];
        data[17] = 0x55;
        let clean = crc32(&data);
        for flip in [0usize, 17, 4095] {
            data[flip] ^= 0x01;
            assert_ne!(crc32(&data), clean, "flip at {flip} must be detected");
            data[flip] ^= 0x01;
        }
        assert_eq!(crc32(&data), clean);
    }
}
