//! [`Flusher`]: a background thread that writes dirty frames back on a
//! fixed period.
//!
//! The store itself never spawns threads — deterministic callers (the
//! benchmarks) use the inline flush threshold instead, and the server cache
//! attaches a `Flusher` when [`crate::StoreConfig::flush_interval`] is set.
//! Dropping the flusher stops the thread and joins it; it does **not** flush
//! on the way out, so dropping a store+flusher pair without a checkpoint
//! still models a crash.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::store::PageStore;

/// Handle to a background flush thread over a shared [`PageStore`].
#[derive(Debug)]
pub struct Flusher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Flusher {
    /// Spawns a thread that flushes up to `batch` dirty frames every
    /// `interval` until the handle is dropped. I/O errors in the background
    /// stop the thread (the next foreground flush or checkpoint will surface
    /// the underlying problem).
    pub fn start(store: Arc<PageStore>, interval: Duration, batch: usize) -> Flusher {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let batch = batch.max(1);
        let handle = std::thread::spawn(move || {
            while !thread_stop.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if thread_stop.load(Ordering::Relaxed) {
                    break;
                }
                if store.flush_some(batch).is_err() {
                    break;
                }
            }
        });
        Flusher {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the thread and joins it (also done on drop).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use cache_sim::PageId;

    #[test]
    fn background_flusher_drains_dirty_frames() {
        let dir = std::env::temp_dir().join(format!("clic-flusher-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store =
            Arc::new(PageStore::open(StoreConfig::new(&dir, 16).with_page_size(32)).unwrap());
        for p in 0..8u64 {
            store.stage(PageId(p), &[p as u8; 32]).unwrap();
        }
        assert_eq!(store.dirty_len(), 8);
        let mut flusher = Flusher::start(Arc::clone(&store), Duration::from_millis(1), 4);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while store.dirty_len() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        flusher.stop();
        assert_eq!(
            store.dirty_len(),
            0,
            "flusher should drain all dirty frames"
        );
        assert_eq!(store.io_stats().pages_flushed, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
