//! [`Flusher`]: a background thread that writes dirty frames back on a
//! fixed period — now spanning *all* of a server's per-shard stores — with
//! a bounded, timeout-surfacing stop.
//!
//! The store itself never spawns threads — deterministic callers (the
//! benchmarks) use the inline flush threshold instead, and the server cache
//! attaches one `Flusher` over its shard stores when
//! [`crate::StoreConfig::flush_interval`] is set. Dropping the flusher
//! stops the thread and joins it; it does **not** flush on the way out, so
//! dropping a store+flusher pair without a checkpoint still models a crash.
//!
//! Because a wedged disk can leave a flush pass blocked in the kernel
//! forever, [`Flusher::stop_timeout`] bounds the join: if the thread does
//! not acknowledge the stop in time, the handle is detached and
//! [`StoreError::ShutdownTimeout`] is returned instead of hanging the
//! caller. [`Flusher::start_with`] accepts an arbitrary work closure so
//! tests can fault-inject exactly that wedge.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cache_sim::sync::recover_lock;

use crate::error::{StoreError, StoreResult};
use crate::store::PageStore;

/// Shared stop/done signalling between the handle and the thread.
#[derive(Debug, Default)]
struct Signal {
    state: Mutex<SignalState>,
    changed: Condvar,
}

#[derive(Debug, Default)]
struct SignalState {
    stop: bool,
    done: bool,
}

/// Handle to a background flush thread over one or more shared
/// [`PageStore`]s.
#[derive(Debug)]
pub struct Flusher {
    signal: Arc<Signal>,
    handle: Option<JoinHandle<()>>,
}

impl Flusher {
    /// Spawns a thread that flushes up to `batch` dirty frames from each of
    /// `stores` every `interval` until the handle is dropped. I/O errors in
    /// the background stop the thread (the next foreground flush or
    /// checkpoint will surface the underlying problem).
    pub fn start(stores: Vec<Arc<PageStore>>, interval: Duration, batch: usize) -> Flusher {
        let batch = batch.max(1);
        Self::start_with(
            move || {
                let mut flushed = 0usize;
                for store in &stores {
                    flushed += store.flush_some(batch)?;
                }
                Ok(flushed)
            },
            interval,
        )
    }

    /// Spawns a thread that runs `work` every `interval` until stopped or
    /// until `work` fails. The closure is the whole flush pass — tests use
    /// this to fault-inject a wedged disk (a closure that never returns)
    /// and assert that [`Flusher::stop_timeout`] stays bounded.
    pub fn start_with(
        mut work: impl FnMut() -> StoreResult<usize> + Send + 'static,
        interval: Duration,
    ) -> Flusher {
        let signal = Arc::new(Signal::default());
        let thread_signal = Arc::clone(&signal);
        let handle = std::thread::spawn(move || {
            loop {
                // Interruptible sleep: a stop request wakes it immediately.
                let mut state = recover_lock(&thread_signal.state);
                let deadline = Instant::now() + interval;
                while !state.stop {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (next, _) = thread_signal
                        .changed
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    state = next;
                }
                let stopping = state.stop;
                drop(state);
                if stopping || work().is_err() {
                    break;
                }
            }
            let mut state = recover_lock(&thread_signal.state);
            state.done = true;
            thread_signal.changed.notify_all();
        });
        Flusher {
            signal,
            handle: Some(handle),
        }
    }

    /// Stops the thread and joins it without a bound (also done on drop).
    pub fn stop(&mut self) {
        {
            let mut state = recover_lock(&self.signal.state);
            state.stop = true;
            self.signal.changed.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    /// Stops the thread, waiting at most `timeout` for it to acknowledge.
    /// A thread wedged inside a flush pass (e.g. a disk that never
    /// completes a write) cannot be killed, so on timeout the handle is
    /// **detached** — the thread is left to finish whenever the kernel lets
    /// it — and [`StoreError::ShutdownTimeout`] reports the bounded wait to
    /// the caller.
    pub fn stop_timeout(&mut self, timeout: Duration) -> StoreResult<()> {
        let Some(handle) = self.handle.take() else {
            return Ok(());
        };
        let deadline = Instant::now() + timeout;
        let mut state = recover_lock(&self.signal.state);
        state.stop = true;
        self.signal.changed.notify_all();
        while !state.done {
            let now = Instant::now();
            if now >= deadline {
                drop(state);
                // Deliberately leak the handle: joining would block forever.
                drop(handle);
                return Err(StoreError::ShutdownTimeout { waited: timeout });
            }
            let (next, _) = self
                .signal
                .changed
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = next;
        }
        drop(state);
        let _ = handle.join();
        Ok(())
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use cache_sim::PageId;

    #[test]
    fn background_flusher_drains_dirty_frames() {
        let dir = std::env::temp_dir().join(format!("clic-flusher-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store =
            Arc::new(PageStore::open(StoreConfig::new(&dir, 16).with_page_size(32)).unwrap());
        for p in 0..8u64 {
            store.stage(PageId(p), &[p as u8; 32]).unwrap();
        }
        assert_eq!(store.dirty_len(), 8);
        let mut flusher = Flusher::start(vec![Arc::clone(&store)], Duration::from_millis(1), 4);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while store.dirty_len() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        flusher.stop();
        assert_eq!(
            store.dirty_len(),
            0,
            "flusher should drain all dirty frames"
        );
        assert_eq!(store.io_stats().pages_flushed, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn one_flusher_covers_every_shard_store() {
        let base = std::env::temp_dir().join(format!("clic-flusher-multi-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let stores: Vec<Arc<PageStore>> = (0..3)
            .map(|i| {
                Arc::new(
                    PageStore::open(
                        StoreConfig::new(base.join(format!("shard-{i}")), 8).with_page_size(32),
                    )
                    .unwrap(),
                )
            })
            .collect();
        for (i, store) in stores.iter().enumerate() {
            store.stage(PageId(i as u64), &[i as u8; 32]).unwrap();
        }
        let mut flusher = Flusher::start(stores.clone(), Duration::from_millis(1), 4);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while stores.iter().any(|s| s.dirty_len() > 0) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        flusher.stop();
        for store in &stores {
            assert_eq!(store.dirty_len(), 0);
            assert_eq!(store.io_stats().pages_flushed, 1);
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn stop_timeout_surfaces_a_wedged_disk() {
        // Fault injection: a "flush pass" that wedges forever, like a write
        // stuck in the kernel on a dying disk.
        let mut flusher = Flusher::start_with(
            || loop {
                std::thread::sleep(Duration::from_secs(3600));
            },
            Duration::ZERO,
        );
        let started = std::time::Instant::now();
        let err = flusher
            .stop_timeout(Duration::from_millis(50))
            .expect_err("a wedged pass must time out");
        assert!(matches!(err, StoreError::ShutdownTimeout { .. }));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "stop must stay bounded"
        );
        // Drop after detach must not hang either.
    }

    #[test]
    fn stop_timeout_is_clean_when_the_thread_is_healthy() {
        let mut flusher = Flusher::start_with(|| Ok(0), Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        flusher
            .stop_timeout(Duration::from_secs(10))
            .expect("healthy thread acknowledges the stop");
        // A second stop is a no-op.
        flusher.stop_timeout(Duration::from_secs(10)).unwrap();
    }
}
