//! [`FaultInjector`]: deterministic, seeded fault injection for the
//! storage and network I/O paths.
//!
//! Production storage fails in ways unit tests rarely exercise: `fsync`
//! returns `EIO`, a write tears halfway through a sector, a read hands
//! back flipped bits, a peer resets the connection mid-frame. This module
//! lets the test harness *schedule* those failures deterministically, so
//! the chaos gate (`chaos_smoke`) and the crash-recovery proptests can
//! assert exact recovery behavior and reproduce any failing schedule from
//! its seed alone.
//!
//! # Design
//!
//! Like the observability [`clic_obs::Recorder`], the injector is a
//! cheap cloneable handle around `Option<Arc<_>>`: [`FaultInjector::disabled`]
//! (the default everywhere) costs one `Option` check per I/O and allocates
//! nothing. An enabled injector carries, per [`FaultPoint`]:
//!
//! * a monotonically increasing **operation counter** (every pass through
//!   the point bumps it, faulted or not), and
//! * a firing rule: fire at explicit operation indices
//!   ([`FaultInjector::fault_at`]) and/or at a probability
//!   ([`FaultInjector::with_rate`]) decided by hashing
//!   `(seed, point, index)` — **never** by wall-clock time or a shared
//!   RNG stream, so the k-th operation at a point faults identically on
//!   every run with the same seed, regardless of thread interleaving or a
//!   mock clock.
//!
//! What an injected fault *does* is fixed per point (see [`FaultPoint`]):
//! sync points fail, write points fail or tear (a prefix of the buffer is
//! written, then the call errors — exactly what a crash mid-`pwrite`
//! leaves behind), read points fail or corrupt the returned bytes (which
//! the CRC layer then reports as a torn frame), and the network points
//! drop accepts, reset connections, or shorten socket writes.
//!
//! Injected I/O errors carry the [`INJECTED_FAULT`] marker in their
//! message so tests can tell a scheduled failure from a real one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use clic_obs::Counter;

/// Marker substring present in every injected `io::Error`'s message.
pub const INJECTED_FAULT: &str = "injected fault";

/// Where in the I/O stack a fault can fire. Each point has a fixed fault
/// repertoire, chosen to match what the real failure at that point looks
/// like.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// `DiskManager::read_page`'s positioned read: fails outright or
    /// corrupts one byte of the returned buffer (surfacing as a CRC
    /// "torn frame" error).
    DiskRead,
    /// `DiskManager::write_page`/`free_page`'s positioned write: fails
    /// outright or tears (writes a prefix, then errors).
    DiskWrite,
    /// `DiskManager::sync`'s `fsync` of the data file: fails.
    DataSync,
    /// `Wal::append`'s record write: fails or tears. A torn append does
    /// not advance the log's append position, so the garbage tail is
    /// overwritten by the next append and discarded by replay — the same
    /// outcome as a crash mid-append.
    WalAppend,
    /// `Wal::sync`'s `fsync`: fails. The synced prefix does not advance,
    /// so a `Strict` append reports the error to its caller instead of
    /// acknowledging.
    WalSync,
    /// The event loop's `accept`: the freshly accepted connection is
    /// dropped before the handshake, as if the peer vanished.
    NetAccept,
    /// Reading from an established connection: the connection is reset
    /// (closed immediately, in-flight requests abandoned).
    NetRecv,
    /// Writing to an established connection: the write is shortened to a
    /// prefix, exercising the partial-write path.
    NetSend,
}

/// All points, in tag order (indexable by [`FaultPoint::tag`]).
pub const FAULT_POINTS: [FaultPoint; 8] = [
    FaultPoint::DiskRead,
    FaultPoint::DiskWrite,
    FaultPoint::DataSync,
    FaultPoint::WalAppend,
    FaultPoint::WalSync,
    FaultPoint::NetAccept,
    FaultPoint::NetRecv,
    FaultPoint::NetSend,
];

impl FaultPoint {
    /// Dense index of this point (into [`FAULT_POINTS`]-shaped arrays).
    pub fn tag(self) -> usize {
        match self {
            FaultPoint::DiskRead => 0,
            FaultPoint::DiskWrite => 1,
            FaultPoint::DataSync => 2,
            FaultPoint::WalAppend => 3,
            FaultPoint::WalSync => 4,
            FaultPoint::NetAccept => 5,
            FaultPoint::NetRecv => 6,
            FaultPoint::NetSend => 7,
        }
    }

    /// Short stable name for reports and error messages.
    pub fn label(self) -> &'static str {
        match self {
            FaultPoint::DiskRead => "disk-read",
            FaultPoint::DiskWrite => "disk-write",
            FaultPoint::DataSync => "data-sync",
            FaultPoint::WalAppend => "wal-append",
            FaultPoint::WalSync => "wal-sync",
            FaultPoint::NetAccept => "net-accept",
            FaultPoint::NetRecv => "net-recv",
            FaultPoint::NetSend => "net-send",
        }
    }
}

/// What the injector decided for one operation at one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// No fault: perform the operation normally.
    None,
    /// Fail the operation without side effects (`EIO`-style).
    Fail,
    /// Tear the write: persist only the first `n` bytes, then fail. The
    /// prefix length is hash-derived in `[1, len)` so different seeds
    /// tear at different offsets.
    Torn(usize),
    /// Corrupt the read: flip one byte of the filled buffer at this
    /// offset, then report success (the CRC layer catches it).
    Corrupt(usize),
}

const N_POINTS: usize = FAULT_POINTS.len();

#[derive(Debug, Default)]
struct PointState {
    /// Probability threshold: fire when `hash(seed, point, index)` falls
    /// below this (0 = never, `u64::MAX` = always).
    threshold: u64,
    /// Explicit operation indices that always fire, sorted.
    explicit: Vec<u64>,
    /// Operations seen at this point (faulted or not).
    ops: AtomicU64,
    /// Faults injected at this point.
    injected: AtomicU64,
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    points: [PointState; N_POINTS],
    total: AtomicU64,
    /// Optional metrics counter bumped once per injected fault
    /// (`store.injected_faults` when attached by the store).
    counter: OnceLock<Counter>,
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A seeded schedule of injectable I/O faults. See the [module docs]
/// (self) for the design; `disabled()` is the zero-cost default.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Inner>>,
}

impl FaultInjector {
    /// The no-op injector: every decision is [`InjectedFault::None`] at
    /// the cost of one `Option` check.
    pub fn disabled() -> FaultInjector {
        FaultInjector { inner: None }
    }

    /// An enabled injector with the given seed and no faults scheduled
    /// yet; add firing rules with [`with_rate`](Self::with_rate) and
    /// [`fault_at`](Self::fault_at).
    pub fn seeded(seed: u64) -> FaultInjector {
        FaultInjector {
            inner: Some(Arc::new(Inner {
                seed,
                points: Default::default(),
                total: AtomicU64::new(0),
                counter: OnceLock::new(),
            })),
        }
    }

    /// Whether any faults can fire.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn edit(&mut self, point: FaultPoint, f: impl FnOnce(&mut PointState)) {
        // Builder methods run before the injector is cloned anywhere, so
        // the Arc is unshared; on a disabled or already-shared injector
        // the edit is a no-op (schedules are fixed at construction).
        if let Some(inner) = self.inner.as_mut().and_then(Arc::get_mut) {
            f(&mut inner.points[point.tag()]);
        }
    }

    /// Fires a fault at `point` with the given probability per operation
    /// (clamped to `[0, 1]`), decided by hashing `(seed, point, index)`.
    /// Builder-style; must be called before the injector is shared.
    #[must_use]
    pub fn with_rate(mut self, point: FaultPoint, probability: f64) -> FaultInjector {
        let p = probability.clamp(0.0, 1.0);
        let threshold = if p >= 1.0 {
            u64::MAX
        } else {
            (p * u64::MAX as f64) as u64
        };
        self.edit(point, |state| state.threshold = threshold);
        self
    }

    /// Fires a fault at `point` on exactly its `index`-th operation
    /// (0-based). Builder-style; must be called before the injector is
    /// shared.
    #[must_use]
    pub fn fault_at(mut self, point: FaultPoint, index: u64) -> FaultInjector {
        self.edit(point, |state| {
            if let Err(at) = state.explicit.binary_search(&index) {
                state.explicit.insert(at, index);
            }
        });
        self
    }

    /// Attaches a metrics counter bumped once per injected fault. The
    /// store attaches `store.injected_faults` at open; only the first
    /// attach wins.
    pub fn attach_counter(&self, counter: Counter) {
        if let Some(inner) = &self.inner {
            let _ = inner.counter.set(counter);
        }
    }

    /// Decides the fate of the next operation at `point`. `len` is the
    /// buffer length the operation moves (used to derive torn-write
    /// prefixes and corruption offsets); pass 0 for syncs and accepts.
    pub fn decide(&self, point: FaultPoint, len: usize) -> InjectedFault {
        let Some(inner) = &self.inner else {
            return InjectedFault::None;
        };
        let state = &inner.points[point.tag()];
        let index = state.ops.fetch_add(1, Ordering::Relaxed);
        let draw = mix(inner
            .seed
            .wrapping_add((point.tag() as u64).wrapping_mul(0xa076_1d64_78bd_642f))
            .wrapping_add(index.wrapping_mul(0xe703_7ed1_a0b4_28db)));
        let fires = state.explicit.binary_search(&index).is_ok()
            || (state.threshold > 0 && draw < state.threshold);
        if !fires {
            return InjectedFault::None;
        }
        state.injected.fetch_add(1, Ordering::Relaxed);
        inner.total.fetch_add(1, Ordering::Relaxed);
        if let Some(counter) = inner.counter.get() {
            counter.inc();
        }
        // A second independent draw picks the flavor and the offset.
        let flavor = mix(draw);
        match point {
            FaultPoint::DataSync | FaultPoint::WalSync => InjectedFault::Fail,
            FaultPoint::NetAccept | FaultPoint::NetRecv => InjectedFault::Fail,
            FaultPoint::DiskWrite | FaultPoint::WalAppend | FaultPoint::NetSend => {
                if len > 1 && flavor & 1 == 0 {
                    InjectedFault::Torn(1 + (flavor >> 1) as usize % (len - 1))
                } else {
                    InjectedFault::Fail
                }
            }
            FaultPoint::DiskRead => {
                if len > 0 && flavor & 1 == 0 {
                    InjectedFault::Corrupt((flavor >> 1) as usize % len)
                } else {
                    InjectedFault::Fail
                }
            }
        }
    }

    /// Faults injected at `point` so far.
    pub fn injected_at(&self, point: FaultPoint) -> u64 {
        self.inner
            .as_ref()
            .map(|inner| inner.points[point.tag()].injected.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Operations observed at `point` so far (faulted or not).
    pub fn ops_at(&self, point: FaultPoint) -> u64 {
        self.inner
            .as_ref()
            .map(|inner| inner.points[point.tag()].ops.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Total faults injected across all points.
    pub fn total_injected(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|inner| inner.total.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Per-point `(point, ops, injected)` counts — the full observable
    /// fault history, used by the chaos gate's determinism assertion.
    pub fn counts(&self) -> Vec<(FaultPoint, u64, u64)> {
        FAULT_POINTS
            .iter()
            .map(|&point| (point, self.ops_at(point), self.injected_at(point)))
            .collect()
    }

    /// The `io::Error` an injected [`InjectedFault::Fail`] or the tail of
    /// an [`InjectedFault::Torn`] write surfaces, carrying the
    /// [`INJECTED_FAULT`] marker.
    pub fn error(point: FaultPoint) -> std::io::Error {
        std::io::Error::other(format!("{INJECTED_FAULT}: {}", point.label()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires_and_counts_nothing() {
        let fi = FaultInjector::disabled();
        for _ in 0..100 {
            assert_eq!(fi.decide(FaultPoint::WalSync, 0), InjectedFault::None);
        }
        assert_eq!(fi.total_injected(), 0);
        assert_eq!(fi.ops_at(FaultPoint::WalSync), 0);
        assert!(!fi.is_enabled());
    }

    #[test]
    fn explicit_indices_fire_exactly_once_each() {
        let fi = FaultInjector::seeded(1)
            .fault_at(FaultPoint::WalSync, 2)
            .fault_at(FaultPoint::WalSync, 5);
        let fired: Vec<bool> = (0..8)
            .map(|_| fi.decide(FaultPoint::WalSync, 0) != InjectedFault::None)
            .collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false]
        );
        assert_eq!(fi.injected_at(FaultPoint::WalSync), 2);
        assert_eq!(fi.ops_at(FaultPoint::WalSync), 8);
        assert_eq!(fi.total_injected(), 2);
    }

    #[test]
    fn same_seed_reproduces_the_same_schedule() {
        let run = |seed: u64| -> Vec<InjectedFault> {
            let fi = FaultInjector::seeded(seed)
                .with_rate(FaultPoint::DiskWrite, 0.3)
                .with_rate(FaultPoint::DiskRead, 0.3);
            (0..200)
                .map(|i| {
                    if i % 2 == 0 {
                        fi.decide(FaultPoint::DiskWrite, 64)
                    } else {
                        fi.decide(FaultPoint::DiskRead, 64)
                    }
                })
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seed, different schedule");
    }

    #[test]
    fn rates_fire_in_plausible_proportion() {
        let fi = FaultInjector::seeded(42).with_rate(FaultPoint::WalAppend, 0.25);
        for _ in 0..4000 {
            fi.decide(FaultPoint::WalAppend, 128);
        }
        let injected = fi.injected_at(FaultPoint::WalAppend);
        assert!(
            (700..1300).contains(&injected),
            "25% of 4000 should be ~1000, got {injected}"
        );
    }

    #[test]
    fn torn_and_corrupt_offsets_stay_in_bounds() {
        let fi = FaultInjector::seeded(3)
            .with_rate(FaultPoint::WalAppend, 1.0)
            .with_rate(FaultPoint::DiskRead, 1.0);
        for _ in 0..100 {
            match fi.decide(FaultPoint::WalAppend, 32) {
                InjectedFault::Torn(n) => assert!((1..32).contains(&n)),
                InjectedFault::Fail => {}
                other => panic!("write points never {other:?}"),
            }
            match fi.decide(FaultPoint::DiskRead, 32) {
                InjectedFault::Corrupt(at) => assert!(at < 32),
                InjectedFault::Fail => {}
                other => panic!("read points never {other:?}"),
            }
        }
    }

    #[test]
    fn sync_points_only_fail() {
        let fi = FaultInjector::seeded(5)
            .with_rate(FaultPoint::WalSync, 1.0)
            .with_rate(FaultPoint::DataSync, 1.0);
        for _ in 0..20 {
            assert_eq!(fi.decide(FaultPoint::WalSync, 0), InjectedFault::Fail);
            assert_eq!(fi.decide(FaultPoint::DataSync, 0), InjectedFault::Fail);
        }
    }

    #[test]
    fn injected_errors_carry_the_marker() {
        let err = FaultInjector::error(FaultPoint::WalSync);
        assert!(err.to_string().contains(INJECTED_FAULT));
        assert!(err.to_string().contains("wal-sync"));
    }
}
