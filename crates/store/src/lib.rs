//! The data plane of the CLIC reproduction: a disk-backed page store in the
//! style of a buffer-pool manager.
//!
//! The paper's policy work ([`clic_core`](../clic_core/index.html)) decides
//! *which* pages deserve cache space; this crate supplies the machinery that
//! makes those decisions matter — real bytes in buffer frames, a backing
//! file, dirty-page write-back, and crash consistency. The pieces compose
//! bottom-up:
//!
//! * [`DiskManager`] ([`disk`]) — fixed-size page slots in one backing file.
//!   Each slot carries a header (page id, CRC-32 over id + data, allocation
//!   flag) followed by the page bytes; a slot-granular allocation bitmap
//!   hands out free slots first-fit. The slot directory is rebuilt by
//!   scanning headers on open, and the CRC is verified on every read, so a
//!   torn (partially written) frame is *detected*, never silently returned.
//! * [`FrameArena`] ([`frame`]) — a contiguous arena of in-memory buffer
//!   frames with per-frame latch words and dirty bits, accessed through RAII
//!   [`PageReadGuard`]/[`PageWriteGuard`]s.
//!
//!   **Frame lifecycle:** free → resident-clean (installed from a disk read)
//!   or resident-dirty (installed from a staged write) → possibly
//!   resident-clean again (flushed) → free (evicted; a dirty eviction forces
//!   a write-back first).
//!
//!   **Latch rules:** any number of read guards may share a frame; a write
//!   guard is exclusive (no other guard of either kind); acquiring a guard
//!   latches the frame and dropping it releases; eviction write-latches the
//!   frame and unpublishes it from the directory before handing its bytes
//!   out, and the flusher holds a read latch while writing back.
//! * [`Wal`] ([`wal`]) — an optional write-ahead log with selectable
//!   [`Durability`].
//!
//!   **WAL format:** a flat sequence of length-prefixed records
//!   `[len: u32 LE][crc32: u32 LE][payload]` with
//!   `payload = [kind: u8][page: u64 LE][page bytes]`; the CRC covers the
//!   payload. Replay on open applies every record of the longest valid
//!   prefix and stops at the first short or corrupt record (a torn tail from
//!   a crash mid-append). A checkpoint (flush everything, sync the data
//!   file) truncates the log to zero.
//!
//!   **Durability levels:** [`Durability::Buffered`] never syncs inline
//!   (a kernel crash can lose OS-buffered records), [`Durability::Strict`]
//!   syncs every append, and [`Durability::GroupCommit`] coalesces up to
//!   `max_batch` appends (or `max_wait` of wall time) into one sync — the
//!   classic group-commit trade of bounded staleness for an order of
//!   magnitude fewer `fsync`s.
//! * [`PageStore`] ([`store`]) — ties the three together with **no
//!   store-wide lock** (see *Locking architecture* below): reads prefer the
//!   arena and fall back to the disk, writes are staged *write-back* (WAL
//!   append first — the write is acknowledged once the record is handed to
//!   the OS, or synced per the durability level — then a dirty frame),
//!   evictions of dirty frames force a flush, and every byte moved is
//!   counted in shared atomic [`cache_sim::IoStats`] counters.
//! * [`Flusher`] ([`flusher`]) — a background thread calling
//!   [`PageStore::flush_some`] on an interval — across *all* of a server's
//!   shard stores — bounded per pass by a batch size, so dirty pages drain
//!   without stalling the request path. [`Flusher::stop_timeout`] bounds
//!   shutdown against a wedged disk, surfacing
//!   [`StoreError::ShutdownTimeout`] instead of hanging.
//! * [`replay_storage`] ([`replay`]) — the offline driver: replays a trace
//!   through any [`cache_sim::CachePolicy`] while moving real bytes through
//!   a store, using the policy's eviction-identity log
//!   ([`cache_sim::CachePolicy::drain_evictions`]) to keep arena residency
//!   and policy state in lockstep. [`replay_storage_partitioned`] is the
//!   sharded shape: per-partition policies and per-shard store directories,
//!   replayed in parallel yet bit-identical to a serial run. This is what
//!   the `storage_io` benchmark uses to measure disk reads avoided by CLIC
//!   admission vs an LRU baseline, across durability levels and shard
//!   counts.
//!
//! **Observability:** the store's byte-level counters live in a per-store
//! [`clic_obs::MetricsRegistry`] under `store.*` names and are always on
//! (exact values back the I/O assertions in this crate's tests);
//! [`PageStore::io_stats`] and [`PageStore::metrics`] are two views of the
//! same atomics. An enabled [`Recorder`] ([`StoreConfig::with_recorder`])
//! additionally captures trace spans — WAL append/fsync/group-commit
//! windows, flusher passes, contended frame-latch waits — and the replay's
//! per-chunk latency histogram ([`REPLAY_CHUNK_HISTOGRAM`]); disabled (the
//! default) it costs one `Option` check per site.
//!
//! **Fault injection:** a seeded [`FaultInjector`] ([`fault`],
//! [`StoreConfig::with_fault_injector`]) can schedule deterministic I/O
//! failures — failed or torn writes, failed `fsync`s, corrupted reads — at
//! the [`DiskManager`] and [`Wal`] boundaries. Disabled (the default) it
//! costs one `Option` check per I/O, exactly like the `Recorder`; enabled,
//! the k-th operation at each injection point faults identically on every
//! run with the same seed, and each injected fault bumps
//! `store.injected_faults` in the metrics registry. Injected errors carry
//! the [`INJECTED_FAULT`] marker so tests can tell scheduled failures from
//! real ones. This is the substrate of the crash-recovery proptests and
//! the `chaos_smoke` verification gate.
//!
//! The online counterpart lives in `clic-server`: a `ShardedClic` attaches
//! one store *per shard*, so `Put` carries bytes in and `Get` carries bytes
//! out of a live server with no cross-shard storage coupling.
//!
//! # Locking architecture
//!
//! The store used to hide behind one `Mutex<Inner>`; it is now decomposed
//! into independently synchronized layers. What each lock protects:
//!
//! | Lock | Protects | Held for |
//! |---|---|---|
//! | `DiskManager` directory stripes (16 × `Mutex`) | page → slot map, slot allocation decision | map lookup/insert only — never across file I/O for reads; a write holds its stripe across the positioned write so slot reuse cannot interleave |
//! | `DiskManager` bitmap stripes (8 × `Mutex` inside [`ShardedBitmap`]) | slot allocation bits | single bit set/scan |
//! | `FrameArena` directory stripes (16 × `RwLock`) | page → frame map | lookup + latch acquisition (so a frame cannot be recycled between the two) |
//! | Per-frame latch word (`AtomicI32`) | that frame's bytes + dirty bit | the lifetime of a guard — clean-page reads take **only** this and one stripe read-lock |
//! | WAL mutex (`Mutex<Wal>`) | log file offset, group-commit window | one append (+ optional sync) — this is the only serialization on the write-ack path |
//! | Flush-pass mutex (`Mutex<()>`) | "one flush pass at a time" | listing + writing back a batch (frames themselves only read-latched) |
//!
//! **Lock order:** arena stripe → frame latch; disk directory stripe →
//! bitmap stripe. No code path holds an arena lock and a disk lock at the
//! same time except via a held frame *latch* (flush/evict write-back), which
//! is below every map lock; the WAL mutex is taken before arena locks in
//! [`PageStore::stage`] and never after them. Poisoned locks are either
//! recovered ([`cache_sim::recover_lock`] — for counters and signalling
//! where the invariant is trivially intact) or surfaced as
//! [`StoreError::LockPoisoned`] ([`cache_sim::checked_lock`] — for the WAL,
//! whose offset invariant a panicked holder could have broken).
//!
//! This crate denies `clippy::disallowed_methods` with a `clippy.toml` that
//! bans bare `Mutex::lock`/`RwLock::read`/`RwLock::write` — every
//! acquisition goes through the poison-explicit helpers in
//! [`cache_sim::sync`].
//!
//! # Example
//!
//! ```
//! use cache_sim::PageId;
//! use clic_store::{Durability, PageStore, ReadSource, StoreConfig};
//!
//! let dir = std::env::temp_dir().join(format!("clic-store-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let config = StoreConfig::new(&dir, 8).with_durability(Durability::group_commit());
//! let store = PageStore::open(config).unwrap();
//! let payload = vec![0xabu8; store.page_size()];
//! store.stage(PageId(7), &payload).unwrap(); // write-back: WAL + dirty frame
//! let mut out = Vec::new();
//! assert_eq!(store.read(PageId(7), &mut out).unwrap(), ReadSource::Buffer);
//! assert_eq!(out, payload);
//! store.checkpoint().unwrap(); // flush dirty frames, truncate the WAL
//! drop(store);
//! let _ = std::fs::remove_dir_all(&dir);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![deny(clippy::disallowed_methods)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod crc;
pub mod disk;
pub mod error;
pub mod fault;
pub mod flusher;
pub mod frame;
pub mod replay;
pub mod store;
pub mod wal;

pub use crc::{crc32, Crc32};
pub use disk::{AllocationBitmap, DiskManager, ShardedBitmap};
pub use error::{StoreError, StoreResult};
pub use fault::{FaultInjector, FaultPoint, InjectedFault, FAULT_POINTS, INJECTED_FAULT};
pub use flusher::Flusher;
pub use frame::{EvictGuard, FrameArena, PageReadGuard, PageWriteGuard};
pub use replay::{
    page_payload, replay_storage, replay_storage_partitioned, StorageReplayReport,
    REPLAY_CHUNK_HISTOGRAM,
};
pub use store::{PageStore, ReadSource, StoreConfig, DEFAULT_PAGE_SIZE};
pub use wal::{AppendOutcome, Durability, Wal, WalOp, WalRecord};

// Observability types that appear in this crate's public API
// ([`StoreConfig::with_recorder`], [`PageStore::metrics`],
// [`StorageReplayReport::latency`]), re-exported so store users need not
// depend on `clic-obs` directly.
pub use clic_obs::{HistogramSnapshot, MetricsSnapshot, Recorder, SpanKind};
