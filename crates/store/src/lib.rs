//! The data plane of the CLIC reproduction: a disk-backed page store in the
//! style of a buffer-pool manager.
//!
//! The paper's policy work ([`clic_core`](../clic_core/index.html)) decides
//! *which* pages deserve cache space; this crate supplies the machinery that
//! makes those decisions matter — real bytes in buffer frames, a backing
//! file, dirty-page write-back, and crash consistency. The pieces compose
//! bottom-up:
//!
//! * [`DiskManager`] ([`disk`]) — fixed-size page slots in one backing file.
//!   Each slot carries a header (page id, CRC-32 over id + data, allocation
//!   flag) followed by the page bytes; a slot-granular allocation bitmap
//!   hands out free slots first-fit. The slot directory is rebuilt by
//!   scanning headers on open, and the CRC is verified on every read, so a
//!   torn (partially written) frame is *detected*, never silently returned.
//! * [`FrameArena`] ([`frame`]) — a contiguous arena of in-memory buffer
//!   frames with per-frame pin counts and dirty bits, accessed through RAII
//!   [`PageReadGuard`]/[`PageWriteGuard`]s.
//!
//!   **Frame lifecycle:** free → resident-clean (installed from a disk read)
//!   or resident-dirty (installed from a staged write) → possibly
//!   resident-clean again (flushed) → free (evicted; a dirty eviction forces
//!   a write-back first).
//!
//!   **Pin/unpin rules:** any number of read guards may share a frame; a
//!   write guard is exclusive (no other guard of either kind); acquiring a
//!   guard pins the frame and dropping it unpins; eviction and flushing
//!   require the frame to be unpinned (enforced — structural mutation takes
//!   `&mut self`, which the borrow checker refuses while any guard borrows
//!   the arena, and the flusher skips pinned frames).
//! * [`Wal`] ([`wal`]) — an optional write-ahead log.
//!
//!   **WAL format:** a flat sequence of length-prefixed records
//!   `[len: u32 LE][crc32: u32 LE][payload]` with
//!   `payload = [kind: u8][page: u64 LE][page bytes]`; the CRC covers the
//!   payload. Replay on open applies every record of the longest valid
//!   prefix and stops at the first short or corrupt record (a torn tail from
//!   a crash mid-append). A checkpoint (flush everything, sync the data
//!   file) truncates the log to zero.
//! * [`PageStore`] ([`store`]) — ties the three together behind one mutex:
//!   reads prefer the arena and fall back to the disk, writes are staged
//!   *write-back* (WAL append first — the write is acknowledged once the
//!   record is handed to the OS — then a dirty frame), evictions of dirty
//!   frames force a flush, and every byte moved is counted in a shared
//!   [`cache_sim::IoStats`].
//! * [`Flusher`] ([`flusher`]) — a background thread calling
//!   [`PageStore::flush_some`] on an interval, bounded per pass by a batch
//!   size, so dirty pages drain without stalling the request path.
//!
//!   **Flusher policy:** write-back is bounded two ways — *inline* by
//!   [`StoreConfig::flush_threshold`] (when the dirty-frame count reaches
//!   the threshold, the staging call itself flushes a batch; deterministic,
//!   used by the benchmarks) and *in the background* by an interval/batch
//!   `Flusher` (used by the live server, where determinism is not required).
//! * [`replay_storage`] ([`replay`]) — the offline driver: replays a trace
//!   through any [`cache_sim::CachePolicy`] while moving real bytes through
//!   a store, using the policy's eviction-identity log
//!   ([`cache_sim::CachePolicy::drain_evictions`]) to keep arena residency
//!   and policy state in lockstep. This is what the `storage_io` benchmark
//!   uses to measure disk reads avoided by CLIC admission vs an LRU
//!   baseline.
//!
//! The online counterpart lives in `clic-server`: a `ShardedClic` with a
//! store attached runs the same data plane under its shard locks, so `Put`
//! carries bytes in and `Get` carries bytes out of a live server.
//!
//! # Example
//!
//! ```
//! use cache_sim::PageId;
//! use clic_store::{PageStore, ReadSource, StoreConfig};
//!
//! let dir = std::env::temp_dir().join(format!("clic-store-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let store = PageStore::open(StoreConfig::new(&dir, 8)).unwrap();
//! let payload = vec![0xabu8; store.page_size()];
//! store.stage(PageId(7), &payload).unwrap(); // write-back: WAL + dirty frame
//! let mut out = Vec::new();
//! assert_eq!(store.read(PageId(7), &mut out).unwrap(), ReadSource::Buffer);
//! assert_eq!(out, payload);
//! store.checkpoint().unwrap(); // flush dirty frames, truncate the WAL
//! drop(store);
//! let _ = std::fs::remove_dir_all(&dir);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod crc;
pub mod disk;
pub mod flusher;
pub mod frame;
pub mod replay;
pub mod store;
pub mod wal;

pub use crc::{crc32, Crc32};
pub use disk::{AllocationBitmap, DiskManager};
pub use flusher::Flusher;
pub use frame::{FrameArena, PageReadGuard, PageWriteGuard};
pub use replay::{page_payload, replay_storage, StorageReplayReport};
pub use store::{PageStore, ReadSource, StoreConfig, DEFAULT_PAGE_SIZE};
pub use wal::{Wal, WalRecord};
