//! [`StoreError`]: the storage stack's error type, unifying I/O failures,
//! poisoned locks, and bounded-shutdown timeouts.

use std::error::Error;
use std::fmt;
use std::io;
use std::time::Duration;

use cache_sim::LockPoisoned;

/// Result alias for storage operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// Why a storage operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file I/O failed.
    Io(io::Error),
    /// A lock inside the store was poisoned by a panicked thread and the
    /// operation could not proceed on a clean error path.
    LockPoisoned,
    /// A bounded join (flusher stop, shutdown) did not finish in time —
    /// the signature of a wedged disk or a stuck worker.
    ShutdownTimeout {
        /// How long the caller waited before giving up.
        waited: Duration,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "storage I/O failed: {err}"),
            StoreError::LockPoisoned => f.write_str("storage lock poisoned by a panicked thread"),
            StoreError::ShutdownTimeout { waited } => {
                write!(f, "storage shutdown timed out after {waited:?}")
            }
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(err: io::Error) -> Self {
        StoreError::Io(err)
    }
}

impl From<LockPoisoned> for StoreError {
    fn from(_: LockPoisoned) -> Self {
        StoreError::LockPoisoned
    }
}

impl From<StoreError> for io::Error {
    fn from(err: StoreError) -> Self {
        match err {
            StoreError::Io(err) => err,
            StoreError::LockPoisoned => io::Error::other(err.to_string()),
            StoreError::ShutdownTimeout { .. } => {
                io::Error::new(io::ErrorKind::TimedOut, err.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip_through_io() {
        let io_err: io::Error = StoreError::ShutdownTimeout {
            waited: Duration::from_secs(1),
        }
        .into();
        assert_eq!(io_err.kind(), io::ErrorKind::TimedOut);
        let io_err: io::Error = StoreError::LockPoisoned.into();
        assert!(io_err.to_string().contains("poisoned"));
        let store_err: StoreError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(store_err, StoreError::Io(_)));
        let store_err: StoreError = LockPoisoned.into();
        assert!(matches!(store_err, StoreError::LockPoisoned));
        assert!(store_err.to_string().contains("poisoned"));
    }
}
