//! [`DiskManager`]: fixed-size page slots in one backing file, with an
//! allocation bitmap and per-slot CRC headers.
//!
//! # File layout
//!
//! ```text
//! [file header: magic (8) | page_size u32 LE | reserved u32]      16 bytes
//! [slot 0: meta (16) | page bytes (page_size)]
//! [slot 1: meta (16) | page bytes (page_size)]
//! ...
//! slot meta = page id u64 LE | crc32 u32 LE | flags u32 LE
//! ```
//!
//! The CRC covers the page-id bytes followed by the page bytes, so a slot
//! whose header and data were not written together (a torn frame) fails
//! verification on read. Page ids are sparse (clients address disjoint
//! ranges offset by 100 M pages), so slots are assigned first-fit through an
//! [`AllocationBitmap`] and an in-memory `page → slot` directory; both are
//! rebuilt by scanning the slot headers when the file is opened. Freeing a
//! page zeroes its slot meta and returns the slot to the bitmap.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use cache_sim::{FastHashMap, PageId};

use crate::crc::Crc32;

/// Identifies a clic-store backing file (version 1).
const FILE_MAGIC: [u8; 8] = *b"CLICPGS1";
/// Bytes of file header before slot 0.
const HEADER_LEN: u64 = 16;
/// Bytes of per-slot metadata before the page bytes.
const SLOT_META_LEN: usize = 16;
/// Slot meta flag: the slot holds a live page.
const FLAG_ALLOCATED: u32 = 1;

/// A slot-granular allocation bitmap: one bit per slot, first-fit
/// allocation, growing as needed.
#[derive(Debug, Default)]
pub struct AllocationBitmap {
    words: Vec<u64>,
    /// Word index to start the next first-fit scan from (monotone until a
    /// clear rewinds it), so repeated allocation is amortized O(1).
    scan_hint: usize,
    allocated: usize,
}

impl AllocationBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        AllocationBitmap::default()
    }

    /// Returns the lowest free slot, marking it allocated (growing the
    /// bitmap if every existing slot is taken).
    pub fn allocate(&mut self) -> usize {
        for (offset, word) in self.words[self.scan_hint..].iter_mut().enumerate() {
            if *word != u64::MAX {
                let bit = word.trailing_ones() as usize;
                *word |= 1 << bit;
                self.scan_hint += offset;
                self.allocated += 1;
                return (self.scan_hint) * 64 + bit;
            }
        }
        self.scan_hint = self.words.len();
        self.words.push(1);
        self.allocated += 1;
        self.scan_hint * 64
    }

    /// Marks `slot` allocated (used when rebuilding from a file scan).
    pub fn set(&mut self, slot: usize) {
        let word = slot / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        if self.words[word] & (1 << (slot % 64)) == 0 {
            self.words[word] |= 1 << (slot % 64);
            self.allocated += 1;
        }
    }

    /// Marks `slot` free.
    pub fn clear(&mut self, slot: usize) {
        let word = slot / 64;
        if word < self.words.len() && self.words[word] & (1 << (slot % 64)) != 0 {
            self.words[word] &= !(1 << (slot % 64));
            self.allocated -= 1;
            self.scan_hint = self.scan_hint.min(word);
        }
    }

    /// Whether `slot` is allocated.
    pub fn is_set(&self, slot: usize) -> bool {
        self.words
            .get(slot / 64)
            .is_some_and(|word| word & (1 << (slot % 64)) != 0)
    }

    /// Number of allocated slots.
    pub fn allocated(&self) -> usize {
        self.allocated
    }
}

/// Reads and writes fixed-size page frames in a single backing file.
///
/// All I/O is positioned (`seek` + read/write on a cloned cursor-free path),
/// one slot per call; a page write emits the slot meta and page bytes as one
/// contiguous write. The manager is single-threaded by design — the
/// [`crate::PageStore`] serializes access behind its mutex.
#[derive(Debug)]
pub struct DiskManager {
    file: File,
    page_size: usize,
    directory: FastHashMap<PageId, u32>,
    bitmap: AllocationBitmap,
    /// Scratch for one slot (meta + page bytes), reused across calls.
    slot_buf: Vec<u8>,
}

impl DiskManager {
    /// Opens (or creates) the backing file at `path` with the given page
    /// size, rebuilding the slot directory and allocation bitmap by scanning
    /// the slot headers.
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] if the file exists but its
    /// magic or page size disagree, or if two live slots claim the same
    /// page.
    pub fn open(path: &Path, page_size: usize) -> io::Result<DiskManager> {
        assert!(page_size > 0, "page size must be positive");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let file_len = file.metadata()?.len();
        if file_len == 0 {
            let mut header = [0u8; HEADER_LEN as usize];
            header[..8].copy_from_slice(&FILE_MAGIC);
            header[8..12].copy_from_slice(&(page_size as u32).to_le_bytes());
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header)?;
        } else {
            let mut header = [0u8; HEADER_LEN as usize];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut header)?;
            if header[..8] != FILE_MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not a clic-store backing file (bad magic)",
                ));
            }
            let stored = u32::from_le_bytes(header[8..12].try_into().unwrap());
            if stored as usize != page_size {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("backing file has page size {stored}, expected {page_size}"),
                ));
            }
        }
        let mut manager = DiskManager {
            file,
            page_size,
            directory: FastHashMap::default(),
            bitmap: AllocationBitmap::new(),
            slot_buf: vec![0u8; SLOT_META_LEN + page_size],
        };
        let stride = manager.stride();
        let slots = file_len.saturating_sub(HEADER_LEN) / stride;
        let mut meta = [0u8; SLOT_META_LEN];
        for slot in 0..slots {
            manager
                .file
                .seek(SeekFrom::Start(HEADER_LEN + slot * stride))?;
            manager.file.read_exact(&mut meta)?;
            let flags = u32::from_le_bytes(meta[12..16].try_into().unwrap());
            if flags & FLAG_ALLOCATED == 0 {
                continue;
            }
            let page = PageId(u64::from_le_bytes(meta[..8].try_into().unwrap()));
            if manager.directory.insert(page, slot as u32).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("page {} is live in two slots", page.0),
                ));
            }
            manager.bitmap.set(slot as usize);
        }
        Ok(manager)
    }

    fn stride(&self) -> u64 {
        (SLOT_META_LEN + self.page_size) as u64
    }

    fn slot_offset(&self, slot: u32) -> u64 {
        HEADER_LEN + u64::from(slot) * self.stride()
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of live pages in the file.
    pub fn allocated_pages(&self) -> usize {
        self.directory.len()
    }

    /// Whether the file holds a live copy of `page`.
    pub fn contains(&self, page: PageId) -> bool {
        self.directory.contains_key(&page)
    }

    /// Every live page, in unspecified order.
    pub fn pages(&self) -> Vec<PageId> {
        self.directory.keys().copied().collect()
    }

    fn checksum(page: PageId, data: &[u8]) -> u32 {
        let mut crc = Crc32::new();
        crc.update(&page.0.to_le_bytes());
        crc.update(data);
        crc.finish()
    }

    /// Reads `page` into `buf` (which must be exactly one page long).
    /// Returns `Ok(false)` if the file holds no copy of the page, and
    /// [`io::ErrorKind::InvalidData`] if the stored frame fails CRC
    /// verification (a torn write).
    pub fn read_page(&mut self, page: PageId, buf: &mut [u8]) -> io::Result<bool> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page");
        let Some(&slot) = self.directory.get(&page) else {
            return Ok(false);
        };
        let offset = self.slot_offset(slot);
        self.file.seek(SeekFrom::Start(offset))?;
        let slot_buf = &mut self.slot_buf;
        self.file.read_exact(slot_buf)?;
        let stored_page = u64::from_le_bytes(slot_buf[..8].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(slot_buf[8..12].try_into().unwrap());
        let data = &slot_buf[SLOT_META_LEN..];
        if stored_page != page.0 || stored_crc != Self::checksum(page, data) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("torn frame: page {} failed CRC verification", page.0),
            ));
        }
        buf.copy_from_slice(data);
        Ok(true)
    }

    /// Writes `data` (exactly one page) as the live copy of `page`,
    /// allocating a slot first-fit if the page has none. Meta and page bytes
    /// go out as one contiguous write.
    pub fn write_page(&mut self, page: PageId, data: &[u8]) -> io::Result<()> {
        assert_eq!(data.len(), self.page_size, "data must be one page");
        let slot = match self.directory.get(&page) {
            Some(&slot) => slot,
            None => {
                let slot = self.bitmap.allocate() as u32;
                self.directory.insert(page, slot);
                slot
            }
        };
        self.slot_buf[..8].copy_from_slice(&page.0.to_le_bytes());
        self.slot_buf[8..12].copy_from_slice(&Self::checksum(page, data).to_le_bytes());
        self.slot_buf[12..16].copy_from_slice(&FLAG_ALLOCATED.to_le_bytes());
        self.slot_buf[SLOT_META_LEN..].copy_from_slice(data);
        let offset = self.slot_offset(slot);
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(&self.slot_buf)?;
        Ok(())
    }

    /// Drops the live copy of `page` (zeroing its slot meta) and returns its
    /// slot to the allocator. Returns `Ok(false)` if the page had no copy.
    pub fn free_page(&mut self, page: PageId) -> io::Result<bool> {
        let Some(slot) = self.directory.remove(&page) else {
            return Ok(false);
        };
        let offset = self.slot_offset(slot);
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(&[0u8; SLOT_META_LEN])?;
        self.bitmap.clear(slot as usize);
        Ok(true)
    }

    /// Flushes file contents to the device (`fsync`-equivalent).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("clic-disk-test-{}-{tag}.pages", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn bitmap_first_fit_and_reuse() {
        let mut bitmap = AllocationBitmap::new();
        assert_eq!(bitmap.allocate(), 0);
        assert_eq!(bitmap.allocate(), 1);
        assert_eq!(bitmap.allocate(), 2);
        bitmap.clear(1);
        assert_eq!(bitmap.allocated(), 2);
        assert_eq!(bitmap.allocate(), 1, "freed slot is reused first-fit");
        for expected in 3..70 {
            assert_eq!(bitmap.allocate(), expected);
        }
        assert!(bitmap.is_set(64));
        assert!(!bitmap.is_set(1000));
        assert_eq!(bitmap.allocated(), 70);
    }

    #[test]
    fn write_read_roundtrip_and_rescan() {
        let path = temp_file("roundtrip");
        let page_size = 256;
        let pattern = |seed: u8| vec![seed; page_size];
        {
            let mut disk = DiskManager::open(&path, page_size).unwrap();
            // Sparse page ids land in dense slots.
            disk.write_page(PageId(7), &pattern(1)).unwrap();
            disk.write_page(PageId(100_000_007), &pattern(2)).unwrap();
            disk.write_page(PageId(7), &pattern(3)).unwrap(); // overwrite in place
            assert_eq!(disk.allocated_pages(), 2);
            let mut buf = vec![0u8; page_size];
            assert!(disk.read_page(PageId(7), &mut buf).unwrap());
            assert_eq!(buf, pattern(3));
            assert!(!disk.read_page(PageId(8), &mut buf).unwrap());
            assert!(disk.free_page(PageId(7)).unwrap());
            assert!(!disk.free_page(PageId(7)).unwrap());
            disk.write_page(PageId(42), &pattern(4)).unwrap();
            disk.sync().unwrap();
        }
        // Reopen: the directory and bitmap are rebuilt from the headers.
        let mut disk = DiskManager::open(&path, page_size).unwrap();
        assert_eq!(disk.allocated_pages(), 2);
        let mut buf = vec![0u8; page_size];
        assert!(disk.read_page(PageId(100_000_007), &mut buf).unwrap());
        assert_eq!(buf, pattern(2));
        assert!(disk.read_page(PageId(42), &mut buf).unwrap());
        assert_eq!(buf, pattern(4));
        assert!(!disk.contains(PageId(7)), "freed page stays freed");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_frames_fail_crc_verification() {
        let path = temp_file("torn");
        let page_size = 128;
        let mut disk = DiskManager::open(&path, page_size).unwrap();
        disk.write_page(PageId(1), &vec![9u8; page_size]).unwrap();
        drop(disk);
        // Corrupt one byte in the middle of slot 0's page bytes.
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = HEADER_LEN as usize + SLOT_META_LEN + page_size / 2;
        bytes[victim] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut disk = DiskManager::open(&path, page_size).unwrap();
        let mut buf = vec![0u8; page_size];
        let err = disk.read_page(PageId(1), &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_page_size_is_rejected() {
        let path = temp_file("pagesize");
        drop(DiskManager::open(&path, 256).unwrap());
        let err = DiskManager::open(&path, 512).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }
}
